#include "wal/recovery.h"

#include <filesystem>
#include <map>
#include <set>
#include <vector>

#include "core/database.h"
#include "persist/dump.h"
#include "wal/checkpoint.h"
#include "wal/crc32c.h"
#include "wal/log_io.h"
#include "wal/record.h"

namespace caddb {
namespace wal {

namespace fs = std::filesystem;

std::string RecoveryReport::ToString() const {
  std::string out;
  out += "checkpoint:    ";
  out += checkpoint_path.empty()
             ? "none"
             : checkpoint_path + " (lsn " + std::to_string(checkpoint_lsn) +
                   ", generation " + std::to_string(generation) + ")";
  out += "\n";
  out += "log:           " + std::to_string(records_scanned) +
         " record(s) over " + std::to_string(segments_scanned) +
         " segment(s), trustworthy through lsn " + std::to_string(last_lsn) +
         "\n";
  out += "replayed:      " + std::to_string(records_applied) +
         " operation(s), " + std::to_string(txns_committed) +
         " transaction(s) committed, " + std::to_string(txns_discarded) +
         " discarded\n";
  if (!tail_error.empty()) {
    out += "torn tail:     " + tail_error + "\n";
  }
  if (fsck_ran) {
    out += std::string("fsck:          clean") +
           (repaired ? " (after index repair)" : "") + "\n";
  }
  return out;
}

namespace {

/// One decoded, committed-or-pending log record plus where it came from
/// (for error messages).
struct ScannedRecord {
  uint64_t lsn = 0;
  Record record;
  uint32_t payload_crc = 0;  // masked CRC32C of the encoded payload
  std::string where;         // "wal-....log lsn N"
};

/// Folds one applied record into the running replay fingerprint: a chained
/// CRC32C over (previous fingerprint, lsn, payload crc).
uint32_t CombineFingerprint(uint32_t fingerprint, uint64_t lsn,
                            uint32_t payload_crc) {
  unsigned char buf[16];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<unsigned char>(fingerprint >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    buf[4 + i] = static_cast<unsigned char>(lsn >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    buf[12 + i] = static_cast<unsigned char>(payload_crc >> (8 * i));
  }
  return Crc32c(reinterpret_cast<const char*>(buf), sizeof(buf));
}

/// Applies one already-committed record to `db`, translating the writing
/// process's surrogates through `mapping` (old id -> new id) and generic
/// binding ids through `binding_mapping`.
Status ApplyRecord(const Record& r, Database* db,
                   std::map<uint64_t, uint64_t>* mapping,
                   std::map<uint64_t, uint64_t>* binding_mapping) {
  auto map_id = [&](uint64_t old_id) -> Result<Surrogate> {
    auto it = mapping->find(old_id);
    if (it == mapping->end()) {
      return ParseError("log references unknown surrogate @" +
                        std::to_string(old_id));
    }
    return Surrogate(it->second);
  };
  auto map_participants = [&](const std::map<
      std::string, std::vector<uint64_t>>& participants)
      -> Result<std::map<std::string, std::vector<Surrogate>>> {
    std::map<std::string, std::vector<Surrogate>> out;
    for (const auto& [role, members] : participants) {
      std::vector<Surrogate>& mapped = out[role];
      for (uint64_t m : members) {
        CADDB_ASSIGN_OR_RETURN(Surrogate s, map_id(m));
        mapped.push_back(s);
      }
    }
    return out;
  };

  switch (r.type) {
    case RecordType::kBegin:
    case RecordType::kCommit:
    case RecordType::kAbort:
      return OkStatus();  // markers carry no state
    case RecordType::kDdl:
      return db->ExecuteDdl(r.text);
    case RecordType::kCreateClass:
      return db->CreateClass(r.name, r.aux);
    case RecordType::kCreateObject: {
      CADDB_ASSIGN_OR_RETURN(Surrogate created,
                             db->CreateObject(r.name, r.aux));
      (*mapping)[r.result] = created.id;
      return OkStatus();
    }
    case RecordType::kCreateSubobject: {
      CADDB_ASSIGN_OR_RETURN(Surrogate parent, map_id(r.a));
      CADDB_ASSIGN_OR_RETURN(Surrogate created,
                             db->CreateSubobject(parent, r.name));
      (*mapping)[r.result] = created.id;
      return OkStatus();
    }
    case RecordType::kCreateRelationship: {
      CADDB_ASSIGN_OR_RETURN(auto participants,
                             map_participants(r.participants));
      CADDB_ASSIGN_OR_RETURN(Surrogate created,
                             db->CreateRelationship(r.name, participants));
      (*mapping)[r.result] = created.id;
      return OkStatus();
    }
    case RecordType::kCreateSubrel: {
      CADDB_ASSIGN_OR_RETURN(Surrogate owner, map_id(r.a));
      CADDB_ASSIGN_OR_RETURN(auto participants,
                             map_participants(r.participants));
      CADDB_ASSIGN_OR_RETURN(Surrogate created,
                             db->CreateSubrel(owner, r.name, participants));
      (*mapping)[r.result] = created.id;
      return OkStatus();
    }
    case RecordType::kBind: {
      CADDB_ASSIGN_OR_RETURN(Surrogate inheritor, map_id(r.a));
      CADDB_ASSIGN_OR_RETURN(Surrogate transmitter, map_id(r.b));
      CADDB_ASSIGN_OR_RETURN(Surrogate created,
                             db->Bind(inheritor, transmitter, r.name));
      (*mapping)[r.result] = created.id;
      return OkStatus();
    }
    case RecordType::kUnbind: {
      CADDB_ASSIGN_OR_RETURN(Surrogate inheritor, map_id(r.a));
      return db->Unbind(inheritor);
    }
    case RecordType::kSetAttribute: {
      CADDB_ASSIGN_OR_RETURN(Surrogate object, map_id(r.a));
      CADDB_ASSIGN_OR_RETURN(Value remapped,
                             persist::RemapValueRefs(r.value, *mapping));
      return db->Set(object, r.name, std::move(remapped));
    }
    case RecordType::kDelete: {
      CADDB_ASSIGN_OR_RETURN(Surrogate object, map_id(r.a));
      return db->Delete(object,
                        r.detach ? ObjectStore::DeletePolicy::kDetachInheritors
                                 : ObjectStore::DeletePolicy::kRestrict);
    }
    case RecordType::kCreateDesign:
      return db->versions().CreateDesignObject(r.name, r.aux);
    case RecordType::kAddVersion: {
      CADDB_ASSIGN_OR_RETURN(Surrogate object, map_id(r.a));
      std::vector<Surrogate> predecessors;
      for (uint64_t p : r.ids) {
        CADDB_ASSIGN_OR_RETURN(Surrogate mapped, map_id(p));
        predecessors.push_back(mapped);
      }
      return db->versions().AddVersion(r.name, object, predecessors);
    }
    case RecordType::kSetVersionState: {
      CADDB_ASSIGN_OR_RETURN(Surrogate object, map_id(r.a));
      CADDB_ASSIGN_OR_RETURN(VersionState state,
                             VersionStateFromName(r.aux));
      return db->versions().SetState(r.name, object, state);
    }
    case RecordType::kSetDefaultVersion: {
      CADDB_ASSIGN_OR_RETURN(Surrogate object, map_id(r.a));
      return db->versions().SetDefaultVersion(r.name, object);
    }
    case RecordType::kBindGeneric: {
      CADDB_ASSIGN_OR_RETURN(Surrogate inheritor, map_id(r.a));
      CADDB_ASSIGN_OR_RETURN(
          uint64_t binding,
          db->versions().BindGeneric(inheritor, r.name, r.aux));
      (*binding_mapping)[r.result] = binding;
      return OkStatus();
    }
    case RecordType::kMarkResolved: {
      auto it = binding_mapping->find(r.result);
      if (it == binding_mapping->end()) {
        return ParseError("log references unknown generic binding #" +
                          std::to_string(r.result));
      }
      CADDB_ASSIGN_OR_RETURN(Surrogate version, map_id(r.a));
      return db->versions().MarkResolved(it->second, version);
    }
  }
  return InternalError("unhandled record type");
}

}  // namespace

Result<RecoveryReport> Recover(const std::string& dir, Database* db,
                               const DurabilityOptions& options) {
  if (db->store().size() != 0 || !db->catalog().ObjectTypeNames().empty()) {
    return FailedPrecondition("Recover requires an empty database");
  }
  obs::Observability* obs =
      options.wal.obs != nullptr ? options.wal.obs : obs::Default();
  obs->metrics
      .GetCounter("caddb_recovery_runs_total", "Recovery passes started")
      ->Increment();
  obs::Span span(&obs->trace, "recovery.replay",
                 obs->metrics.GetHistogram(
                     "caddb_recovery_replay_us",
                     "Whole recovery pass: checkpoint load + scan + redo"),
                 /*always_time=*/true);
  RecoveryReport report;

  // 0. GC: debris of atomic publishes cut down by a crash between create
  // and rename. Only when we may write — a read-only observer must not
  // mutate a directory another process may be recovering.
  if (!options.read_only) {
    CADDB_RETURN_IF_ERROR(RemoveStaleTempFiles(dir).status());
  }

  // 1. Snapshot: newest checkpoint whose CRC matches.
  CADDB_ASSIGN_OR_RETURN(LoadedCheckpoint checkpoint,
                         ReadNewestCheckpoint(dir));
  std::map<uint64_t, uint64_t> mapping;  // writer's surrogate -> ours
  if (checkpoint.format == 3) {
    // v3: objects live on pages. Open the page file (healing any torn
    // pages from the checkpoint's double-write images), adopt every paged
    // object with its original surrogate, then apply the meta snapshot
    // (schema, classes, version graph, allocator). Surrogates are NOT
    // remapped — the page file is authoritative — so replay's translation
    // map is seeded with identities.
    CADDB_RETURN_IF_ERROR(
        Annotate("checkpoint '" + checkpoint.path + "'",
                 db->InitPagedStore(dir, checkpoint.pages, options)));
    CADDB_RETURN_IF_ERROR(
        Annotate("checkpoint '" + checkpoint.path + "'",
                 persist::LoadMeta(checkpoint.meta, db)));
    db->store().RepairIndexes();
    for (Surrogate s : db->store().AllObjects()) mapping[s.id] = s.id;
  } else if (!checkpoint.dump.empty()) {
    CADDB_RETURN_IF_ERROR(Annotate(
        "checkpoint '" + checkpoint.path + "'",
        persist::Dumper::Load(checkpoint.dump, db, &mapping)));
  }
  report.checkpoint_lsn = checkpoint.lsn;
  report.generation = checkpoint.generation;
  report.checkpoint_path = checkpoint.path;
  report.last_lsn = checkpoint.lsn;

  // A v3 checkpoint captured while a transaction was in flight masked that
  // transaction's writes with before-images; its records — which may start
  // *before* the checkpoint lsn — must be replayed if it committed after.
  // replay_floor is the newest lsn the scan may skip wholesale.
  const uint64_t replay_floor =
      (checkpoint.format == 3 && checkpoint.replay_from != 0 &&
       checkpoint.replay_from <= checkpoint.lsn)
          ? checkpoint.replay_from - 1
          : checkpoint.lsn;

  // 2. Scan: every valid frame past the checkpoint, in lsn order. With
  // size-based rotation the log is a *chain* of segments, so segment seams
  // are verified before anything is trusted: a non-final segment must end
  // cleanly exactly one lsn before its successor starts. Only the chain's
  // effective tail may be torn (a crash mid-append) or empty (a crashed
  // rotation created the file and died before appending — including the
  // zero-length-file case, which is a clean recovery, not corruption).
  // A torn or missing segment in the *middle* of the chain is committed
  // data that cannot be replayed — that fails loudly instead of silently
  // recovering a hole.
  struct LoadedSegment {
    SegmentFileInfo info;
    SegmentContents contents;
    std::string name;
  };
  std::vector<LoadedSegment> segments;
  for (const SegmentFileInfo& segment : ListSegments(dir)) {
    CADDB_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(segment.path));
    segments.push_back({segment, DecodeFrames(bytes),
                        fs::path(segment.path).filename().string()});
  }
  if (!segments.empty() && replay_floor != 0 &&
      segments.front().info.start_lsn > replay_floor + 1) {
    return InternalError(
        "wal gap: replay needs lsn " + std::to_string(replay_floor + 1) +
        " (checkpoint lsn " + std::to_string(checkpoint.lsn) +
        ") but the oldest segment " + segments.front().name + " starts at " +
        std::to_string(segments.front().info.start_lsn) +
        " — records in between are missing");
  }
  size_t scan_limit = segments.size();
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    const LoadedSegment& seg = segments[i];
    if (!seg.contents.tail_error.empty()) {
      // A torn non-final segment is tolerable only as the effective tail:
      // every later segment must be an empty crashed-rotation artifact.
      for (size_t j = i + 1; j < segments.size(); ++j) {
        if (!segments[j].contents.frames.empty()) {
          return InternalError("wal " + seg.name +
                               " is torn in the middle of the log (" +
                               seg.contents.tail_error + ") but " +
                               segments[j].name +
                               " still holds records — committed data "
                               "between them is unrecoverable");
        }
      }
      scan_limit = i + 1;
      break;
    }
    uint64_t end_lsn = seg.contents.frames.empty()
                           ? seg.info.start_lsn - 1
                           : seg.contents.frames.back().lsn;
    if (end_lsn + 1 != segments[i + 1].info.start_lsn) {
      return InternalError(
          "wal gap between " + seg.name + " (ends at lsn " +
          std::to_string(end_lsn) + ") and " + segments[i + 1].name +
          " (starts at lsn " +
          std::to_string(segments[i + 1].info.start_lsn) + ")");
    }
  }

  std::vector<ScannedRecord> records;
  uint64_t prev_lsn = 0;
  for (size_t i = 0; i < scan_limit; ++i) {
    const LoadedSegment& segment = segments[i];
    ++report.segments_scanned;
    for (const Frame& frame : segment.contents.frames) {
      ++report.records_scanned;
      if (prev_lsn != 0 && frame.lsn <= prev_lsn) {
        return InternalError("wal " + segment.name +
                             ": lsn went backwards (" +
                             std::to_string(frame.lsn) + " after " +
                             std::to_string(prev_lsn) + ")");
      }
      prev_lsn = frame.lsn;
      if (frame.lsn <= replay_floor) continue;  // covered by the snapshot
      const std::string where =
          "wal " + segment.name + " lsn " + std::to_string(frame.lsn);
      // A frame whose CRC matched but whose payload does not decode is not
      // a crash artifact — fail loudly instead of silently dropping data.
      Result<Record> record = Record::Decode(frame.payload);
      CADDB_RETURN_IF_ERROR(Annotate(where, record.status()));
      report.last_lsn = std::max(report.last_lsn, frame.lsn);
      records.push_back({frame.lsn, std::move(*record),
                         Crc32c(frame.payload.data(), frame.payload.size()),
                         where});
    }
    if (!segment.contents.tail_error.empty()) {
      report.tail_error = segment.name + ": " + segment.contents.tail_error;
      break;
    }
  }

  // 3. Commit analysis: a transaction's records count only if its commit
  // marker made it into the trustworthy prefix. Auto-committed records
  // (txn 0) are their own commit point. The commit *lsn* is kept, not just
  // membership: the fingerprint-at-watermark below needs to know whether a
  // transaction would already have been committed by a recovery cut at the
  // watermark.
  std::set<uint64_t> seen_txns;
  std::map<uint64_t, uint64_t> commit_lsn;  // txn -> lsn of its kCommit
  for (const ScannedRecord& scanned : records) {
    if (scanned.record.txn != kAutoCommitTxn) {
      seen_txns.insert(scanned.record.txn);
    }
    if (scanned.record.type == RecordType::kCommit &&
        scanned.record.txn != kAutoCommitTxn) {
      commit_lsn[scanned.record.txn] = scanned.lsn;
    }
  }
  report.txns_committed = commit_lsn.size();
  report.txns_discarded = seen_txns.size() - commit_lsn.size();

  // 4. Redo: committed records in original lsn order, through the public
  // API, with surrogate translation.
  std::map<uint64_t, uint64_t> binding_mapping;
  for (const ScannedRecord& scanned : records) {
    const Record& r = scanned.record;
    // Pre-checkpoint records reach here only below a v3 checkpoint's
    // replay window. An auto-committed one is already in the snapshot; a
    // transaction's records matter only when its commit marker landed
    // *after* the checkpoint (a commit at or before it means the capture
    // saw the transaction as finished and included its state unmasked).
    if (r.txn == kAutoCommitTxn) {
      if (scanned.lsn <= checkpoint.lsn) continue;
    } else {
      auto committed = commit_lsn.find(r.txn);
      if (committed == commit_lsn.end() || committed->second <= checkpoint.lsn)
        continue;
    }
    if (r.type == RecordType::kBegin || r.type == RecordType::kCommit ||
        r.type == RecordType::kAbort) {
      continue;
    }
    CADDB_RETURN_IF_ERROR(
        Annotate(scanned.where,
                 ApplyRecord(r, db, &mapping, &binding_mapping)));
    ++report.records_applied;
    report.applied_fingerprint = CombineFingerprint(
        report.applied_fingerprint, scanned.lsn, scanned.payload_crc);
    // fingerprint_at is its own chain over the records a recovery cut at
    // the watermark would have applied: both the record and its commit
    // point must lie at or before the watermark. (A transaction whose
    // records straddle the watermark but whose commit arrived later was
    // *discarded* by the earlier recovery this fingerprint is compared
    // against — folding its records in would fabricate a divergence.)
    if (options.fingerprint_lsn != 0 &&
        scanned.lsn <= options.fingerprint_lsn &&
        (r.txn == kAutoCommitTxn ||
         commit_lsn[r.txn] <= options.fingerprint_lsn)) {
      report.fingerprint_at = CombineFingerprint(
          report.fingerprint_at, scanned.lsn, scanned.payload_crc);
    }
  }

  // 5. fsck: the replayed store must pass the static integrity analysis.
  if (options.fsck_on_open) {
    report.fsck_ran = true;
    analysis::DiagnosticBag findings = db->CheckStore();
    if (findings.HasErrors() && options.repair_on_fsck) {
      db->store().RepairIndexes();
      report.repaired = true;
      findings = db->CheckStore();
    }
    if (findings.HasErrors()) {
      return InternalError("post-recovery fsck failed: " +
                           findings.Summary());
    }
  }
  obs->metrics
      .GetCounter("caddb_recovery_records_applied_total",
                  "Operations re-executed across all recovery passes")
      ->Increment(report.records_applied);
  obs->metrics
      .GetCounter("caddb_recovery_txns_discarded_total",
                  "Uncommitted or aborted transactions dropped by replay")
      ->Increment(report.txns_discarded);
  span.AddAttribute("records_applied", report.records_applied);
  span.AddAttribute("txns_committed", report.txns_committed);
  span.AddAttribute("last_lsn", report.last_lsn);
  return report;
}

}  // namespace wal
}  // namespace caddb

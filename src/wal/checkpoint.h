#ifndef CADDB_WAL_CHECKPOINT_H_
#define CADDB_WAL_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace caddb {
namespace wal {

/// Checkpoint files: a database snapshot (persist::Dumper text) covering
/// every log record up to and including an lsn, published atomically.
///
/// On-disk format (version 2):
///
///   caddb-checkpoint 2 <lsn> <generation> <body-bytes> <crc32c-hex>\n
///   <Dumper::Dump body>
///
/// `generation` numbers log generations: every Database::Open writes a
/// fresh checkpoint with the loaded generation + 1, so one generation never
/// mixes the surrogate/transaction id spaces of two processes, and a
/// replication follower can detect a stale or rewound primary by a
/// generation that moves backwards. Version-1 files (no generation field)
/// are still readable and load as generation 0.
///
/// The CRC is the masked CRC32C of the body, so a checkpoint torn by a
/// crash during publication is detected and skipped in favour of the
/// previous one (writes go through a temp file + rename, so a torn final
/// file should be impossible on POSIX — the CRC is defence in depth
/// against partial copies and bit rot).
///
/// This layer deliberately knows nothing about Database; the engine hands
/// it dump text (core/database.cc composes Dump + WriteCheckpoint +
/// Wal::RotateAndTruncate).

/// `checkpoint-<lsn, 16 hex digits>.db`.
std::string CheckpointFileName(uint64_t lsn);

struct CheckpointFileInfo {
  std::string path;
  uint64_t lsn = 0;
};

/// Checkpoint files of `dir` sorted by covered lsn (ascending). Files with
/// other names are ignored.
std::vector<CheckpointFileInfo> ListCheckpoints(const std::string& dir);

/// Atomically publishes a checkpoint covering `lsn` in log generation
/// `generation` (temp file + fsync + rename + directory fsync), then
/// deletes every older checkpoint file. `lsn` may be 0 for a checkpoint of
/// a database with an empty log.
Status WriteCheckpoint(const std::string& dir, uint64_t lsn,
                       uint64_t generation, const std::string& dump);

/// Back-compat convenience: generation 0.
Status WriteCheckpoint(const std::string& dir, uint64_t lsn,
                       const std::string& dump);

/// Incremental (version 3) checkpoint payload. Instead of a full database
/// dump, a v3 checkpoint carries
///
///   - `meta`: the non-paged state (schema DDL, class registry, version
///     graph, next-surrogate counter) as persist meta-snapshot text, and
///   - `pages`: the serialized images of every page dirtied since the last
///     checkpoint — a double-write journal. The engine publishes the
///     checkpoint file first and only then writes these pages into
///     pages.db in place, so a crash mid-phase-two tears nothing that the
///     images cannot heal on the next open.
///   - `replay_from`: the begin lsn of the oldest transaction still active
///     at capture; log records in (replay_from, lsn] whose transaction
///     committed after `lsn` must be replayed even though they precede the
///     checkpoint lsn. 0 when no transaction spanned the checkpoint.
///
/// On-disk: header line as v2, body =
///
///   replayfrom <lsn>\n
///   meta <byte-count>\n<meta bytes>
///   pages <count>\n
///   page <id> <byte-count>\n<raw page image>   (repeated)
struct CheckpointData {
  std::string meta;
  uint64_t replay_from = 0;
  std::vector<std::pair<uint32_t, std::string>> pages;
};

/// Atomically publishes an incremental v3 checkpoint, then deletes every
/// older checkpoint file.
Status WriteCheckpointV3(const std::string& dir, uint64_t lsn,
                         uint64_t generation, const CheckpointData& data);

struct LoadedCheckpoint {
  /// 0 when no checkpoint exists (recovery replays the log from lsn 1).
  uint64_t lsn = 0;
  /// Log generation the checkpoint was written in (0 for version-1 files
  /// and for fresh directories).
  uint64_t generation = 0;
  /// File format the checkpoint was stored in (1, 2 or 3; 0 for a fresh
  /// directory with no checkpoint at all).
  int format = 0;
  /// v1/v2: the full Dumper::Dump text. Empty for v3.
  std::string dump;
  /// v3 only: meta-snapshot text, dirty-page images, and the oldest lsn
  /// replay may still need (see CheckpointData).
  std::string meta;
  uint64_t replay_from = 0;
  std::map<uint32_t, std::string> pages;
  std::string path;
};

/// Parses and CRC-checks one checkpoint file. Every failure is a parse
/// error naming the file and the defect — the offline disk verifier audits
/// each retained checkpoint individually through this, while normal
/// recovery only cares about the newest usable one.
Result<LoadedCheckpoint> ReadCheckpointFile(const CheckpointFileInfo& info);

/// Loads the newest checkpoint whose header parses and whose body matches
/// its CRC, skipping (but not deleting) invalid ones. A directory with no
/// usable checkpoint yields {lsn = 0, dump = ""} — not an error.
Result<LoadedCheckpoint> ReadNewestCheckpoint(const std::string& dir);

}  // namespace wal
}  // namespace caddb

#endif  // CADDB_WAL_CHECKPOINT_H_

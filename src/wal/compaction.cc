#include "wal/compaction.h"

#include <set>
#include <vector>

#include "wal/log_io.h"
#include "wal/record.h"

namespace caddb {
namespace wal {

Result<CompactionResult> CompactClosedSegment(const std::string& path) {
  CompactionResult result;
  CADDB_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  result.bytes_before = bytes.size();
  result.bytes_after = bytes.size();
  SegmentContents contents = DecodeFrames(bytes);
  if (!contents.tail_error.empty()) return result;  // crash artifact: keep

  struct DecodedFrame {
    uint64_t lsn;
    Record record;
    const Frame* frame;
  };
  std::vector<DecodedFrame> decoded;
  decoded.reserve(contents.frames.size());
  std::set<uint64_t> aborted_here;
  for (const Frame& frame : contents.frames) {
    CADDB_ASSIGN_OR_RETURN(Record record, Record::Decode(frame.payload));
    if (record.type == RecordType::kAbort &&
        record.txn != kAutoCommitTxn) {
      aborted_here.insert(record.txn);
    }
    decoded.push_back({frame.lsn, std::move(record), &frame});
  }
  if (aborted_here.empty()) return result;

  std::string compacted;
  compacted.reserve(bytes.size());
  for (const DecodedFrame& d : decoded) {
    bool marker = d.record.type == RecordType::kBegin ||
                  d.record.type == RecordType::kCommit ||
                  d.record.type == RecordType::kAbort;
    if (!marker && aborted_here.count(d.record.txn) != 0) {
      ++result.records_dropped;
      continue;
    }
    compacted += EncodeFrame(d.lsn, d.frame->payload);
  }
  if (result.records_dropped == 0) return result;

  CADDB_RETURN_IF_ERROR(AtomicWriteFile(path, compacted));
  result.bytes_after = compacted.size();
  result.rewritten = true;
  return result;
}

}  // namespace wal
}  // namespace caddb

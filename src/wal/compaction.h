#ifndef CADDB_WAL_COMPACTION_H_
#define CADDB_WAL_COMPACTION_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace caddb {
namespace wal {

/// What one segment compaction did.
struct CompactionResult {
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
  uint64_t records_dropped = 0;
  /// False when the segment held nothing droppable (file untouched).
  bool rewritten = false;

  uint64_t bytes_reclaimed() const { return bytes_before - bytes_after; }
};

/// Rewrites the closed segment at `path`, dropping the payload records of
/// every transaction whose Abort marker lies within the segment. The
/// Begin/Commit/Abort markers themselves are kept: replay's commit analysis
/// still sees the whole transaction bracket, and the segment's first/last
/// frame lsns are unchanged, so the recovery-time continuity check across
/// segment seams ("last lsn + 1 == next segment's start") keeps holding.
/// Interior lsn gaps are legal — replay only requires monotonic lsns.
///
/// Aborted records replay as no-ops anyway; compaction just stops paying
/// their disk and shipping cost. The rewrite is atomic (temp + rename); a
/// crash mid-compaction leaves either the old or the new file, both valid.
///
/// A segment with a torn tail is left untouched (rewritten = false): this
/// function is for cleanly closed segments, and rewriting a crash artifact
/// would destroy forensic state.
Result<CompactionResult> CompactClosedSegment(const std::string& path);

}  // namespace wal
}  // namespace caddb

#endif  // CADDB_WAL_COMPACTION_H_

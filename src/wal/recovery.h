#ifndef CADDB_WAL_RECOVERY_H_
#define CADDB_WAL_RECOVERY_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "wal/wal.h"

namespace caddb {

class Database;

namespace wal {

/// Durability knobs for Database::Open.
struct DurabilityOptions {
  /// Sync policy and fault-injection hooks for the log opened after
  /// recovery.
  WalOptions wal;
  /// Run the store-integrity analysis (Database::CheckStore) at the end of
  /// recovery, so a replay that produced an inconsistent store fails Open
  /// instead of handing out a corrupt database.
  bool fsck_on_open = true;
  /// If that fsck reports errors, rebuild the secondary indexes
  /// (ObjectStore::RepairIndexes) and re-run it once before giving up.
  bool repair_on_fsck = true;
  /// When non-zero, RecoveryReport::fingerprint_at captures the running
  /// applied-record fingerprint as of this lsn (see the report field). The
  /// replication follower uses it to prove that a re-replayed log prefix
  /// is byte-identical to what it applied last time.
  uint64_t fingerprint_lsn = 0;
  /// Read-only open: the page file is opened without write access, healed
  /// checkpoint page images are served from a read overlay instead of being
  /// written back, and no stale-temp-file GC runs.
  bool read_only = false;
  /// Buffer-pool capacity in 8 KiB pages for the paged object store.
  size_t buffer_pool_pages = 256;
  /// When non-zero, after each auto-committed mutation the store trims
  /// clean resident objects down to this budget (demand paging brings them
  /// back on access). 0 = keep everything resident.
  size_t resident_object_budget = 0;
  /// Fault injection for the page file (see storage::FileManagerOptions):
  /// the Nth page write tears/drops, or fails cleanly. Defaults off.
  uint64_t page_fail_after_writes = ~uint64_t{0};
  uint64_t page_error_at_write = ~uint64_t{0};
  /// When non-zero, Database::Open starts a background thread running an
  /// incremental checkpoint every this-many milliseconds. Commits are never
  /// paused by it beyond the short capture critical section.
  uint64_t checkpoint_interval_ms = 0;
};

/// What one recovery pass found and did. Surfaced by `wal status` and the
/// crash-matrix tests.
struct RecoveryReport {
  uint64_t checkpoint_lsn = 0;   // 0 = no checkpoint, replay from lsn 1
  /// Log generation of the loaded checkpoint (0 with no checkpoint or a
  /// version-1 file). Database::Open writes its fresh checkpoint with
  /// generation + 1, so every process lifetime is its own generation.
  uint64_t generation = 0;
  std::string checkpoint_path;
  uint64_t segments_scanned = 0;
  uint64_t records_scanned = 0;  // valid frames seen (incl. pre-checkpoint)
  uint64_t records_applied = 0;  // operations re-executed
  uint64_t txns_committed = 0;   // explicit transactions replayed
  uint64_t txns_discarded = 0;   // uncommitted or aborted transactions
  /// Last lsn of the trustworthy log prefix (checkpoint lsn when the log
  /// holds nothing newer). The reopened Wal continues at last_lsn + 1.
  uint64_t last_lsn = 0;
  /// Empty when every segment ended exactly on a frame boundary; otherwise
  /// a description of the torn/corrupt tail that ended replay.
  std::string tail_error;
  bool fsck_ran = false;
  bool repaired = false;
  /// Chained CRC32C over the (lsn, payload) of every record this pass
  /// applied, in lsn order. Two recoveries that applied the same committed
  /// operations from the same bytes agree on it; two histories that
  /// diverged do not (with CRC32C confidence). Compaction never changes it:
  /// it only drops records replay skips anyway.
  uint32_t applied_fingerprint = 0;
  /// Separate fingerprint chain over the records a recovery cut at
  /// DurabilityOptions::fingerprint_lsn would have applied: record lsn
  /// *and* its transaction's commit lsn both at or before the watermark.
  /// Equals the applied_fingerprint an earlier recovery reported when its
  /// last_lsn was the watermark — unless the log's history changed under
  /// it. (0 when the option is unset or nothing qualified.)
  uint32_t fingerprint_at = 0;

  std::string ToString() const;
};

/// Rebuilds `db` (which must be empty) from the durability directory `dir`:
/// loads the newest valid checkpoint, then replays every committed
/// transaction and auto-committed operation from the log segments in lsn
/// order, stopping at the first torn or corrupt frame. Replay goes through
/// the public Database API, so every schema/domain/binding/cycle invariant
/// is re-validated; surrogates are re-assigned and remapped exactly like a
/// dump load. Does not open a Wal — Database::Open does that afterwards,
/// always into a fresh segment.
Result<RecoveryReport> Recover(const std::string& dir, Database* db,
                               const DurabilityOptions& options);

}  // namespace wal
}  // namespace caddb

#endif  // CADDB_WAL_RECOVERY_H_

#include "wal/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "wal/crc32c.h"
#include "wal/log_io.h"

namespace caddb {
namespace wal {

namespace fs = std::filesystem;

std::string CheckpointFileName(uint64_t lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%016llx.db",
                static_cast<unsigned long long>(lsn));
  return buf;
}

std::vector<CheckpointFileInfo> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointFileInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long lsn = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%16llx.db%n", &lsn,
                    &consumed) == 1 &&
        static_cast<size_t>(consumed) == name.size()) {
      out.push_back({entry.path().string(), static_cast<uint64_t>(lsn)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CheckpointFileInfo& a, const CheckpointFileInfo& b) {
              return a.lsn < b.lsn;
            });
  return out;
}

Status WriteCheckpoint(const std::string& dir, uint64_t lsn,
                       uint64_t generation, const std::string& dump) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create checkpoint directory '" + dir +
                         "': " + ec.message());
  }
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                Crc32cMask(Crc32c(dump.data(), dump.size())));
  std::string contents = "caddb-checkpoint 2 " + std::to_string(lsn) + " " +
                         std::to_string(generation) + " " +
                         std::to_string(dump.size()) + " " + crc_hex + "\n" +
                         dump;
  const std::string path = (fs::path(dir) / CheckpointFileName(lsn)).string();
  CADDB_RETURN_IF_ERROR(AtomicWriteFile(path, contents));
  // The new checkpoint is durable; older ones are now dead weight.
  for (const CheckpointFileInfo& info : ListCheckpoints(dir)) {
    if (info.lsn >= lsn) continue;
    fs::remove(info.path, ec);
    if (ec) {
      return InternalError("cannot remove old checkpoint '" + info.path +
                           "': " + ec.message());
    }
  }
  return SyncDir(dir);
}

Status WriteCheckpoint(const std::string& dir, uint64_t lsn,
                       const std::string& dump) {
  return WriteCheckpoint(dir, lsn, /*generation=*/0, dump);
}

namespace {

/// Parses + CRC-checks one checkpoint file.
Result<LoadedCheckpoint> ReadCheckpointFile(const CheckpointFileInfo& info) {
  CADDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(info.path));
  size_t eol = contents.find('\n');
  if (eol == std::string::npos) {
    return ParseError("checkpoint '" + info.path + "': missing header line");
  }
  std::istringstream header(contents.substr(0, eol));
  std::string magic;
  int version = 0;
  uint64_t lsn = 0;
  uint64_t generation = 0;
  size_t body_bytes = 0;
  std::string crc_hex;
  header >> magic >> version;
  if (version == 1) {
    // Version 1 predates log generations; it loads as generation 0.
    header >> lsn >> body_bytes >> crc_hex;
  } else {
    header >> lsn >> generation >> body_bytes >> crc_hex;
  }
  if (magic != "caddb-checkpoint" || (version != 1 && version != 2) ||
      header.fail()) {
    return ParseError("checkpoint '" + info.path + "': bad header");
  }
  if (lsn != info.lsn) {
    return ParseError("checkpoint '" + info.path +
                      "': header lsn does not match file name");
  }
  std::string body = contents.substr(eol + 1);
  if (body.size() != body_bytes) {
    return ParseError("checkpoint '" + info.path + "': body is " +
                      std::to_string(body.size()) + " bytes, header says " +
                      std::to_string(body_bytes));
  }
  uint32_t expected = 0;
  if (std::sscanf(crc_hex.c_str(), "%8x", &expected) != 1) {
    return ParseError("checkpoint '" + info.path + "': bad crc field");
  }
  uint32_t actual = Crc32cMask(Crc32c(body.data(), body.size()));
  if (actual != expected) {
    return ParseError("checkpoint '" + info.path + "': crc mismatch");
  }
  LoadedCheckpoint out;
  out.lsn = lsn;
  out.generation = generation;
  out.dump = std::move(body);
  out.path = info.path;
  return out;
}

}  // namespace

Result<LoadedCheckpoint> ReadNewestCheckpoint(const std::string& dir) {
  std::vector<CheckpointFileInfo> all = ListCheckpoints(dir);
  std::string first_error;
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    Result<LoadedCheckpoint> loaded = ReadCheckpointFile(*it);
    if (loaded.ok()) return loaded;
    if (first_error.empty()) first_error = loaded.status().message();
  }
  if (!all.empty()) {
    // Every checkpoint on disk is damaged: surface it rather than silently
    // replaying the whole log against an empty store, which would produce a
    // plausible-looking but wrong database.
    return InternalError("no usable checkpoint in '" + dir +
                         "' (newest failed with: " + first_error + ")");
  }
  return LoadedCheckpoint{};  // fresh directory
}

}  // namespace wal
}  // namespace caddb

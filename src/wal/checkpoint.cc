#include "wal/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "fault/failpoint.h"
#include "wal/crc32c.h"
#include "wal/log_io.h"

namespace caddb {
namespace wal {

namespace fs = std::filesystem;

std::string CheckpointFileName(uint64_t lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%016llx.db",
                static_cast<unsigned long long>(lsn));
  return buf;
}

std::vector<CheckpointFileInfo> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointFileInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long lsn = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%16llx.db%n", &lsn,
                    &consumed) == 1 &&
        static_cast<size_t>(consumed) == name.size()) {
      out.push_back({entry.path().string(), static_cast<uint64_t>(lsn)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CheckpointFileInfo& a, const CheckpointFileInfo& b) {
              return a.lsn < b.lsn;
            });
  return out;
}

Status WriteCheckpoint(const std::string& dir, uint64_t lsn,
                       uint64_t generation, const std::string& dump) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create checkpoint directory '" + dir +
                         "': " + ec.message());
  }
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                Crc32cMask(Crc32c(dump.data(), dump.size())));
  std::string contents = "caddb-checkpoint 2 " + std::to_string(lsn) + " " +
                         std::to_string(generation) + " " +
                         std::to_string(dump.size()) + " " + crc_hex + "\n" +
                         dump;
  const std::string path = (fs::path(dir) / CheckpointFileName(lsn)).string();
  CADDB_RETURN_IF_ERROR(fault::Inject(fault::sites::kWalCheckpointPublish));
  CADDB_RETURN_IF_ERROR(AtomicWriteFile(path, contents));
  // The new checkpoint is durable; older ones are now dead weight.
  for (const CheckpointFileInfo& info : ListCheckpoints(dir)) {
    if (info.lsn >= lsn) continue;
    fs::remove(info.path, ec);
    if (ec) {
      return InternalError("cannot remove old checkpoint '" + info.path +
                           "': " + ec.message());
    }
  }
  return SyncDir(dir);
}

Status WriteCheckpoint(const std::string& dir, uint64_t lsn,
                       const std::string& dump) {
  return WriteCheckpoint(dir, lsn, /*generation=*/0, dump);
}

Status WriteCheckpointV3(const std::string& dir, uint64_t lsn,
                         uint64_t generation, const CheckpointData& data) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create checkpoint directory '" + dir +
                         "': " + ec.message());
  }
  std::string body;
  body += "replayfrom " + std::to_string(data.replay_from) + "\n";
  body += "meta " + std::to_string(data.meta.size()) + "\n";
  body += data.meta;
  body += "pages " + std::to_string(data.pages.size()) + "\n";
  for (const auto& [page_id, image] : data.pages) {
    body += "page " + std::to_string(page_id) + " " +
            std::to_string(image.size()) + "\n";
    body += image;
  }
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                Crc32cMask(Crc32c(body.data(), body.size())));
  std::string contents = "caddb-checkpoint 3 " + std::to_string(lsn) + " " +
                         std::to_string(generation) + " " +
                         std::to_string(body.size()) + " " + crc_hex + "\n" +
                         body;
  const std::string path = (fs::path(dir) / CheckpointFileName(lsn)).string();
  CADDB_RETURN_IF_ERROR(fault::Inject(fault::sites::kWalCheckpointPublish));
  CADDB_RETURN_IF_ERROR(AtomicWriteFile(path, contents));
  for (const CheckpointFileInfo& info : ListCheckpoints(dir)) {
    if (info.lsn >= lsn) continue;
    fs::remove(info.path, ec);
    if (ec) {
      return InternalError("cannot remove old checkpoint '" + info.path +
                           "': " + ec.message());
    }
  }
  return SyncDir(dir);
}

namespace {

/// Parses the v3 body (after the CRC already checked out).
Status ParseV3Body(const std::string& path, const std::string& body,
                   LoadedCheckpoint* out) {
  size_t pos = 0;
  auto next_line = [&](std::string* line) -> bool {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) return false;
    *line = body.substr(pos, eol - pos);
    pos = eol + 1;
    return true;
  };
  std::string line;
  unsigned long long value = 0;
  if (!next_line(&line) ||
      std::sscanf(line.c_str(), "replayfrom %llu", &value) != 1) {
    return ParseError("checkpoint '" + path + "': bad replayfrom line");
  }
  out->replay_from = value;
  if (!next_line(&line) ||
      std::sscanf(line.c_str(), "meta %llu", &value) != 1 ||
      body.size() - pos < value) {
    return ParseError("checkpoint '" + path + "': bad meta section");
  }
  out->meta = body.substr(pos, value);
  pos += value;
  unsigned long long page_count = 0;
  if (!next_line(&line) ||
      std::sscanf(line.c_str(), "pages %llu", &page_count) != 1) {
    return ParseError("checkpoint '" + path + "': bad pages line");
  }
  for (unsigned long long i = 0; i < page_count; ++i) {
    unsigned long long page_id = 0;
    if (!next_line(&line) ||
        std::sscanf(line.c_str(), "page %llu %llu", &page_id, &value) != 2 ||
        body.size() - pos < value) {
      return ParseError("checkpoint '" + path + "': bad page section " +
                        std::to_string(i));
    }
    out->pages[static_cast<uint32_t>(page_id)] = body.substr(pos, value);
    pos += value;
  }
  if (pos != body.size()) {
    return ParseError("checkpoint '" + path + "': trailing bytes after pages");
  }
  return OkStatus();
}

}  // namespace

Result<LoadedCheckpoint> ReadCheckpointFile(const CheckpointFileInfo& info) {
  CADDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(info.path));
  size_t eol = contents.find('\n');
  if (eol == std::string::npos) {
    return ParseError("checkpoint '" + info.path + "': missing header line");
  }
  std::istringstream header(contents.substr(0, eol));
  std::string magic;
  int version = 0;
  uint64_t lsn = 0;
  uint64_t generation = 0;
  size_t body_bytes = 0;
  std::string crc_hex;
  header >> magic >> version;
  if (version == 1) {
    // Version 1 predates log generations; it loads as generation 0.
    header >> lsn >> body_bytes >> crc_hex;
  } else {
    header >> lsn >> generation >> body_bytes >> crc_hex;
  }
  if (magic != "caddb-checkpoint" ||
      (version != 1 && version != 2 && version != 3) || header.fail()) {
    return ParseError("checkpoint '" + info.path + "': bad header");
  }
  if (lsn != info.lsn) {
    return ParseError("checkpoint '" + info.path +
                      "': header lsn does not match file name");
  }
  std::string body = contents.substr(eol + 1);
  if (body.size() != body_bytes) {
    return ParseError("checkpoint '" + info.path + "': body is " +
                      std::to_string(body.size()) + " bytes, header says " +
                      std::to_string(body_bytes));
  }
  uint32_t expected = 0;
  if (std::sscanf(crc_hex.c_str(), "%8x", &expected) != 1) {
    return ParseError("checkpoint '" + info.path + "': bad crc field");
  }
  uint32_t actual = Crc32cMask(Crc32c(body.data(), body.size()));
  if (actual != expected) {
    return ParseError("checkpoint '" + info.path + "': crc mismatch");
  }
  LoadedCheckpoint out;
  out.lsn = lsn;
  out.generation = generation;
  out.format = version;
  out.path = info.path;
  if (version == 3) {
    CADDB_RETURN_IF_ERROR(ParseV3Body(info.path, body, &out));
  } else {
    out.dump = std::move(body);
  }
  return out;
}

Result<LoadedCheckpoint> ReadNewestCheckpoint(const std::string& dir) {
  std::vector<CheckpointFileInfo> all = ListCheckpoints(dir);
  std::string first_error;
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    Result<LoadedCheckpoint> loaded = ReadCheckpointFile(*it);
    if (loaded.ok()) return loaded;
    if (first_error.empty()) first_error = loaded.status().message();
  }
  if (!all.empty()) {
    // Every checkpoint on disk is damaged: surface it rather than silently
    // replaying the whole log against an empty store, which would produce a
    // plausible-looking but wrong database.
    return InternalError("no usable checkpoint in '" + dir +
                         "' (newest failed with: " + first_error + ")");
  }
  return LoadedCheckpoint{};  // fresh directory
}

}  // namespace wal
}  // namespace caddb

#ifndef CADDB_WAL_CRC32C_H_
#define CADDB_WAL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace caddb {
namespace wal {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum guarding every log frame and checkpoint body. Chosen over plain
/// CRC-32 for its better burst-error detection; software table-driven, no
/// SSE4.2 dependency so sanitizer and cross builds behave identically.

/// Extends `crc` (a previous Crc32c result, or 0 for a fresh run) over
/// `data[0, n)`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Masked form stored on disk (rotate + offset, the LevelDB/RocksDB trick):
/// a CRC of data that itself contains CRCs stays distinguishable.
uint32_t Crc32cMask(uint32_t crc);
uint32_t Crc32cUnmask(uint32_t masked);

}  // namespace wal
}  // namespace caddb

#endif  // CADDB_WAL_CRC32C_H_

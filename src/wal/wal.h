#ifndef CADDB_WAL_WAL_H_
#define CADDB_WAL_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/observability.h"
#include "util/result.h"
#include "wal/log_io.h"
#include "wal/record.h"

namespace caddb {
namespace wal {

/// When a commit becomes durable (fsync policy).
enum class SyncPolicy {
  /// fsync before every commit acknowledgement: a committed transaction is
  /// durable the moment Commit returns.
  kAlways,
  /// Group commit: commits are acknowledged after the buffered write; the
  /// log is fsynced once per `batch_commits` commits or once the oldest
  /// unsynced commit is `batch_interval_us` old, whichever comes first.
  /// On a crash the un-fsynced suffix — at most one batch — may be lost,
  /// but recovery always lands on a committed-prefix state: batches end on
  /// record boundaries and replay discards torn tails and uncommitted
  /// transactions. Atomicity and prefix consistency are identical to
  /// kAlways; only the ack-to-durable window differs.
  kBatch,
  /// Never fsync (except on rotate/close/checkpoint). Durability only up to
  /// the last checkpoint; for bulk loads and benchmark baselines.
  kNone,
};

const char* SyncPolicyName(SyncPolicy policy);
Result<SyncPolicy> SyncPolicyFromName(const std::string& name);

/// A segment that was closed by size-based rotation (not by checkpoint
/// truncation, which deletes the closed files immediately). The replication
/// shipper hangs off this via WalOptions::segment_close_hook.
struct ClosedSegment {
  std::string path;
  uint64_t start_lsn = 0;
  uint64_t last_lsn = 0;  // lsn of the segment's final record
};

using SegmentCloseHook = std::function<void(const ClosedSegment&)>;

struct WalOptions {
  SyncPolicy sync = SyncPolicy::kAlways;
  /// kBatch: fsync after this many unsynced commits...
  size_t batch_commits = 32;
  /// ...or once the oldest unsynced commit is this old.
  uint64_t batch_interval_us = 1000;
  /// How segment files are opened — tests swap in FailpointFactory to
  /// simulate crashes at arbitrary byte offsets. Null means real files.
  FileFactory file_factory;
  /// Rotate to a fresh segment once the live one reaches this many bytes
  /// (0 = segments only rotate at checkpoints). Size-closed segments stay
  /// on disk until the next checkpoint truncates them; recovery replays
  /// across the whole chain and verifies lsn continuity at every seam.
  uint64_t segment_bytes = 0;
  /// Rewrite size-closed segments dropping the payload records of
  /// transactions that aborted within the segment (their Begin/Abort
  /// markers stay, so replay analysis and segment-seam lsns are
  /// unaffected). Reclaimed bytes show up in WalStats / `wal status`.
  bool compact_on_rotate = true;
  /// Called after a segment is closed (and compacted) by size rotation.
  /// Runs on the appending thread with the Wal mutex released, so the hook
  /// may call back into the Wal (the replication shipper does).
  SegmentCloseHook segment_close_hook;
  /// Move fsyncs to a dedicated syncer thread: committers enqueue their
  /// target lsn and wait (SyncPolicy::kAlways) or continue
  /// (kBatch/kNone); one fsync then acknowledges every commit buffered
  /// before it, and — unlike the in-line path — the fsync itself runs
  /// outside the Wal mutex, so concurrent committers append while the
  /// previous batch is still being made durable. A failed fsync is sticky:
  /// every later commit/sync reports it.
  bool batched_fsync = false;
  /// Metrics/trace bundle the log reports into (not owned; must outlive the
  /// Wal). Null falls back to the process-global obs::Default() bundle.
  /// Database::Open injects the database's own bundle here.
  obs::Observability* obs = nullptr;
};

/// Point-in-time counters for `wal status` and the benchmarks.
struct WalStats {
  std::string dir;
  SyncPolicy policy = SyncPolicy::kAlways;
  uint64_t last_lsn = 0;          // last appended record
  uint64_t synced_lsn = 0;        // last record guaranteed on disk
  uint64_t segment_start_lsn = 0; // first lsn of the live segment
  uint64_t records_appended = 0;
  uint64_t commits = 0;           // commit points (txn commits + auto-commits)
  uint64_t fsyncs = 0;
  uint64_t segments_created = 0;
  uint64_t bytes_appended = 0;
  uint64_t size_rotations = 0;    // segments closed because they grew full
  uint64_t compactions = 0;       // size-closed segments that were rewritten
  uint64_t compaction_bytes_reclaimed = 0;

  std::string ToString() const;
};

/// One segment file on disk: `wal-<first-lsn, 16 hex digits>.log`.
struct SegmentFileInfo {
  std::string path;
  uint64_t start_lsn = 0;
};

/// Segment files of `dir` sorted by start lsn. Non-segment files ignored.
std::vector<SegmentFileInfo> ListSegments(const std::string& dir);

/// Segment file name for a starting lsn.
std::string SegmentFileName(uint64_t start_lsn);

/// The append side of the write-ahead log: length-prefixed CRC32C-framed
/// records in numbered segment files, group-commit batching, rotation and
/// truncation at checkpoints. Thread-safe — the transaction manager appends
/// from concurrent committers; one fsync then covers every record buffered
/// before it (group commit).
///
/// The Wal never reads its own files; recovery (wal/recovery.h) scans
/// segments independently before a Wal is opened for the new process, and
/// always into a *fresh* segment — a torn tail from a crash is never
/// appended to.
class Wal {
 public:
  /// Starts logging into the new segment `wal-<next_lsn>.log` under `dir`
  /// (created if missing). `next_lsn` is 1 for a fresh database or
  /// last-recovered-lsn + 1 after recovery.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           const WalOptions& options,
                                           uint64_t next_lsn);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends without forcing a sync: transaction-interior records, whose
  /// durability rides on the following commit marker. Returns the lsn.
  Result<uint64_t> Append(const Record& record);

  /// Appends `record` and applies the sync policy: commit markers and
  /// auto-committed single operations go through here.
  Status AppendCommit(const Record& record);

  /// Split commit, for a caller that must assign the commit marker's lsn
  /// inside its own critical section but must not hold that section across
  /// an fsync: the transaction manager appends the marker under the store
  /// gate (so checkpoint capture observes marker-lsn assignment and
  /// active-set changes atomically), releases the gate, then waits for
  /// durability. AppendCommitRecord appends the marker and counts the
  /// commit point, returning its lsn; FinishCommit applies the sync policy
  /// and any pending size rotation. AppendCommit is the fused form.
  Result<uint64_t> AppendCommitRecord(const Record& record);
  Status FinishCommit();

  /// Forces everything appended so far to disk.
  Status Sync();

  /// Syncs and switches to a fresh segment starting at last_lsn() + 1, then
  /// deletes every older segment — called by checkpointing after the
  /// snapshot covering those records has been atomically published.
  Status RotateAndTruncate();

  /// As above, but retains every segment holding records at or above
  /// `retain_from_lsn`: a segment is deleted only when the following
  /// segment starts at or below that lsn (so all its records precede it).
  /// Incremental checkpoints pass the oldest lsn recovery may still need —
  /// the begin lsn of the oldest transaction spanning the checkpoint.
  /// 0 means no retention constraint (same as the no-argument form).
  Status RotateAndTruncate(uint64_t retain_from_lsn);

  /// Syncs and closes the live segment. The Wal is unusable afterwards.
  Status Close();

  /// Allocates a pseudo-transaction id for a multi-record atomic group
  /// logged outside the transaction manager (workspace checkin, generic
  /// rebinding). The group brackets its records with Begin/Commit like an
  /// explicit transaction, so replay applies it all-or-nothing. Ids come
  /// from a high range that the transaction manager's counter can never
  /// reach within one log generation (checkpoint-on-open confines every
  /// generation to a single process).
  uint64_t AllocateGroupTxn();

  uint64_t last_lsn() const;
  const std::string& dir() const { return dir_; }
  SyncPolicy policy() const { return options_.sync; }
  WalStats stats() const;

  /// Trace context captured from the committing thread at the most recent
  /// commit point (invalid while tracing is off). The replication shipper
  /// stamps this into the MANIFEST so a follower's rebuild span links back
  /// to the originating commit's distributed trace.
  obs::TraceContext last_commit_context() const;

 private:
  Wal(std::string dir, WalOptions options, uint64_t next_lsn);

  Status OpenSegmentLocked(uint64_t start_lsn);
  Status AppendLocked(std::unique_lock<std::mutex>& lock, const Record& record,
                      uint64_t* lsn_out);
  /// Applies the commit-time sync policy (shared tail of AppendCommit).
  Status CommitSyncLocked(std::unique_lock<std::mutex>& lock);
  /// The sync-policy switch alone (no commit counting): the deferred half
  /// of the split commit.
  Status CommitPolicyLocked(std::unique_lock<std::mutex>& lock);
  /// Makes everything appended so far durable — in-line fsync, or a
  /// request + wait on the syncer thread when batched_fsync is on.
  Status SyncLocked(std::unique_lock<std::mutex>& lock);
  /// In-line fsync of the live file; requires no syncer fsync in flight.
  Status SyncFileLocked();
  /// Asks the syncer thread to cover lsns through `target`.
  void RequestSyncLocked(uint64_t target);
  /// Closes the live segment and opens a fresh one at next_lsn_. With
  /// `truncate`, deletes older segments — all of them when `retain_from`
  /// is 0, else only those entirely below it (checkpoint path); without,
  /// compacts the closed segment and queues it for the close hook (size
  /// rotation).
  Status RotateLocked(std::unique_lock<std::mutex>& lock, bool truncate,
                      uint64_t retain_from = 0);
  /// Size-rotation trigger, called after a successful append.
  Status MaybeRotateBySizeLocked(std::unique_lock<std::mutex>& lock);
  /// Drains pending_closed_ into the close hook; call with mu_ released.
  void FireCloseHook(std::vector<ClosedSegment> closed);
  void SyncerLoop();

  const std::string dir_;
  const WalOptions options_;

  /// Registry mirrors of WalStats (which stays authoritative for
  /// `wal status`), plus the fsync/group-commit timings.
  obs::Observability* obs_;
  obs::Counter* m_appends_;
  obs::Counter* m_commits_;
  obs::Counter* m_fsyncs_;
  obs::Counter* m_bytes_;
  obs::Histogram* m_fsync_us_;
  obs::Histogram* m_commits_per_fsync_;
  obs::Histogram* m_append_us_;  // trace-gated (hot path)
  uint64_t commits_since_fsync_ = 0;

  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  std::string segment_path_;
  uint64_t segment_bytes_written_ = 0;
  uint64_t next_lsn_;
  uint64_t segment_start_lsn_ = 0;
  uint64_t synced_lsn_ = 0;
  size_t unsynced_commits_ = 0;
  std::chrono::steady_clock::time_point oldest_unsynced_commit_{};
  bool closed_ = false;
  uint64_t next_group_txn_ = (1ull << 62) + 1;
  obs::TraceContext last_commit_ctx_;  // guarded by mu_
  WalStats stats_{};
  std::vector<ClosedSegment> pending_closed_;  // awaiting the close hook

  // Batched-fsync machinery (idle unless options_.batched_fsync).
  std::thread syncer_;
  std::condition_variable syncer_wake_cv_;  // work for the syncer
  std::condition_variable sync_done_cv_;    // synced_lsn_ advanced / drained
  std::condition_variable rotate_done_cv_;  // appenders blocked by rotation
  bool syncer_stop_ = false;
  bool sync_in_flight_ = false;
  bool rotating_ = false;
  uint64_t sync_requested_lsn_ = 0;
  Status sync_error_;  // sticky: first failed fsync poisons the log
};

}  // namespace wal
}  // namespace caddb

#endif  // CADDB_WAL_WAL_H_

#ifndef CADDB_WAL_RECORD_H_
#define CADDB_WAL_RECORD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "values/value.h"

namespace caddb {
namespace wal {

/// One logical redo record: a mutating operation of the public Database /
/// TransactionManager / VersionManager API, plus transaction markers. The
/// log is *logical* (operation + arguments, not byte deltas): recovery
/// replays records through the same public API that produced them, so every
/// schema, domain, binding and cycle invariant is re-validated on the way
/// back in — the same property persist::Dumper::Load relies on.
enum class RecordType {
  kBegin,     // explicit transaction starts (first write of a txn)
  kCommit,    // transaction commit marker — the durability point
  kAbort,     // transaction rolled back; its records are skipped on replay
  kDdl,       // ExecuteDdl source text
  kCreateClass,
  kCreateObject,
  kCreateSubobject,
  kCreateRelationship,
  kCreateSubrel,
  kBind,
  kUnbind,
  kSetAttribute,
  kDelete,
  // Version-manager operations.
  kCreateDesign,
  kAddVersion,
  kSetVersionState,
  kSetDefaultVersion,
  kBindGeneric,
  kMarkResolved,
};

const char* RecordTypeName(RecordType type);

/// Transaction id 0 marks auto-committed records: single operations issued
/// outside an explicit transaction. They need no BEGIN/COMMIT bracket and
/// are always replayed.
constexpr uint64_t kAutoCommitTxn = 0;

/// A decoded log record. One struct covers every RecordType; the factory
/// functions below document which fields each operation uses. Surrogates are
/// the *runtime* ids of the process that wrote the log; recovery remaps them
/// (creation records carry the id the operation returned in `result`, which
/// seeds the old-id -> new-id mapping exactly like a dump load).
struct Record {
  RecordType type = RecordType::kBegin;
  uint64_t txn = kAutoCommitTxn;

  uint64_t result = 0;    // surrogate returned by creates / generic-binding id
  uint64_t a = 0;         // first operand surrogate (object, inheritor, ...)
  uint64_t b = 0;         // second operand surrogate (transmitter, ...)
  std::string name;       // type / class / attribute / design name
  std::string aux;        // secondary name (class, subclass, rel-type, state)
  std::string text;       // DDL source (kDdl only)
  Value value;            // kSetAttribute payload
  std::vector<uint64_t> ids;  // kAddVersion predecessors
  std::map<std::string, std::vector<uint64_t>> participants;
  bool detach = false;    // kDelete: DeletePolicy::kDetachInheritors

  // ---- Factories (one per operation; arguments mirror the API call) ----
  static Record Begin(uint64_t txn);
  static Record Commit(uint64_t txn);
  static Record Abort(uint64_t txn);
  static Record Ddl(uint64_t txn, std::string source);
  static Record CreateClass(uint64_t txn, std::string name, std::string type);
  static Record CreateObject(uint64_t txn, uint64_t created, std::string type,
                             std::string class_name);
  static Record CreateSubobject(uint64_t txn, uint64_t created,
                                uint64_t parent, std::string subclass);
  static Record CreateRelationship(
      uint64_t txn, uint64_t created, std::string rel_type,
      std::map<std::string, std::vector<uint64_t>> participants);
  static Record CreateSubrel(
      uint64_t txn, uint64_t created, uint64_t owner, std::string subrel,
      std::map<std::string, std::vector<uint64_t>> participants);
  static Record Bind(uint64_t txn, uint64_t created, uint64_t inheritor,
                     uint64_t transmitter, std::string rel_type);
  static Record Unbind(uint64_t txn, uint64_t inheritor);
  static Record SetAttribute(uint64_t txn, uint64_t object, std::string attr,
                             Value value);
  static Record Delete(uint64_t txn, uint64_t object, bool detach);
  static Record CreateDesign(uint64_t txn, std::string design,
                             std::string object_type);
  static Record AddVersion(uint64_t txn, std::string design, uint64_t object,
                           std::vector<uint64_t> predecessors);
  static Record SetVersionState(uint64_t txn, std::string design,
                                uint64_t object, std::string state);
  static Record SetDefaultVersion(uint64_t txn, std::string design,
                                  uint64_t object);
  static Record BindGeneric(uint64_t txn, uint64_t binding_id,
                            uint64_t inheritor, std::string design,
                            std::string rel_type);
  static Record MarkResolved(uint64_t txn, uint64_t binding_id,
                             uint64_t version);

  /// Single-line text payload (framed with length + CRC by log_io, so the
  /// encoding itself needs no terminator). Values use the persist codec;
  /// DDL text is quoted with the persist string escaping, so payloads never
  /// contain raw newlines.
  std::string Encode() const;

  /// Inverse of Encode; kParseError with a field-level message on any
  /// malformed payload.
  static Result<Record> Decode(const std::string& payload);

  bool operator==(const Record& other) const;
};

}  // namespace wal
}  // namespace caddb

#endif  // CADDB_WAL_RECORD_H_

#ifndef CADDB_WAL_LOG_IO_H_
#define CADDB_WAL_LOG_IO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace caddb {
namespace wal {

/// Byte-level frame format of a log segment, shared by writer and reader:
///
///   u32 LE  payload length
///   u32 LE  masked CRC32C over (lsn bytes || payload)
///   u64 LE  log sequence number
///   payload bytes (a Record::Encode() string)
///
/// A frame is valid only when it is complete *and* its CRC matches; the
/// reader stops at the first frame that is torn (short header/payload) or
/// corrupt (CRC mismatch) — everything before that prefix is trustworthy,
/// everything after it is noise from a crash.
constexpr size_t kFrameHeaderBytes = 16;
constexpr size_t kMaxFramePayload = 16u << 20;  // 16 MiB sanity bound

/// Append-only file handle. Append buffers in the OS (write(2)); Sync makes
/// everything appended so far durable (fsync(2)). Implementations must be
/// safe to destroy without Close (the destructor closes, without syncing —
/// exactly a crash).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const std::string& data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Opens `path` for appending, truncating any previous content (segments
/// are never reopened for writing; recovery always starts a fresh one).
Result<std::unique_ptr<WritableFile>> OpenWritableFile(
    const std::string& path);

/// Hook for tests and fault injection: how the Wal opens segment files.
using FileFactory =
    std::function<Result<std::unique_ptr<WritableFile>>(const std::string&)>;

/// Fault-injection wrapper simulating a crash at an arbitrary byte offset:
/// bytes up to `fail_after` reach the underlying file, everything beyond is
/// silently dropped — including partial suffixes of a single Append (a torn
/// write) and all later Syncs. The caller keeps getting OK, like a process
/// whose kernel acknowledged writes that never hit the platter; recovery
/// must cope with the resulting truncated, possibly mid-frame log.
class FailpointFile : public WritableFile {
 public:
  FailpointFile(std::unique_ptr<WritableFile> base, uint64_t fail_after)
      : base_(std::move(base)), budget_(fail_after) {}

  Status Append(const std::string& data) override;
  Status Sync() override;
  Status Close() override;

  /// True once at least one byte has been dropped.
  bool triggered() const { return triggered_; }

 private:
  std::unique_ptr<WritableFile> base_;
  uint64_t budget_;
  bool triggered_ = false;
};

/// Convenience factory: open a real file and cut it at `fail_after` bytes.
FileFactory FailpointFactory(uint64_t fail_after);

// ---- Frame encoding / decoding ----

/// Serializes one frame (header + payload) for `lsn`.
std::string EncodeFrame(uint64_t lsn, const std::string& payload);

struct Frame {
  uint64_t lsn = 0;
  std::string payload;
  /// Byte offset one past this frame within its segment — the "record
  /// boundary" the fault-injection matrix cuts at.
  uint64_t end_offset = 0;
};

struct SegmentContents {
  std::vector<Frame> frames;
  /// Empty when the segment ends exactly on a frame boundary; otherwise a
  /// human-readable description of the torn/corrupt tail (offset + cause).
  std::string tail_error;
  uint64_t bytes_scanned = 0;
};

/// Decodes every valid frame of `data` (one segment's bytes) in order,
/// stopping at the first torn or corrupt frame.
SegmentContents DecodeFrames(const std::string& data);

/// Scans every byte offset >= `offset` for a complete, CRC-valid frame.
/// Guard behind the disk verifier's torn-tail truncation repair: a tail is
/// provably crash debris only when nothing decodable survives past the
/// damage — a valid frame there means mid-file corruption stranded real
/// records, which truncation would destroy.
bool HasValidFrameAfter(const std::string& data, size_t offset);

/// Reads a whole file into memory. kNotFound only when it truly does not
/// exist (ENOENT); every other open failure — permissions, a directory in
/// the file's place, I/O errors — is kInternal, so callers (notably the
/// replication follower probing its primary) never mistake a broken file
/// for an absent one.
Result<std::string> ReadFileToString(const std::string& path);

/// Durably writes `data` to `path`: temp file in the same directory, write,
/// fsync, rename over `path`, fsync the directory. The atomic-publish
/// primitive behind checkpoints. On any failure the temp file is unlinked,
/// never leaked; `factory` overrides how the temp file is opened (fault
/// injection in tests).
Status AtomicWriteFile(const std::string& path, const std::string& data,
                       const FileFactory& factory = nullptr);

/// Removes stale "*.tmp" leftovers in `dir` — debris of AtomicWriteFile
/// calls cut down by a crash between create and rename. Run by Database
/// open recovery on the database directory; never touches non-tmp names.
/// Returns the number removed.
Result<size_t> RemoveStaleTempFiles(const std::string& dir);

/// fsync(2) on a directory so renames/creates within it are durable.
Status SyncDir(const std::string& dir);

}  // namespace wal
}  // namespace caddb

#endif  // CADDB_WAL_LOG_IO_H_

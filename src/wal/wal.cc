#include "wal/wal.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "fault/failpoint.h"
#include "wal/compaction.h"

namespace caddb {
namespace wal {

namespace fs = std::filesystem;

const char* SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kAlways:
      return "always";
    case SyncPolicy::kBatch:
      return "batch";
    case SyncPolicy::kNone:
      return "none";
  }
  return "?";
}

Result<SyncPolicy> SyncPolicyFromName(const std::string& name) {
  if (name == "always") return SyncPolicy::kAlways;
  if (name == "batch") return SyncPolicy::kBatch;
  if (name == "none") return SyncPolicy::kNone;
  return InvalidArgument("unknown sync policy '" + name +
                         "' (expected always, batch, or none)");
}

std::string WalStats::ToString() const {
  std::string out;
  out += "wal dir:       " + dir + "\n";
  out += "sync policy:   " + std::string(SyncPolicyName(policy)) + "\n";
  out += "last lsn:      " + std::to_string(last_lsn) + " (synced through " +
         std::to_string(synced_lsn) + ")\n";
  out += "live segment:  " + SegmentFileName(segment_start_lsn) + "\n";
  out += "records:       " + std::to_string(records_appended) + " appended, " +
         std::to_string(commits) + " commit points, " +
         std::to_string(bytes_appended) + " bytes\n";
  out += "fsyncs:        " + std::to_string(fsyncs) + " over " +
         std::to_string(segments_created) + " segment(s)\n";
  out += "rotation:      " + std::to_string(size_rotations) +
         " size rotation(s), " + std::to_string(compactions) +
         " compaction(s), " + std::to_string(compaction_bytes_reclaimed) +
         " bytes reclaimed\n";
  return out;
}

std::string SegmentFileName(uint64_t start_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(start_lsn));
  return buf;
}

std::vector<SegmentFileInfo> ListSegments(const std::string& dir) {
  std::vector<SegmentFileInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long start = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "wal-%16llx.log%n", &start, &consumed) ==
            1 &&
        static_cast<size_t>(consumed) == name.size()) {
      out.push_back({entry.path().string(), static_cast<uint64_t>(start)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentFileInfo& a, const SegmentFileInfo& b) {
              return a.start_lsn < b.start_lsn;
            });
  return out;
}

Wal::Wal(std::string dir, WalOptions options, uint64_t next_lsn)
    : dir_(std::move(dir)),
      options_(std::move(options)),
      obs_(options_.obs != nullptr ? options_.obs : obs::Default()),
      next_lsn_(next_lsn) {
  synced_lsn_ = next_lsn_ - 1;
  m_appends_ = obs_->metrics.GetCounter("caddb_wal_appends_total",
                                        "Records appended to the log");
  m_commits_ = obs_->metrics.GetCounter(
      "caddb_wal_commits_total",
      "Commit points (transaction commits + auto-committed operations)");
  m_fsyncs_ = obs_->metrics.GetCounter("caddb_wal_fsyncs_total",
                                       "fsync calls on the live segment");
  m_bytes_ = obs_->metrics.GetCounter("caddb_wal_bytes_appended_total",
                                      "Encoded frame bytes appended");
  m_fsync_us_ = obs_->metrics.GetHistogram(
      "caddb_wal_fsync_us", "fsync latency (in-line and syncer-thread)");
  m_commits_per_fsync_ = obs_->metrics.GetHistogram(
      "caddb_wal_commits_per_fsync",
      "Commit points made durable by one fsync (group-commit batching)",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  m_append_us_ = obs_->metrics.GetHistogram(
      "caddb_wal_append_us",
      "Append latency; recorded only while tracing is enabled");
}

Wal::~Wal() {
  // Destruction without Close is the crash path: drop the file unsynced.
  // The syncer thread still has to be joined (it may be mid-fsync; letting
  // that finish is harmless — a crash that syncs *more* than required).
  {
    std::lock_guard<std::mutex> lock(mu_);
    syncer_stop_ = true;
  }
  syncer_wake_cv_.notify_all();
  if (syncer_.joinable()) syncer_.join();
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       const WalOptions& options,
                                       uint64_t next_lsn) {
  if (next_lsn == 0) return InvalidArgument("lsn 0 is reserved (pre-log)");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create wal directory '" + dir +
                         "': " + ec.message());
  }
  std::unique_ptr<Wal> wal(new Wal(dir, options, next_lsn));
  {
    std::lock_guard<std::mutex> lock(wal->mu_);
    CADDB_RETURN_IF_ERROR(wal->OpenSegmentLocked(next_lsn));
  }
  if (options.batched_fsync) {
    wal->syncer_ = std::thread(&Wal::SyncerLoop, wal.get());
  }
  return wal;
}

Status Wal::OpenSegmentLocked(uint64_t start_lsn) {
  const std::string path =
      (fs::path(dir_) / SegmentFileName(start_lsn)).string();
  Result<std::unique_ptr<WritableFile>> file =
      options_.file_factory ? options_.file_factory(path)
                            : OpenWritableFile(path);
  if (!file.ok()) return file.status();
  // Registry-armed byte cut (`fault arm wal.file.cut cut=N`): the unified
  // form of the FailpointFactory crash matrix — the new segment silently
  // loses every byte past the budget and its fsyncs lie.
  fault::FiredAction cut;
  if (fault::Hit(fault::sites::kWalFileCut, &cut) &&
      cut.kind == fault::ActionKind::kCut) {
    file = Result<std::unique_ptr<WritableFile>>(
        std::unique_ptr<WritableFile>(
            new FailpointFile(std::move(*file), cut.arg)));
  }
  file_ = std::move(*file);
  segment_path_ = path;
  segment_start_lsn_ = start_lsn;
  segment_bytes_written_ = 0;
  ++stats_.segments_created;
  // Make the (empty) segment's directory entry durable so recovery sees a
  // clean new segment rather than nothing.
  return SyncDir(dir_);
}

Status Wal::AppendLocked(std::unique_lock<std::mutex>& lock,
                         const Record& record, uint64_t* lsn_out) {
  rotate_done_cv_.wait(lock, [&] { return !rotating_ || closed_; });
  if (closed_) return FailedPrecondition("wal is closed");
  if (!sync_error_.ok()) return sync_error_;
  uint64_t lsn = next_lsn_++;
  std::string frame = EncodeFrame(lsn, record.Encode());
  CADDB_RETURN_IF_ERROR(file_->Append(frame));
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size();
  m_appends_->Increment();
  m_bytes_->Increment(frame.size());
  segment_bytes_written_ += frame.size();
  stats_.last_lsn = lsn;
  if (lsn_out != nullptr) *lsn_out = lsn;
  return OkStatus();
}

void Wal::RequestSyncLocked(uint64_t target) {
  if (target > sync_requested_lsn_) sync_requested_lsn_ = target;
  syncer_wake_cv_.notify_one();
}

Status Wal::SyncFileLocked() {
  uint64_t target = next_lsn_ - 1;
  if (synced_lsn_ >= target) return OkStatus();
  // Timed directly (no Span): this runs under mu_, and span completion may
  // invoke observer callbacks that are allowed to call back into the Wal.
  const uint64_t fsync_start_us = obs::Tracer::NowUs();
  Status s = fault::Inject(fault::sites::kWalAppendPreFsync);
  if (s.ok()) s = file_->Sync();
  m_fsync_us_->Record(obs::Tracer::NowUs() - fsync_start_us);
  if (!s.ok()) {
    sync_error_ = s;
    // Wake batched committers waiting on sync_done_cv_: their predicate
    // checks sync_error_, and the syncer stands down during rotation, so
    // this in-line fsync may be the only wake-up they ever get.
    sync_done_cv_.notify_all();
    return s;
  }
  synced_lsn_ = target;
  stats_.synced_lsn = synced_lsn_;
  ++stats_.fsyncs;
  m_fsyncs_->Increment();
  if (commits_since_fsync_ > 0) {
    m_commits_per_fsync_->Record(commits_since_fsync_);
    commits_since_fsync_ = 0;
  }
  sync_done_cv_.notify_all();
  return OkStatus();
}

Status Wal::SyncLocked(std::unique_lock<std::mutex>& lock) {
  if (closed_) return FailedPrecondition("wal is closed");
  if (!sync_error_.ok()) return sync_error_;
  uint64_t target = next_lsn_ - 1;
  unsynced_commits_ = 0;
  if (synced_lsn_ >= target) return OkStatus();
  if (options_.batched_fsync && syncer_.joinable() && !rotating_) {
    RequestSyncLocked(target);
    sync_done_cv_.wait(lock, [&] {
      return synced_lsn_ >= target || !sync_error_.ok();
    });
    return sync_error_;
  }
  // In-line path (also taken during rotation, when the syncer stands down).
  sync_done_cv_.wait(lock, [&] { return !sync_in_flight_; });
  return SyncFileLocked();
}

Status Wal::CommitSyncLocked(std::unique_lock<std::mutex>& lock) {
  ++stats_.commits;
  m_commits_->Increment();
  ++commits_since_fsync_;
  return CommitPolicyLocked(lock);
}

Status Wal::CommitPolicyLocked(std::unique_lock<std::mutex>& lock) {
  switch (options_.sync) {
    case SyncPolicy::kAlways:
      return SyncLocked(lock);
    case SyncPolicy::kBatch: {
      if (unsynced_commits_ == 0) {
        oldest_unsynced_commit_ = std::chrono::steady_clock::now();
      }
      ++unsynced_commits_;
      bool full = unsynced_commits_ >= options_.batch_commits;
      bool overdue =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - oldest_unsynced_commit_)
              .count() >= static_cast<int64_t>(options_.batch_interval_us);
      if (full || overdue) {
        if (options_.batched_fsync && syncer_.joinable()) {
          // Fire-and-forget: kBatch never promised durability at ack time.
          unsynced_commits_ = 0;
          RequestSyncLocked(next_lsn_ - 1);
          return sync_error_;
        }
        return SyncLocked(lock);
      }
      return OkStatus();
    }
    case SyncPolicy::kNone:
      return OkStatus();
  }
  return OkStatus();
}

Result<uint64_t> Wal::Append(const Record& record) {
  obs::Span span(&obs_->trace, "wal.append", m_append_us_);
  std::vector<ClosedSegment> closed;
  uint64_t lsn = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    CADDB_RETURN_IF_ERROR(AppendLocked(lock, record, &lsn));
    CADDB_RETURN_IF_ERROR(MaybeRotateBySizeLocked(lock));
    closed.swap(pending_closed_);
  }
  FireCloseHook(std::move(closed));
  return lsn;
}

Status Wal::AppendCommit(const Record& record) {
  obs::Span span(&obs_->trace, "wal.commit", m_append_us_);
  std::vector<ClosedSegment> closed;
  Status result;
  {
    std::unique_lock<std::mutex> lock(mu_);
    CADDB_RETURN_IF_ERROR(AppendLocked(lock, record, nullptr));
    // The committing thread's open trace (the wal.commit span above, with
    // its net.request/client ancestry) — the shipper's manifest stamp.
    last_commit_ctx_ = obs_->trace.CurrentContext();
    result = CommitSyncLocked(lock);
    if (result.ok()) result = MaybeRotateBySizeLocked(lock);
    closed.swap(pending_closed_);
  }
  FireCloseHook(std::move(closed));
  return result;
}

Result<uint64_t> Wal::AppendCommitRecord(const Record& record) {
  obs::Span span(&obs_->trace, "wal.commit", m_append_us_);
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t lsn = 0;
  CADDB_RETURN_IF_ERROR(AppendLocked(lock, record, &lsn));
  last_commit_ctx_ = obs_->trace.CurrentContext();
  ++stats_.commits;
  m_commits_->Increment();
  ++commits_since_fsync_;
  return lsn;
}

obs::TraceContext Wal::last_commit_context() const {
  std::unique_lock<std::mutex> lock(mu_);
  return last_commit_ctx_;
}

Status Wal::FinishCommit() {
  std::vector<ClosedSegment> closed;
  Status result;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return FailedPrecondition("wal is closed");
    result = CommitPolicyLocked(lock);
    if (result.ok()) result = MaybeRotateBySizeLocked(lock);
    closed.swap(pending_closed_);
  }
  FireCloseHook(std::move(closed));
  return result;
}

Status Wal::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  return SyncLocked(lock);
}

Status Wal::MaybeRotateBySizeLocked(std::unique_lock<std::mutex>& lock) {
  if (options_.segment_bytes == 0 ||
      segment_bytes_written_ < options_.segment_bytes || rotating_) {
    return OkStatus();
  }
  ++stats_.size_rotations;
  CADDB_LOG(&obs_->log, obs::LogLevel::kInfo, "wal",
            "size rotation at lsn " + std::to_string(next_lsn_ - 1) + " (" +
                std::to_string(segment_bytes_written_) + " bytes)");
  return RotateLocked(lock, /*truncate=*/false);
}

Status Wal::RotateLocked(std::unique_lock<std::mutex>& lock, bool truncate,
                         uint64_t retain_from) {
  // Stand the syncer down and block new appends, then drain any in-flight
  // fsync: after this, the segment's bytes are stable and nobody touches
  // the file descriptor we are about to close.
  rotating_ = true;
  struct RotationGuard {
    Wal* wal;
    ~RotationGuard() {
      wal->rotating_ = false;
      wal->rotate_done_cv_.notify_all();
    }
  } guard{this};
  sync_done_cv_.wait(lock, [&] { return !sync_in_flight_; });
  CADDB_RETURN_IF_ERROR(SyncFileLocked());
  unsynced_commits_ = 0;
  CADDB_RETURN_IF_ERROR(file_->Close());
  const std::string old_path = segment_path_;
  const uint64_t old_start = segment_start_lsn_;
  const uint64_t old_last = next_lsn_ - 1;
  const bool old_nonempty = old_last >= old_start;

  if (!truncate && old_nonempty) {
    ClosedSegment info{old_path, old_start, old_last};
    if (options_.compact_on_rotate) {
      Result<CompactionResult> compacted = CompactClosedSegment(old_path);
      // Compaction is an optimization; a failure to rewrite must not take
      // down the log. The uncompacted segment replays identically.
      if (compacted.ok() && compacted->rewritten) {
        ++stats_.compactions;
        stats_.compaction_bytes_reclaimed += compacted->bytes_reclaimed();
      }
    }
    pending_closed_.push_back(std::move(info));
  }

  CADDB_RETURN_IF_ERROR(OpenSegmentLocked(next_lsn_));
  if (truncate) {
    // Rotation-with-truncation happens only at checkpoints. A segment may
    // be deleted once every record in it is covered by the published
    // checkpoint AND precedes retain_from (the oldest lsn a transaction
    // spanning the checkpoint may still need replayed); a segment's
    // records end where the next segment begins.
    std::vector<SegmentFileInfo> segments = ListSegments(dir_);
    for (size_t i = 0; i < segments.size(); ++i) {
      const SegmentFileInfo& segment = segments[i];
      if (segment.start_lsn > old_start ||
          segment.start_lsn == segment_start_lsn_) {
        continue;
      }
      const uint64_t next_start = i + 1 < segments.size()
                                      ? segments[i + 1].start_lsn
                                      : next_lsn_;
      if (retain_from != 0 && next_start > retain_from) continue;
      std::error_code ec;
      fs::remove(segment.path, ec);
      if (ec) {
        return InternalError("cannot remove old segment '" + segment.path +
                             "': " + ec.message());
      }
    }
  }
  return SyncDir(dir_);
}

Status Wal::RotateAndTruncate() { return RotateAndTruncate(0); }

Status Wal::RotateAndTruncate(uint64_t retain_from_lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return FailedPrecondition("wal is closed");
  return RotateLocked(lock, /*truncate=*/true, retain_from_lsn);
}

void Wal::FireCloseHook(std::vector<ClosedSegment> closed) {
  if (!options_.segment_close_hook) return;
  for (const ClosedSegment& segment : closed) {
    options_.segment_close_hook(segment);
  }
}

void Wal::SyncerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    syncer_wake_cv_.wait(lock, [&] {
      return syncer_stop_ ||
             (!rotating_ && sync_error_.ok() &&
              sync_requested_lsn_ > synced_lsn_);
    });
    if (syncer_stop_) return;
    WritableFile* file = file_.get();
    uint64_t target = next_lsn_ - 1;
    sync_in_flight_ = true;
    lock.unlock();
    // The fsync runs without the mutex: committers keep appending to the
    // same fd meanwhile (concurrent write+fsync on one descriptor is
    // safe; the fsync simply covers whatever had been written when the
    // kernel processed it — we only *claim* `target`).
    Status s;
    {
      obs::Span span(&obs_->trace, "wal.fsync", m_fsync_us_,
                     /*always_time=*/true);
      span.AddAttribute("target_lsn", target);
      s = file->Sync();
    }
    lock.lock();
    sync_in_flight_ = false;
    if (!s.ok()) {
      sync_error_ = s;
      CADDB_LOG(&obs_->log, obs::LogLevel::kError, "wal",
                "fsync failed (log poisoned): " + s.ToString());
    } else {
      // Rotation waits for !sync_in_flight_ before swapping file_, so the
      // descriptor we synced is still the live segment.
      if (target > synced_lsn_) {
        synced_lsn_ = target;
        stats_.synced_lsn = synced_lsn_;
      }
      ++stats_.fsyncs;
      m_fsyncs_->Increment();
      if (commits_since_fsync_ > 0) {
        m_commits_per_fsync_->Record(commits_since_fsync_);
        commits_since_fsync_ = 0;
      }
    }
    sync_done_cv_.notify_all();
  }
}

Status Wal::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return OkStatus();
  Status synced = SyncLocked(lock);
  sync_done_cv_.wait(lock, [&] { return !sync_in_flight_; });
  closed_ = true;
  syncer_stop_ = true;
  syncer_wake_cv_.notify_all();
  rotate_done_cv_.notify_all();
  if (syncer_.joinable()) {
    lock.unlock();
    syncer_.join();
    lock.lock();
  }
  CADDB_RETURN_IF_ERROR(synced);
  return file_->Close();
}

uint64_t Wal::AllocateGroupTxn() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_group_txn_++;
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats out = stats_;
  out.dir = dir_;
  out.policy = options_.sync;
  out.segment_start_lsn = segment_start_lsn_;
  out.synced_lsn = synced_lsn_;
  out.last_lsn = next_lsn_ - 1;
  return out;
}

}  // namespace wal
}  // namespace caddb

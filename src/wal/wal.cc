#include "wal/wal.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace caddb {
namespace wal {

namespace fs = std::filesystem;

const char* SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kAlways:
      return "always";
    case SyncPolicy::kBatch:
      return "batch";
    case SyncPolicy::kNone:
      return "none";
  }
  return "?";
}

Result<SyncPolicy> SyncPolicyFromName(const std::string& name) {
  if (name == "always") return SyncPolicy::kAlways;
  if (name == "batch") return SyncPolicy::kBatch;
  if (name == "none") return SyncPolicy::kNone;
  return InvalidArgument("unknown sync policy '" + name +
                         "' (expected always, batch, or none)");
}

std::string WalStats::ToString() const {
  std::string out;
  out += "wal dir:       " + dir + "\n";
  out += "sync policy:   " + std::string(SyncPolicyName(policy)) + "\n";
  out += "last lsn:      " + std::to_string(last_lsn) + " (synced through " +
         std::to_string(synced_lsn) + ")\n";
  out += "live segment:  " + SegmentFileName(segment_start_lsn) + "\n";
  out += "records:       " + std::to_string(records_appended) + " appended, " +
         std::to_string(commits) + " commit points, " +
         std::to_string(bytes_appended) + " bytes\n";
  out += "fsyncs:        " + std::to_string(fsyncs) + " over " +
         std::to_string(segments_created) + " segment(s)\n";
  return out;
}

std::string SegmentFileName(uint64_t start_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(start_lsn));
  return buf;
}

std::vector<SegmentFileInfo> ListSegments(const std::string& dir) {
  std::vector<SegmentFileInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long start = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "wal-%16llx.log%n", &start, &consumed) ==
            1 &&
        static_cast<size_t>(consumed) == name.size()) {
      out.push_back({entry.path().string(), static_cast<uint64_t>(start)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentFileInfo& a, const SegmentFileInfo& b) {
              return a.start_lsn < b.start_lsn;
            });
  return out;
}

Wal::Wal(std::string dir, WalOptions options, uint64_t next_lsn)
    : dir_(std::move(dir)), options_(std::move(options)), next_lsn_(next_lsn) {
  synced_lsn_ = next_lsn_ - 1;
}

Wal::~Wal() {
  // Destruction without Close is the crash path: drop the file unsynced.
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       const WalOptions& options,
                                       uint64_t next_lsn) {
  if (next_lsn == 0) return InvalidArgument("lsn 0 is reserved (pre-log)");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create wal directory '" + dir +
                         "': " + ec.message());
  }
  std::unique_ptr<Wal> wal(new Wal(dir, options, next_lsn));
  std::lock_guard<std::mutex> lock(wal->mu_);
  CADDB_RETURN_IF_ERROR(wal->OpenSegmentLocked(next_lsn));
  return wal;
}

Status Wal::OpenSegmentLocked(uint64_t start_lsn) {
  const std::string path =
      (fs::path(dir_) / SegmentFileName(start_lsn)).string();
  Result<std::unique_ptr<WritableFile>> file =
      options_.file_factory ? options_.file_factory(path)
                            : OpenWritableFile(path);
  if (!file.ok()) return file.status();
  file_ = std::move(*file);
  segment_start_lsn_ = start_lsn;
  ++stats_.segments_created;
  // Make the (empty) segment's directory entry durable so recovery sees a
  // clean new segment rather than nothing.
  return SyncDir(dir_);
}

Status Wal::AppendLocked(const Record& record, uint64_t* lsn_out) {
  if (closed_) return FailedPrecondition("wal is closed");
  uint64_t lsn = next_lsn_++;
  std::string frame = EncodeFrame(lsn, record.Encode());
  CADDB_RETURN_IF_ERROR(file_->Append(frame));
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size();
  stats_.last_lsn = lsn;
  if (lsn_out != nullptr) *lsn_out = lsn;
  return OkStatus();
}

Status Wal::SyncLocked() {
  if (closed_) return FailedPrecondition("wal is closed");
  if (synced_lsn_ == next_lsn_ - 1) {
    unsynced_commits_ = 0;
    return OkStatus();  // nothing new since the last fsync
  }
  CADDB_RETURN_IF_ERROR(file_->Sync());
  synced_lsn_ = next_lsn_ - 1;
  stats_.synced_lsn = synced_lsn_;
  unsynced_commits_ = 0;
  ++stats_.fsyncs;
  return OkStatus();
}

Result<uint64_t> Wal::Append(const Record& record) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t lsn = 0;
  CADDB_RETURN_IF_ERROR(AppendLocked(record, &lsn));
  return lsn;
}

Status Wal::AppendCommit(const Record& record) {
  std::lock_guard<std::mutex> lock(mu_);
  CADDB_RETURN_IF_ERROR(AppendLocked(record, nullptr));
  ++stats_.commits;
  switch (options_.sync) {
    case SyncPolicy::kAlways:
      return SyncLocked();
    case SyncPolicy::kBatch: {
      if (unsynced_commits_ == 0) {
        oldest_unsynced_commit_ = std::chrono::steady_clock::now();
      }
      ++unsynced_commits_;
      bool full = unsynced_commits_ >= options_.batch_commits;
      bool overdue =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - oldest_unsynced_commit_)
              .count() >= static_cast<int64_t>(options_.batch_interval_us);
      if (full || overdue) return SyncLocked();
      return OkStatus();
    }
    case SyncPolicy::kNone:
      return OkStatus();
  }
  return OkStatus();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status Wal::RotateAndTruncate() {
  std::lock_guard<std::mutex> lock(mu_);
  CADDB_RETURN_IF_ERROR(SyncLocked());
  CADDB_RETURN_IF_ERROR(file_->Close());
  uint64_t old_start = segment_start_lsn_;
  CADDB_RETURN_IF_ERROR(OpenSegmentLocked(next_lsn_));
  // Rotation happens only here, so every older segment is entirely covered
  // by the checkpoint the caller just published — safe to delete.
  for (const SegmentFileInfo& segment : ListSegments(dir_)) {
    if (segment.start_lsn > old_start ||
        segment.start_lsn == segment_start_lsn_) {
      continue;
    }
    std::error_code ec;
    fs::remove(segment.path, ec);
    if (ec) {
      return InternalError("cannot remove old segment '" + segment.path +
                           "': " + ec.message());
    }
  }
  return SyncDir(dir_);
}

Status Wal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return OkStatus();
  CADDB_RETURN_IF_ERROR(SyncLocked());
  closed_ = true;
  return file_->Close();
}

uint64_t Wal::AllocateGroupTxn() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_group_txn_++;
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats out = stats_;
  out.dir = dir_;
  out.policy = options_.sync;
  out.segment_start_lsn = segment_start_lsn_;
  out.synced_lsn = synced_lsn_;
  out.last_lsn = next_lsn_ - 1;
  return out;
}

}  // namespace wal
}  // namespace caddb

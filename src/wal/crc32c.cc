#include "wal/crc32c.h"

#include <array>

namespace caddb {
namespace wal {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

constexpr uint32_t kMaskDelta = 0xA282EAD8u;

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t Crc32cUnmask(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace wal
}  // namespace caddb

#include "wal/record.h"

#include <sstream>

#include "persist/value_codec.h"

namespace caddb {
namespace wal {

namespace {

/// Payload tags. Part of the on-disk contract (like the dump format):
/// append new tags, never reuse or renumber.
constexpr const char* kTagOf[] = {
    "begin",  "commit",   "abort",   "ddl",      "class",
    "create", "sub",      "rel",     "subrel",   "bind",
    "unbind", "set",      "delete",  "design",   "version",
    "vstate", "vdefault", "vgeneric", "vresolved",
};

std::string Ref(uint64_t id) { return "@" + std::to_string(id); }

Result<uint64_t> ParseRef(const std::string& token) {
  if (token.size() < 2 || token[0] != '@') {
    return ParseError("expected @<surrogate>, got '" + token + "'");
  }
  try {
    return static_cast<uint64_t>(std::stoull(token.substr(1)));
  } catch (...) {
    return ParseError("bad surrogate '" + token + "'");
  }
}

Result<uint64_t> ReadRef(std::istringstream& in, const char* what) {
  std::string token;
  if (!(in >> token)) {
    return ParseError(std::string("record is missing the ") + what +
                      " surrogate");
  }
  return ParseRef(token);
}

Result<std::string> ReadName(std::istringstream& in, const char* what) {
  std::string token;
  if (!(in >> token)) {
    return ParseError(std::string("record is missing the ") + what);
  }
  return token;
}

/// `role <name> @1 @2 ; role ...` — the dump format's participant notation.
void EncodeParticipants(
    const std::map<std::string, std::vector<uint64_t>>& participants,
    std::string* out) {
  for (const auto& [role, members] : participants) {
    *out += " role " + role;
    for (uint64_t m : members) *out += " " + Ref(m);
    *out += " ;";
  }
}

Result<std::map<std::string, std::vector<uint64_t>>> DecodeParticipants(
    std::istringstream& in) {
  std::map<std::string, std::vector<uint64_t>> participants;
  std::string token;
  while (in >> token) {
    if (token != "role") {
      return ParseError("bad participant token '" + token +
                        "' (expected 'role')");
    }
    CADDB_ASSIGN_OR_RETURN(std::string role, ReadName(in, "role name"));
    std::vector<uint64_t>& members = participants[role];
    while (in >> token && token != ";") {
      CADDB_ASSIGN_OR_RETURN(uint64_t m, ParseRef(token));
      members.push_back(m);
    }
  }
  return participants;
}

}  // namespace

const char* RecordTypeName(RecordType type) {
  return kTagOf[static_cast<int>(type)];
}

Record Record::Begin(uint64_t txn) {
  Record r;
  r.type = RecordType::kBegin;
  r.txn = txn;
  return r;
}

Record Record::Commit(uint64_t txn) {
  Record r;
  r.type = RecordType::kCommit;
  r.txn = txn;
  return r;
}

Record Record::Abort(uint64_t txn) {
  Record r;
  r.type = RecordType::kAbort;
  r.txn = txn;
  return r;
}

Record Record::Ddl(uint64_t txn, std::string source) {
  Record r;
  r.type = RecordType::kDdl;
  r.txn = txn;
  r.text = std::move(source);
  return r;
}

Record Record::CreateClass(uint64_t txn, std::string name, std::string type) {
  Record r;
  r.type = RecordType::kCreateClass;
  r.txn = txn;
  r.name = std::move(name);
  r.aux = std::move(type);
  return r;
}

Record Record::CreateObject(uint64_t txn, uint64_t created, std::string type,
                            std::string class_name) {
  Record r;
  r.type = RecordType::kCreateObject;
  r.txn = txn;
  r.result = created;
  r.name = std::move(type);
  r.aux = std::move(class_name);
  return r;
}

Record Record::CreateSubobject(uint64_t txn, uint64_t created,
                               uint64_t parent, std::string subclass) {
  Record r;
  r.type = RecordType::kCreateSubobject;
  r.txn = txn;
  r.result = created;
  r.a = parent;
  r.name = std::move(subclass);
  return r;
}

Record Record::CreateRelationship(
    uint64_t txn, uint64_t created, std::string rel_type,
    std::map<std::string, std::vector<uint64_t>> participants) {
  Record r;
  r.type = RecordType::kCreateRelationship;
  r.txn = txn;
  r.result = created;
  r.name = std::move(rel_type);
  r.participants = std::move(participants);
  return r;
}

Record Record::CreateSubrel(
    uint64_t txn, uint64_t created, uint64_t owner, std::string subrel,
    std::map<std::string, std::vector<uint64_t>> participants) {
  Record r;
  r.type = RecordType::kCreateSubrel;
  r.txn = txn;
  r.result = created;
  r.a = owner;
  r.name = std::move(subrel);
  r.participants = std::move(participants);
  return r;
}

Record Record::Bind(uint64_t txn, uint64_t created, uint64_t inheritor,
                    uint64_t transmitter, std::string rel_type) {
  Record r;
  r.type = RecordType::kBind;
  r.txn = txn;
  r.result = created;
  r.a = inheritor;
  r.b = transmitter;
  r.name = std::move(rel_type);
  return r;
}

Record Record::Unbind(uint64_t txn, uint64_t inheritor) {
  Record r;
  r.type = RecordType::kUnbind;
  r.txn = txn;
  r.a = inheritor;
  return r;
}

Record Record::SetAttribute(uint64_t txn, uint64_t object, std::string attr,
                            Value value) {
  Record r;
  r.type = RecordType::kSetAttribute;
  r.txn = txn;
  r.a = object;
  r.name = std::move(attr);
  r.value = std::move(value);
  return r;
}

Record Record::Delete(uint64_t txn, uint64_t object, bool detach) {
  Record r;
  r.type = RecordType::kDelete;
  r.txn = txn;
  r.a = object;
  r.detach = detach;
  return r;
}

Record Record::CreateDesign(uint64_t txn, std::string design,
                            std::string object_type) {
  Record r;
  r.type = RecordType::kCreateDesign;
  r.txn = txn;
  r.name = std::move(design);
  r.aux = std::move(object_type);
  return r;
}

Record Record::AddVersion(uint64_t txn, std::string design, uint64_t object,
                          std::vector<uint64_t> predecessors) {
  Record r;
  r.type = RecordType::kAddVersion;
  r.txn = txn;
  r.name = std::move(design);
  r.a = object;
  r.ids = std::move(predecessors);
  return r;
}

Record Record::SetVersionState(uint64_t txn, std::string design,
                               uint64_t object, std::string state) {
  Record r;
  r.type = RecordType::kSetVersionState;
  r.txn = txn;
  r.name = std::move(design);
  r.a = object;
  r.aux = std::move(state);
  return r;
}

Record Record::SetDefaultVersion(uint64_t txn, std::string design,
                                 uint64_t object) {
  Record r;
  r.type = RecordType::kSetDefaultVersion;
  r.txn = txn;
  r.name = std::move(design);
  r.a = object;
  return r;
}

Record Record::BindGeneric(uint64_t txn, uint64_t binding_id,
                           uint64_t inheritor, std::string design,
                           std::string rel_type) {
  Record r;
  r.type = RecordType::kBindGeneric;
  r.txn = txn;
  r.result = binding_id;
  r.a = inheritor;
  r.name = std::move(design);
  r.aux = std::move(rel_type);
  return r;
}

Record Record::MarkResolved(uint64_t txn, uint64_t binding_id,
                            uint64_t version) {
  Record r;
  r.type = RecordType::kMarkResolved;
  r.txn = txn;
  r.result = binding_id;
  r.a = version;
  return r;
}

std::string Record::Encode() const {
  std::string out = std::string(RecordTypeName(type)) + " " +
                    std::to_string(txn);
  switch (type) {
    case RecordType::kBegin:
    case RecordType::kCommit:
    case RecordType::kAbort:
      break;
    case RecordType::kDdl:
      out += " \"" + persist::EscapeString(text) + "\"";
      break;
    case RecordType::kCreateClass:
    case RecordType::kCreateDesign:
      out += " " + name + " " + aux;
      break;
    case RecordType::kCreateObject:
      out += " " + Ref(result) + " " + name;
      if (!aux.empty()) out += " C " + aux;
      break;
    case RecordType::kCreateSubobject:
      out += " " + Ref(result) + " " + Ref(a) + " " + name;
      break;
    case RecordType::kCreateRelationship:
      out += " " + Ref(result) + " " + name;
      EncodeParticipants(participants, &out);
      break;
    case RecordType::kCreateSubrel:
      out += " " + Ref(result) + " " + Ref(a) + " " + name;
      EncodeParticipants(participants, &out);
      break;
    case RecordType::kBind:
      out += " " + Ref(result) + " " + Ref(a) + " " + Ref(b) + " " + name;
      break;
    case RecordType::kUnbind:
      out += " " + Ref(a);
      break;
    case RecordType::kSetAttribute:
      // The encoded value is the last field: it may contain spaces inside
      // quoted strings, so decoding reads to end of payload.
      out += " " + Ref(a) + " " + name + " " + persist::EncodeValue(value);
      break;
    case RecordType::kDelete:
      out += " " + Ref(a) + (detach ? " detach" : " restrict");
      break;
    case RecordType::kAddVersion:
      out += " " + name + " " + Ref(a);
      for (uint64_t p : ids) out += " " + Ref(p);
      break;
    case RecordType::kSetVersionState:
      out += " " + name + " " + Ref(a) + " " + aux;
      break;
    case RecordType::kSetDefaultVersion:
      out += " " + name + " " + Ref(a);
      break;
    case RecordType::kBindGeneric:
      out += " " + std::to_string(result) + " " + Ref(a) + " " + name + " " +
             aux;
      break;
    case RecordType::kMarkResolved:
      out += " " + std::to_string(result) + " " + Ref(a);
      break;
  }
  return out;
}

Result<Record> Record::Decode(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag)) return ParseError("empty log record payload");

  Record r;
  bool known = false;
  for (int i = 0; i <= static_cast<int>(RecordType::kMarkResolved); ++i) {
    if (tag == kTagOf[i]) {
      r.type = static_cast<RecordType>(i);
      known = true;
      break;
    }
  }
  if (!known) return ParseError("unknown log record tag '" + tag + "'");
  if (!(in >> r.txn)) {
    return ParseError("log record '" + tag + "' is missing the txn id");
  }

  switch (r.type) {
    case RecordType::kBegin:
    case RecordType::kCommit:
    case RecordType::kAbort:
      break;
    case RecordType::kDdl: {
      std::string rest;
      std::getline(in, rest);
      size_t open = rest.find('"');
      size_t close = rest.rfind('"');
      if (open == std::string::npos || close <= open) {
        return ParseError("ddl record has no quoted source text");
      }
      CADDB_ASSIGN_OR_RETURN(
          r.text,
          persist::UnescapeString(rest.substr(open + 1, close - open - 1)));
      break;
    }
    case RecordType::kCreateClass:
    case RecordType::kCreateDesign: {
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "name"));
      CADDB_ASSIGN_OR_RETURN(r.aux, ReadName(in, "object type"));
      break;
    }
    case RecordType::kCreateObject: {
      CADDB_ASSIGN_OR_RETURN(r.result, ReadRef(in, "created"));
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "object type"));
      std::string marker;
      if (in >> marker) {
        if (marker != "C") {
          return ParseError("bad create marker '" + marker + "'");
        }
        CADDB_ASSIGN_OR_RETURN(r.aux, ReadName(in, "class name"));
      }
      break;
    }
    case RecordType::kCreateSubobject: {
      CADDB_ASSIGN_OR_RETURN(r.result, ReadRef(in, "created"));
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "parent"));
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "subclass"));
      break;
    }
    case RecordType::kCreateRelationship: {
      CADDB_ASSIGN_OR_RETURN(r.result, ReadRef(in, "created"));
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "rel type"));
      CADDB_ASSIGN_OR_RETURN(r.participants, DecodeParticipants(in));
      break;
    }
    case RecordType::kCreateSubrel: {
      CADDB_ASSIGN_OR_RETURN(r.result, ReadRef(in, "created"));
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "owner"));
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "subrel"));
      CADDB_ASSIGN_OR_RETURN(r.participants, DecodeParticipants(in));
      break;
    }
    case RecordType::kBind: {
      CADDB_ASSIGN_OR_RETURN(r.result, ReadRef(in, "created"));
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "inheritor"));
      CADDB_ASSIGN_OR_RETURN(r.b, ReadRef(in, "transmitter"));
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "inher-rel type"));
      break;
    }
    case RecordType::kUnbind: {
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "inheritor"));
      break;
    }
    case RecordType::kSetAttribute: {
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "object"));
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "attribute"));
      std::string rest;
      std::getline(in, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      CADDB_ASSIGN_OR_RETURN(r.value, persist::DecodeValue(rest));
      break;
    }
    case RecordType::kDelete: {
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "object"));
      CADDB_ASSIGN_OR_RETURN(std::string policy, ReadName(in, "policy"));
      if (policy == "detach") {
        r.detach = true;
      } else if (policy == "restrict") {
        r.detach = false;
      } else {
        return ParseError("bad delete policy '" + policy + "'");
      }
      break;
    }
    case RecordType::kAddVersion: {
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "design"));
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "version object"));
      std::string token;
      while (in >> token) {
        CADDB_ASSIGN_OR_RETURN(uint64_t p, ParseRef(token));
        r.ids.push_back(p);
      }
      break;
    }
    case RecordType::kSetVersionState: {
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "design"));
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "version object"));
      CADDB_ASSIGN_OR_RETURN(r.aux, ReadName(in, "state"));
      break;
    }
    case RecordType::kSetDefaultVersion: {
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "design"));
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "version object"));
      break;
    }
    case RecordType::kBindGeneric: {
      if (!(in >> r.result)) {
        return ParseError("vgeneric record is missing the binding id");
      }
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "inheritor"));
      CADDB_ASSIGN_OR_RETURN(r.name, ReadName(in, "design"));
      CADDB_ASSIGN_OR_RETURN(r.aux, ReadName(in, "inher-rel type"));
      break;
    }
    case RecordType::kMarkResolved: {
      if (!(in >> r.result)) {
        return ParseError("vresolved record is missing the binding id");
      }
      CADDB_ASSIGN_OR_RETURN(r.a, ReadRef(in, "version"));
      break;
    }
  }
  return r;
}

bool Record::operator==(const Record& other) const {
  return type == other.type && txn == other.txn && result == other.result &&
         a == other.a && b == other.b && name == other.name &&
         aux == other.aux && text == other.text && value == other.value &&
         ids == other.ids && participants == other.participants &&
         detach == other.detach;
}

}  // namespace wal
}  // namespace caddb

#include "wal/log_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "wal/crc32c.h"

namespace caddb {
namespace wal {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status Errno(const std::string& what, const std::string& path) {
  return InternalError(what + " '" + path + "': " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    // Destruction without Close is the crash path: no sync, just release
    // the descriptor.
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const std::string& data) override {
    if (fd_ < 0) return InternalError("append to closed file '" + path_ + "'");
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write to", path_);
      }
      done += static_cast<size_t>(n);
    }
    return OkStatus();
  }

  Status Sync() override {
    if (fd_ < 0) return InternalError("sync of closed file '" + path_ + "'");
    if (::fsync(fd_) != 0) return Errno("fsync of", path_);
    return OkStatus();
  }

  Status Close() override {
    if (fd_ < 0) return OkStatus();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close of", path_);
    return OkStatus();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

Result<std::unique_ptr<WritableFile>> OpenWritableFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot open", path);
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
}

Status FailpointFile::Append(const std::string& data) {
  if (triggered_ || budget_ == 0) {
    triggered_ = true;
    return OkStatus();  // the write is acknowledged but lost
  }
  if (data.size() <= budget_) {
    budget_ -= data.size();
    return base_->Append(data);
  }
  // Torn write: only the prefix that fits the budget survives.
  std::string prefix = data.substr(0, budget_);
  budget_ = 0;
  triggered_ = true;
  return base_->Append(prefix);
}

Status FailpointFile::Sync() {
  if (triggered_) return OkStatus();  // ack without durability — the lie
  return base_->Sync();
}

Status FailpointFile::Close() { return base_->Close(); }

FileFactory FailpointFactory(uint64_t fail_after) {
  return [fail_after](const std::string& path)
             -> Result<std::unique_ptr<WritableFile>> {
    CADDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                           OpenWritableFile(path));
    return std::unique_ptr<WritableFile>(
        new FailpointFile(std::move(base), fail_after));
  };
}

std::string EncodeFrame(uint64_t lsn, const std::string& payload) {
  std::string lsn_bytes;
  PutU64(&lsn_bytes, lsn);
  uint32_t crc = Crc32c(lsn_bytes.data(), lsn_bytes.size());
  crc = Crc32cExtend(crc, payload.data(), payload.size());

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32cMask(crc));
  frame += lsn_bytes;
  frame += payload;
  return frame;
}

SegmentContents DecodeFrames(const std::string& data) {
  SegmentContents out;
  size_t pos = 0;
  auto torn = [&](const std::string& why) {
    std::ostringstream msg;
    msg << why << " at offset " << pos;
    out.tail_error = msg.str();
  };
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeaderBytes) {
      torn("torn frame header");
      break;
    }
    uint32_t len = GetU32(data.data() + pos);
    uint32_t stored_crc = Crc32cUnmask(GetU32(data.data() + pos + 4));
    uint64_t lsn = GetU64(data.data() + pos + 8);
    if (len > kMaxFramePayload) {
      torn("implausible frame length (corrupt header)");
      break;
    }
    if (data.size() - pos - kFrameHeaderBytes < len) {
      torn("torn frame payload");
      break;
    }
    uint32_t crc = Crc32c(data.data() + pos + 8, 8);
    crc = Crc32cExtend(crc, data.data() + pos + kFrameHeaderBytes, len);
    if (crc != stored_crc) {
      torn("frame checksum mismatch");
      break;
    }
    Frame frame;
    frame.lsn = lsn;
    frame.payload = data.substr(pos + kFrameHeaderBytes, len);
    pos += kFrameHeaderBytes + len;
    frame.end_offset = pos;
    out.frames.push_back(std::move(frame));
  }
  out.bytes_scanned = pos;
  return out;
}

bool HasValidFrameAfter(const std::string& data, size_t offset) {
  for (size_t pos = offset; pos + kFrameHeaderBytes <= data.size(); ++pos) {
    uint32_t len = GetU32(data.data() + pos);
    if (len > kMaxFramePayload) continue;
    if (data.size() - pos - kFrameHeaderBytes < len) continue;
    uint32_t stored_crc = Crc32cUnmask(GetU32(data.data() + pos + 4));
    uint32_t crc = Crc32c(data.data() + pos + 8, 8);
    crc = Crc32cExtend(crc, data.data() + pos + kFrameHeaderBytes, len);
    if (crc == stored_crc) return true;
  }
  return false;
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    // Only a genuinely missing file is NotFound; EACCES, EISDIR, EIO and
    // friends are real failures a caller must not paper over as "empty".
    if (errno == ENOENT) return NotFound("cannot open '" + path + "'");
    return Errno("cannot open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("read of", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& path, const std::string& data,
                       const FileFactory& factory) {
  const std::string tmp = path + ".tmp";
  Status written = [&]() -> Status {
    CADDB_ASSIGN_OR_RETURN(
        std::unique_ptr<WritableFile> file,
        factory ? factory(tmp) : OpenWritableFile(tmp));
    CADDB_RETURN_IF_ERROR(file->Append(data));
    CADDB_RETURN_IF_ERROR(file->Sync());
    CADDB_RETURN_IF_ERROR(file->Close());
    return OkStatus();
  }();
  std::error_code ec;
  if (!written.ok()) {
    // Never leak the temp file: a half-written "<path>.tmp" left behind
    // would survive forever (nothing else ever cleans it up).
    std::filesystem::remove(tmp, ec);
    return written;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    Status failed = InternalError("rename '" + tmp + "' -> '" + path +
                                  "': " + ec.message());
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return failed;
  }
  return SyncDir(std::filesystem::path(path).parent_path().string());
}

Result<size_t> RemoveStaleTempFiles(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= 4 || name.substr(name.size() - 4) != ".tmp") continue;
    std::error_code rm;
    if (fs::remove(entry.path(), rm) && !rm) ++removed;
  }
  if (ec) {
    // A directory that does not exist yet holds no debris; Open creates
    // it right after this sweep.
    if (ec == std::errc::no_such_file_or_directory) return size_t{0};
    return InternalError("cannot scan '" + dir + "' for stale temp files: " +
                         ec.message());
  }
  if (removed > 0) CADDB_RETURN_IF_ERROR(SyncDir(dir));
  return removed;
}

Status SyncDir(const std::string& dir) {
  std::string target = dir.empty() ? "." : dir;
  int fd = ::open(target.c_str(), O_RDONLY);
  if (fd < 0) return Errno("cannot open directory", target);
  Status s = OkStatus();
  if (::fsync(fd) != 0) {
    // Some filesystems refuse fsync on directories; that only weakens
    // rename durability, never correctness of what is read back.
    if (errno != EINVAL && errno != EROFS) s = Errno("fsync of", target);
  }
  ::close(fd);
  return s;
}

}  // namespace wal
}  // namespace caddb

#include "inherit/notification.h"

namespace caddb {

void NotificationCenter::Record(Surrogate inher_rel, Surrogate transmitter,
                                const std::string& item) {
  pending_[inher_rel.id].push_back(
      ChangeRecord{next_seq_++, transmitter, item});
  if (!observers_.empty()) {
    const ChangeRecord& record = pending_[inher_rel.id].back();
    for (const auto& [token, observer] : observers_) {
      observer(inher_rel, record);
    }
  }
}

uint64_t NotificationCenter::AddObserver(Observer observer) {
  uint64_t token = next_observer_++;
  observers_[token] = std::move(observer);
  return token;
}

void NotificationCenter::RemoveObserver(uint64_t token) {
  observers_.erase(token);
}

const std::vector<ChangeRecord>& NotificationCenter::PendingFor(
    Surrogate inher_rel) const {
  static const std::vector<ChangeRecord> kEmpty;
  auto it = pending_.find(inher_rel.id);
  return it == pending_.end() ? kEmpty : it->second;
}

void NotificationCenter::Acknowledge(Surrogate inher_rel) {
  auto it = pending_.find(inher_rel.id);
  if (it != pending_.end()) it->second.clear();
}

void NotificationCenter::Forget(Surrogate inher_rel) {
  pending_.erase(inher_rel.id);
}

Value NotificationCenter::AsValue(Surrogate inher_rel) const {
  std::vector<Value> records;
  for (const ChangeRecord& r : PendingFor(inher_rel)) {
    records.push_back(Value::Record({
        {"Seq", Value::Int(static_cast<int64_t>(r.seq))},
        {"Transmitter", Value::Ref(r.transmitter)},
        {"Item", Value::String(r.item)},
    }));
  }
  return Value::List(std::move(records));
}

}  // namespace caddb

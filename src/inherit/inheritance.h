#ifndef CADDB_INHERIT_INHERITANCE_H_
#define CADDB_INHERIT_INHERITANCE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "inherit/notification.h"
#include "obs/observability.h"
#include "store/store.h"
#include "util/result.h"
#include "values/value.h"

namespace caddb {

/// Invalidation strategy of the inheritance-resolution cache.
enum class CacheMode {
  /// No memoization; every inherited read walks the transmitter chain.
  kOff,
  /// Legacy ablation baseline: entries are stamped with the store's global
  /// version, so *any* write to *any* object invalidates the whole cache.
  /// Kept only for benchmarking against the fine-grained scheme.
  kGlobalStamp,
  /// Entries record the full transmitter-chain dependency set as
  /// (surrogate, per-object version) pairs and stay valid until one of
  /// *those* objects mutates (or the catalog's schema epoch changes).
  kFineGrained,
};

const char* CacheModeName(CacheMode mode);

/// The value-inheritance engine — the paper's central mechanism (section 4).
///
/// Reads of inherited attributes/subclasses resolve *through* the inheritance
/// chain to the transmitter at access time ("any update of the original data
/// is instantly visible in the composite object", section 2). Nothing is
/// copied; an unbound inheritor sees only the attribute structure (type-level
/// inheritance = generalization). Writes to the transmitter append change
/// records to every affected inheritance relationship, transitively, for the
/// adaptation workflow.
///
/// An optional memoization cache accelerates repeated inherited reads. In
/// its default fine-grained mode every entry records the chain of objects
/// the resolved value depends on, each with the per-object version observed
/// while resolving; a probe revalidates only those versions, so writes to
/// unrelated objects never evict anything. Attribute and subclass
/// resolutions are cached for every node of the walked chain (a leaf read
/// warms the cache for the whole hierarchy above it).
class InheritanceManager {
 public:
  /// Neither pointer is owned; both must outlive the manager.
  /// `notifications` may be null (no change logging). `obs` (not owned)
  /// receives resolution counters and trace spans; null falls back to the
  /// process-global obs::Default() bundle.
  InheritanceManager(ObjectStore* store, NotificationCenter* notifications,
                     obs::Observability* obs = nullptr);

  InheritanceManager(const InheritanceManager&) = delete;
  InheritanceManager& operator=(const InheritanceManager&) = delete;

  // ---- Binding ----
  /// Binds `inheritor` to `transmitter` through `inher_rel_type`; returns the
  /// surrogate of the new inheritance-relationship object.
  Result<Surrogate> Bind(Surrogate inheritor, Surrogate transmitter,
                         const std::string& inher_rel_type);
  Status Unbind(Surrogate inheritor);
  /// The bound transmitter, or Invalid when unbound. NotFound if `inheritor`
  /// does not exist.
  Result<Surrogate> TransmitterOf(Surrogate inheritor) const;
  /// The inheritance-relationship object binding `inheritor`, or Invalid.
  Result<Surrogate> BindingOf(Surrogate inheritor) const;
  /// All inheritors directly bound to `transmitter`. InternalError when the
  /// where-used index names an inheritance relationship the store cannot
  /// produce (index corruption must surface, not silently shrink results).
  Result<std::vector<Surrogate>> InheritorsOf(Surrogate transmitter) const;

  // ---- Inheritance-aware access ----
  /// Effective attribute read: local value for own attributes, transmitter
  /// resolution for inherited ones (null when unbound).
  Result<Value> GetAttribute(Surrogate s, const std::string& name) const;
  /// Effective subclass read: local members for own subclasses, the
  /// transmitter's members (read-only view) for inherited ones.
  Result<std::vector<Surrogate>> GetSubclass(Surrogate s,
                                             const std::string& name) const;
  /// Store write plus transitive change notification to all inheritance
  /// relationships for which `name` is permeable.
  Status SetAttribute(Surrogate s, const std::string& name, Value v);
  /// Store subobject creation plus change notification for the subclass.
  Result<Surrogate> CreateSubobject(Surrogate parent,
                                    const std::string& subclass_name);
  /// Deletes a subobject (or any object) and notifies inheritors watching the
  /// containing subclass.
  Status DeleteObject(Surrogate s, ObjectStore::DeletePolicy policy =
                                       ObjectStore::DeletePolicy::kRestrict);

  /// Snapshot of every effective attribute (inherited values materialized).
  /// Used by the copy-import baseline and workspace checkout.
  Result<std::map<std::string, Value>> Snapshot(Surrogate s) const;

  // ---- Resolution cache (off by default) ----
  /// Switches the invalidation strategy. Changing the mode drops all
  /// entries (their validity metadata is mode-specific) but keeps the
  /// counters; setting the current mode again is a no-op.
  void SetCacheMode(CacheMode mode);
  CacheMode cache_mode() const { return cache_mode_; }
  /// Convenience toggle: on = kFineGrained, off = kOff. Idempotent —
  /// enabling an already-enabled cache keeps entries and counters.
  void EnableCache(bool on);
  bool cache_enabled() const { return cache_mode_ != CacheMode::kOff; }
  /// Zeroes hit/miss/invalidation counters without touching the entries.
  void ResetCacheStats();
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  /// Probes that found an entry whose dependency set (or global stamp) was
  /// out of date; the entry is evicted and the probe also counts as a miss.
  uint64_t cache_invalidations() const { return cache_invalidations_; }
  size_t cache_entries() const {
    return attr_cache_.size() + subclass_cache_.size();
  }

  /// Consistency audit for the static analyzer (CAD107): re-resolves every
  /// cache entry whose validity metadata still checks out *without* the
  /// cache and reports entries whose payload disagrees with the fresh
  /// resolution — i.e. dependency tracking failed to notice a change.
  /// Entries whose metadata is already stale are skipped (staleness is the
  /// normal eviction path, not corruption). Read-only; never repairs.
  std::vector<std::string> AuditCache() const;

  NotificationCenter* notifications() const { return notifications_; }
  ObjectStore* store() const { return store_; }

 private:
  /// One memoized resolution. `deps` lists every object of the transmitter
  /// chain the payload was derived from, leaf-entry first, paired with the
  /// per-object version observed during resolution (kFineGrained validity);
  /// `stamp` is the store's global version at fill time (kGlobalStamp
  /// validity); `schema_epoch` guards against DDL registrations changing
  /// permeability after the fill (both modes).
  template <typename T>
  struct CacheEntry {
    uint64_t stamp = 0;
    uint64_t schema_epoch = 0;
    std::vector<std::pair<uint64_t, uint64_t>> deps;
    T payload;
  };
  using CacheKey = std::pair<uint64_t, std::string>;  // (surrogate, item)

  template <typename T>
  bool EntryValid(const CacheEntry<T>& entry) const;
  /// Cache probe with hit/miss/invalidation accounting; returns the payload
  /// or null. Stale entries are evicted on probe.
  template <typename T>
  const T* Probe(std::map<CacheKey, CacheEntry<T>>* cache,
                 const CacheKey& key) const;
  /// Inserts one entry per chain node (except a terminal node that resolved
  /// `item` locally — local reads never consult the cache), so one deep read
  /// warms every level above it. chain[i]'s dependency set is the chain
  /// suffix starting at i.
  template <typename T>
  void FillChain(std::map<CacheKey, CacheEntry<T>>* cache,
                 const std::string& item,
                 const std::vector<const DbObject*>& chain,
                 bool terminal_is_local, const T& payload) const;

  /// Recursively notifies the inheritance relationships hanging off
  /// `transmitter` about a change of permeable item `item`.
  void NotifyChange(Surrogate transmitter, const std::string& item);

  /// Chain-walk resolutions that bypass the cache entirely (no probe, no
  /// fill, no counters). AuditCache compares cached payloads against these.
  Result<Value> ResolveAttributeUncached(Surrogate s,
                                         const std::string& name) const;
  Result<std::vector<Surrogate>> ResolveSubclassUncached(
      Surrogate s, const std::string& name) const;

  ObjectStore* store_;
  NotificationCenter* notifications_;

  CacheMode cache_mode_ = CacheMode::kOff;
  mutable std::map<CacheKey, CacheEntry<Value>> attr_cache_;
  mutable std::map<CacheKey, CacheEntry<std::vector<Surrogate>>>
      subclass_cache_;
  mutable uint64_t cache_hits_ = 0;
  mutable uint64_t cache_misses_ = 0;
  mutable uint64_t cache_invalidations_ = 0;

  /// Registry mirrors of the per-instance counters above (the members stay
  /// authoritative for ResetCacheStats / per-database queries; the registry
  /// view is monotone across resets), plus the trace-gated resolve timing.
  obs::Observability* obs_;
  obs::Counter* m_cache_hits_;
  obs::Counter* m_cache_misses_;
  obs::Counter* m_cache_invalidations_;
  obs::Counter* m_resolutions_;
  obs::Histogram* m_resolve_us_;
};

}  // namespace caddb

#endif  // CADDB_INHERIT_INHERITANCE_H_

#ifndef CADDB_INHERIT_INHERITANCE_H_
#define CADDB_INHERIT_INHERITANCE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "inherit/notification.h"
#include "store/store.h"
#include "util/result.h"
#include "values/value.h"

namespace caddb {

/// The value-inheritance engine — the paper's central mechanism (section 4).
///
/// Reads of inherited attributes/subclasses resolve *through* the inheritance
/// chain to the transmitter at access time ("any update of the original data
/// is instantly visible in the composite object", section 2). Nothing is
/// copied; an unbound inheritor sees only the attribute structure (type-level
/// inheritance = generalization). Writes to the transmitter append change
/// records to every affected inheritance relationship, transitively, for the
/// adaptation workflow.
///
/// An optional memoization cache (for the resolution-cost ablation) stores
/// resolved inherited values stamped with the store's global version.
class InheritanceManager {
 public:
  /// Neither pointer is owned; both must outlive the manager.
  /// `notifications` may be null (no change logging).
  InheritanceManager(ObjectStore* store, NotificationCenter* notifications)
      : store_(store), notifications_(notifications) {}

  InheritanceManager(const InheritanceManager&) = delete;
  InheritanceManager& operator=(const InheritanceManager&) = delete;

  // ---- Binding ----
  /// Binds `inheritor` to `transmitter` through `inher_rel_type`; returns the
  /// surrogate of the new inheritance-relationship object.
  Result<Surrogate> Bind(Surrogate inheritor, Surrogate transmitter,
                         const std::string& inher_rel_type);
  Status Unbind(Surrogate inheritor);
  /// The bound transmitter, or Invalid when unbound. NotFound if `inheritor`
  /// does not exist.
  Result<Surrogate> TransmitterOf(Surrogate inheritor) const;
  /// The inheritance-relationship object binding `inheritor`, or Invalid.
  Result<Surrogate> BindingOf(Surrogate inheritor) const;
  /// All inheritors directly bound to `transmitter`.
  std::vector<Surrogate> InheritorsOf(Surrogate transmitter) const;

  // ---- Inheritance-aware access ----
  /// Effective attribute read: local value for own attributes, transmitter
  /// resolution for inherited ones (null when unbound).
  Result<Value> GetAttribute(Surrogate s, const std::string& name) const;
  /// Effective subclass read: local members for own subclasses, the
  /// transmitter's members (read-only view) for inherited ones.
  Result<std::vector<Surrogate>> GetSubclass(Surrogate s,
                                             const std::string& name) const;
  /// Store write plus transitive change notification to all inheritance
  /// relationships for which `name` is permeable.
  Status SetAttribute(Surrogate s, const std::string& name, Value v);
  /// Store subobject creation plus change notification for the subclass.
  Result<Surrogate> CreateSubobject(Surrogate parent,
                                    const std::string& subclass_name);
  /// Deletes a subobject (or any object) and notifies inheritors watching the
  /// containing subclass.
  Status DeleteObject(Surrogate s, ObjectStore::DeletePolicy policy =
                                       ObjectStore::DeletePolicy::kRestrict);

  /// Snapshot of every effective attribute (inherited values materialized).
  /// Used by the copy-import baseline and workspace checkout.
  Result<std::map<std::string, Value>> Snapshot(Surrogate s) const;

  // ---- Resolution cache (ablation; off by default) ----
  void EnableCache(bool on);
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

  NotificationCenter* notifications() const { return notifications_; }
  ObjectStore* store() const { return store_; }

 private:
  /// Recursively notifies the inheritance relationships hanging off
  /// `transmitter` about a change of permeable item `item`.
  void NotifyChange(Surrogate transmitter, const std::string& item);

  ObjectStore* store_;
  NotificationCenter* notifications_;

  bool cache_enabled_ = false;
  mutable std::map<std::pair<uint64_t, std::string>,
                   std::pair<uint64_t, Value>>
      cache_;  // (surrogate, attr) -> (global_version stamp, value)
  mutable uint64_t cache_hits_ = 0;
  mutable uint64_t cache_misses_ = 0;
};

}  // namespace caddb

#endif  // CADDB_INHERIT_INHERITANCE_H_

#ifndef CADDB_INHERIT_NOTIFICATION_H_
#define CADDB_INHERIT_NOTIFICATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "values/value.h"

namespace caddb {

/// One propagated transmitter update, recorded on an inheritance-relationship
/// object. The paper (section 2): "To inform the user about changes of the
/// transmitter object the attributes of the relationship can be used" — the
/// inheritor side reads these records to drive its (manual or
/// semi-automatic) adaptation, then acknowledges them.
struct ChangeRecord {
  uint64_t seq = 0;
  Surrogate transmitter;
  /// Name of the changed permeable attribute or subclass.
  std::string item;
};

/// Per-inheritance-relationship log of unacknowledged transmitter changes.
/// Kept outside the objects themselves so the schema of user-defined
/// inher-rel types stays untouched; `AsValue` renders a log as a Value for
/// storing into a declared bookkeeping attribute if the schema provides one.
class NotificationCenter {
 public:
  NotificationCenter() = default;

  NotificationCenter(const NotificationCenter&) = delete;
  NotificationCenter& operator=(const NotificationCenter&) = delete;

  /// Appends a change record to `inher_rel`'s pending log.
  void Record(Surrogate inher_rel, Surrogate transmitter,
              const std::string& item);

  /// Unacknowledged changes for a relationship (empty if none).
  const std::vector<ChangeRecord>& PendingFor(Surrogate inher_rel) const;

  /// Clears the pending log (the inheritor has adapted).
  void Acknowledge(Surrogate inher_rel);

  /// Drops all bookkeeping for a deleted relationship.
  void Forget(Surrogate inher_rel);

  /// The pending log as a list-of-records Value:
  /// [{Seq: n, Transmitter: @t, Item: "Length"}, ...].
  Value AsValue(Surrogate inher_rel) const;

  /// Total records ever written (monotone).
  uint64_t total_recorded() const { return next_seq_ - 1; }

  // ---- Observers (trigger hook) ----
  // The paper (section 2): "In connection with trigger mechanism ... these
  // informations can be used for building mechanisms for semi-automatical
  // corrections of consistency violations." Observers fire synchronously on
  // every Record(), i.e. on every propagated transmitter change. Callbacks
  // must not mutate the store re-entrantly in ways that re-trigger
  // themselves unboundedly; the registry performs no re-entrancy guarding.

  using Observer = std::function<void(Surrogate inher_rel,
                                      const ChangeRecord& record)>;
  /// Registers an observer; returns a token for RemoveObserver.
  uint64_t AddObserver(Observer observer);
  void RemoveObserver(uint64_t token);
  size_t observer_count() const { return observers_.size(); }

 private:
  std::map<uint64_t, std::vector<ChangeRecord>> pending_;
  std::map<uint64_t, Observer> observers_;
  uint64_t next_seq_ = 1;
  uint64_t next_observer_ = 1;
};

}  // namespace caddb

#endif  // CADDB_INHERIT_NOTIFICATION_H_

#include "inherit/inheritance.h"

namespace caddb {

Result<Surrogate> InheritanceManager::Bind(Surrogate inheritor,
                                           Surrogate transmitter,
                                           const std::string& inher_rel_type) {
  return store_->CreateInherRel(inher_rel_type, transmitter, inheritor);
}

Status InheritanceManager::Unbind(Surrogate inheritor) {
  Result<Surrogate> rel = BindingOf(inheritor);
  if (rel.ok() && rel->valid() && notifications_ != nullptr) {
    notifications_->Forget(*rel);
  }
  return store_->Unbind(inheritor);
}

Result<Surrogate> InheritanceManager::TransmitterOf(
    Surrogate inheritor) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(inheritor));
  Surrogate rel_s = obj->bound_inher_rel();
  if (!rel_s.valid()) return Surrogate::Invalid();
  CADDB_ASSIGN_OR_RETURN(const DbObject* rel, store_->Get(rel_s));
  return rel->Participant("transmitter");
}

Result<Surrogate> InheritanceManager::BindingOf(Surrogate inheritor) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(inheritor));
  return obj->bound_inher_rel();
}

std::vector<Surrogate> InheritanceManager::InheritorsOf(
    Surrogate transmitter) const {
  std::vector<Surrogate> out;
  for (Surrogate rel_s : store_->InherRelsOfTransmitter(transmitter)) {
    Result<const DbObject*> rel = store_->Get(rel_s);
    if (rel.ok()) out.push_back((*rel)->Participant("inheritor"));
  }
  return out;
}

Result<Value> InheritanceManager::GetAttribute(Surrogate s,
                                               const std::string& name) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(s));

  if (obj->kind() != ObjKind::kObject) {
    // Relationship objects have no inherited attributes.
    return store_->GetLocalAttribute(s, name);
  }

  Result<EffectiveSchema> schema =
      store_->catalog().EffectiveSchemaFor(obj->type_name());
  if (!schema.ok()) return schema.status();
  if (schema->FindAttribute(name) == nullptr) {
    return NotFound("type '" + obj->type_name() + "' has no attribute '" +
                    name + "'");
  }
  if (!schema->IsInherited(name)) {
    return obj->LocalAttribute(name);
  }

  if (cache_enabled_) {
    auto it = cache_.find({s.id, name});
    if (it != cache_.end() && it->second.first == store_->global_version()) {
      ++cache_hits_;
      return it->second.second;
    }
    ++cache_misses_;
  }

  // Inherited: resolve through the transmitter (view semantics). Unbound
  // inheritors only inherit the attribute *structure*, so the value is null.
  Value resolved = Value::Null();
  Surrogate rel_s = obj->bound_inher_rel();
  if (rel_s.valid()) {
    CADDB_ASSIGN_OR_RETURN(const DbObject* rel, store_->Get(rel_s));
    Surrogate transmitter = rel->Participant("transmitter");
    CADDB_ASSIGN_OR_RETURN(resolved, GetAttribute(transmitter, name));
  }

  if (cache_enabled_) {
    cache_[{s.id, name}] = {store_->global_version(), resolved};
  }
  return resolved;
}

Result<std::vector<Surrogate>> InheritanceManager::GetSubclass(
    Surrogate s, const std::string& name) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(s));

  if (obj->kind() != ObjKind::kObject) {
    const std::vector<Surrogate>* members = obj->Subclass(name);
    if (members != nullptr) return *members;
    // Relationship subclasses are declared in the rel / inher-rel type.
    const RelTypeDef* rel_def =
        store_->catalog().FindRelType(obj->type_name());
    if (rel_def != nullptr && rel_def->FindSubclass(name) != nullptr) {
      return std::vector<Surrogate>{};
    }
    const InherRelTypeDef* inher_def =
        store_->catalog().FindInherRelType(obj->type_name());
    if (inher_def != nullptr) {
      for (const auto& sub : inher_def->subclasses) {
        if (sub.name == name) return std::vector<Surrogate>{};
      }
    }
    return NotFound("type '" + obj->type_name() + "' has no subclass '" +
                    name + "'");
  }

  Result<EffectiveSchema> schema =
      store_->catalog().EffectiveSchemaFor(obj->type_name());
  if (!schema.ok()) return schema.status();
  if (schema->FindSubclass(name) == nullptr) {
    return NotFound("type '" + obj->type_name() + "' has no subclass '" +
                    name + "'");
  }
  if (!schema->IsInherited(name)) {
    const std::vector<Surrogate>* members = obj->Subclass(name);
    return members == nullptr ? std::vector<Surrogate>{} : *members;
  }
  Surrogate rel_s = obj->bound_inher_rel();
  if (!rel_s.valid()) return std::vector<Surrogate>{};
  CADDB_ASSIGN_OR_RETURN(const DbObject* rel, store_->Get(rel_s));
  return GetSubclass(rel->Participant("transmitter"), name);
}

void InheritanceManager::NotifyChange(Surrogate transmitter,
                                      const std::string& item) {
  for (Surrogate rel_s : store_->InherRelsOfTransmitter(transmitter)) {
    Result<const DbObject*> rel = store_->Get(rel_s);
    if (!rel.ok()) continue;
    const InherRelTypeDef* def =
        store_->catalog().FindInherRelType((*rel)->type_name());
    if (def == nullptr || !def->Permeable(item)) continue;
    if (notifications_ != nullptr) {
      notifications_->Record(rel_s, transmitter, item);
    }
    // The inheritor's *inherited* view of `item` changed, which in turn is
    // visible to the inheritor's own inheritors if permeable there.
    NotifyChange((*rel)->Participant("inheritor"), item);
  }
}

Status InheritanceManager::SetAttribute(Surrogate s, const std::string& name,
                                        Value v) {
  CADDB_RETURN_IF_ERROR(store_->SetAttribute(s, name, std::move(v)));
  NotifyChange(s, name);
  return OkStatus();
}

Result<Surrogate> InheritanceManager::CreateSubobject(
    Surrogate parent, const std::string& subclass_name) {
  CADDB_ASSIGN_OR_RETURN(Surrogate s,
                         store_->CreateSubobject(parent, subclass_name));
  NotifyChange(parent, subclass_name);
  return s;
}

Status InheritanceManager::DeleteObject(Surrogate s,
                                        ObjectStore::DeletePolicy policy) {
  // Capture the containment context before deletion for the notification.
  Surrogate parent = Surrogate::Invalid();
  std::string subclass;
  Result<const DbObject*> obj = store_->Get(s);
  if (obj.ok() && (*obj)->IsSubobject()) {
    parent = (*obj)->parent();
    subclass = (*obj)->parent_subclass();
  }
  CADDB_RETURN_IF_ERROR(store_->Delete(s, policy));
  if (parent.valid() && !subclass.empty() && store_->Exists(parent)) {
    NotifyChange(parent, subclass);
  }
  return OkStatus();
}

Result<std::map<std::string, Value>> InheritanceManager::Snapshot(
    Surrogate s) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(s));
  std::map<std::string, Value> out;
  if (obj->kind() == ObjKind::kObject) {
    Result<EffectiveSchema> schema =
        store_->catalog().EffectiveSchemaFor(obj->type_name());
    if (!schema.ok()) return schema.status();
    for (const AttributeDef& a : schema->attributes) {
      CADDB_ASSIGN_OR_RETURN(Value v, GetAttribute(s, a.name));
      out[a.name] = std::move(v);
    }
  } else {
    out = obj->attributes();
  }
  return out;
}

void InheritanceManager::EnableCache(bool on) {
  cache_enabled_ = on;
  cache_.clear();
  cache_hits_ = 0;
  cache_misses_ = 0;
}

}  // namespace caddb

#include "inherit/inheritance.h"

namespace caddb {

InheritanceManager::InheritanceManager(ObjectStore* store,
                                       NotificationCenter* notifications,
                                       obs::Observability* obs)
    : store_(store),
      notifications_(notifications),
      obs_(obs != nullptr ? obs : obs::Default()) {
  m_cache_hits_ = obs_->metrics.GetCounter(
      "caddb_inherit_cache_hits_total",
      "Resolution-cache probes served from a valid entry");
  m_cache_misses_ = obs_->metrics.GetCounter(
      "caddb_inherit_cache_misses_total",
      "Resolution-cache probes that fell through to a chain walk");
  m_cache_invalidations_ = obs_->metrics.GetCounter(
      "caddb_inherit_cache_invalidations_total",
      "Cache probes that evicted a stale entry (also counted as misses)");
  m_resolutions_ = obs_->metrics.GetCounter(
      "caddb_inherit_resolutions_total",
      "Inherited attribute/subclass reads resolved (cached or walked)");
  m_resolve_us_ = obs_->metrics.GetHistogram(
      "caddb_inherit_resolve_us",
      "Inherited read latency; recorded only while tracing is enabled");
}

const char* CacheModeName(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff:
      return "off";
    case CacheMode::kGlobalStamp:
      return "global-stamp";
    case CacheMode::kFineGrained:
      return "fine-grained";
  }
  return "?";
}

Result<Surrogate> InheritanceManager::Bind(Surrogate inheritor,
                                           Surrogate transmitter,
                                           const std::string& inher_rel_type) {
  return store_->CreateInherRel(inher_rel_type, transmitter, inheritor);
}

Status InheritanceManager::Unbind(Surrogate inheritor) {
  Result<Surrogate> rel = BindingOf(inheritor);
  // ObjectStore::Unbind bumps the inheritor's per-object version (the one
  // fine-grained cache entries depend on), so cached inherited values of the
  // inheritor — and of everything bound below it — go stale here, never
  // serving a pre-unbind value for a now-unbound inheritor.
  CADDB_RETURN_IF_ERROR(store_->Unbind(inheritor));
  if (rel.ok() && rel->valid() && notifications_ != nullptr) {
    notifications_->Forget(*rel);
  }
  return OkStatus();
}

Result<Surrogate> InheritanceManager::TransmitterOf(
    Surrogate inheritor) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(inheritor));
  Surrogate rel_s = obj->bound_inher_rel();
  if (!rel_s.valid()) return Surrogate::Invalid();
  CADDB_ASSIGN_OR_RETURN(const DbObject* rel, store_->Get(rel_s));
  return rel->Participant("transmitter");
}

Result<Surrogate> InheritanceManager::BindingOf(Surrogate inheritor) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(inheritor));
  return obj->bound_inher_rel();
}

Result<std::vector<Surrogate>> InheritanceManager::InheritorsOf(
    Surrogate transmitter) const {
  std::vector<Surrogate> out;
  for (Surrogate rel_s : store_->InherRelsOfTransmitter(transmitter)) {
    Result<const DbObject*> rel = store_->Get(rel_s);
    if (!rel.ok()) {
      return InternalError(
          "where-used index names inher-rel @" + std::to_string(rel_s.id) +
          " of transmitter @" + std::to_string(transmitter.id) +
          " which the store cannot produce: " + rel.status().ToString());
    }
    out.push_back((*rel)->Participant("inheritor"));
  }
  return out;
}

template <typename T>
bool InheritanceManager::EntryValid(const CacheEntry<T>& entry) const {
  if (entry.schema_epoch != store_->catalog().schema_epoch()) return false;
  if (cache_mode_ == CacheMode::kGlobalStamp) {
    return entry.stamp == store_->global_version();
  }
  for (const auto& [id, version] : entry.deps) {
    if (store_->ObjectVersion(Surrogate(id)) != version) return false;
  }
  return true;
}

template <typename T>
const T* InheritanceManager::Probe(std::map<CacheKey, CacheEntry<T>>* cache,
                                   const CacheKey& key) const {
  auto it = cache->find(key);
  if (it != cache->end()) {
    if (EntryValid(it->second)) {
      ++cache_hits_;
      m_cache_hits_->Increment();
      return &it->second.payload;
    }
    ++cache_invalidations_;
    m_cache_invalidations_->Increment();
    cache->erase(it);
  }
  ++cache_misses_;
  m_cache_misses_->Increment();
  return nullptr;
}

template <typename T>
void InheritanceManager::FillChain(std::map<CacheKey, CacheEntry<T>>* cache,
                                   const std::string& item,
                                   const std::vector<const DbObject*>& chain,
                                   bool terminal_is_local,
                                   const T& payload) const {
  const uint64_t stamp = store_->global_version();
  const uint64_t epoch = store_->catalog().schema_epoch();
  // A terminal that resolved `item` as its own local data never consults the
  // cache on reads, so an entry keyed on it would be dead weight.
  const size_t cached_nodes =
      terminal_is_local ? chain.size() - 1 : chain.size();
  for (size_t i = 0; i < cached_nodes; ++i) {
    CacheEntry<T>& entry =
        (*cache)[CacheKey(chain[i]->surrogate().id, item)];
    entry.stamp = stamp;
    entry.schema_epoch = epoch;
    entry.deps.clear();
    for (size_t j = i; j < chain.size(); ++j) {
      entry.deps.emplace_back(chain[j]->surrogate().id, chain[j]->version());
    }
    entry.payload = payload;
  }
}

Result<Value> InheritanceManager::GetAttribute(Surrogate s,
                                               const std::string& name) const {
  // Trace-gated on purpose: this is the hottest read path, so the clock
  // only runs (and the histogram only fills) while tracing is enabled.
  obs::Span span(&obs_->trace, "inherit.get_attribute", m_resolve_us_);
  span.AddAttribute("attr", name);
  m_resolutions_->Increment();
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(s));

  if (obj->kind() != ObjKind::kObject) {
    // Relationship objects have no inherited attributes.
    return store_->GetLocalAttribute(s, name);
  }

  CADDB_ASSIGN_OR_RETURN(
      const EffectiveSchema* schema,
      store_->catalog().FindEffectiveSchema(obj->type_name()));
  if (schema->FindAttribute(name) == nullptr) {
    return NotFound("type '" + obj->type_name() + "' has no attribute '" +
                    name + "'");
  }
  if (!schema->IsInherited(name)) {
    return obj->LocalAttribute(name);
  }

  if (cache_mode_ != CacheMode::kOff) {
    if (const Value* hit = Probe(&attr_cache_, CacheKey(s.id, name))) {
      return *hit;
    }
  }

  // Inherited: resolve through the transmitter chain (view semantics),
  // recording every visited object as a dependency of the result. Unbound
  // inheritors only inherit the attribute *structure*, so the value is null
  // (and depends on exactly the node whose binding is missing).
  std::vector<const DbObject*> chain;
  Value resolved = Value::Null();
  bool terminal_is_local = false;
  const DbObject* node = obj;
  const EffectiveSchema* node_schema = schema;
  while (true) {
    chain.push_back(node);
    if (!node_schema->IsInherited(name)) {
      resolved = node->LocalAttribute(name);
      terminal_is_local = true;
      break;
    }
    Surrogate rel_s = node->bound_inher_rel();
    if (!rel_s.valid()) break;
    CADDB_ASSIGN_OR_RETURN(const DbObject* rel, store_->Get(rel_s));
    CADDB_ASSIGN_OR_RETURN(node, store_->Get(rel->Participant("transmitter")));
    CADDB_ASSIGN_OR_RETURN(
        node_schema,
        store_->catalog().FindEffectiveSchema(node->type_name()));
  }

  if (cache_mode_ != CacheMode::kOff) {
    FillChain(&attr_cache_, name, chain, terminal_is_local, resolved);
  }
  return resolved;
}

Result<std::vector<Surrogate>> InheritanceManager::GetSubclass(
    Surrogate s, const std::string& name) const {
  obs::Span span(&obs_->trace, "inherit.get_subclass", m_resolve_us_);
  span.AddAttribute("subclass", name);
  m_resolutions_->Increment();
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(s));

  if (obj->kind() != ObjKind::kObject) {
    const std::vector<Surrogate>* members = obj->Subclass(name);
    if (members != nullptr) return *members;
    // Relationship subclasses are declared in the rel / inher-rel type.
    const RelTypeDef* rel_def =
        store_->catalog().FindRelType(obj->type_name());
    if (rel_def != nullptr && rel_def->FindSubclass(name) != nullptr) {
      return std::vector<Surrogate>{};
    }
    const InherRelTypeDef* inher_def =
        store_->catalog().FindInherRelType(obj->type_name());
    if (inher_def != nullptr) {
      for (const auto& sub : inher_def->subclasses) {
        if (sub.name == name) return std::vector<Surrogate>{};
      }
    }
    return NotFound("type '" + obj->type_name() + "' has no subclass '" +
                    name + "'");
  }

  CADDB_ASSIGN_OR_RETURN(
      const EffectiveSchema* schema,
      store_->catalog().FindEffectiveSchema(obj->type_name()));
  if (schema->FindSubclass(name) == nullptr) {
    return NotFound("type '" + obj->type_name() + "' has no subclass '" +
                    name + "'");
  }
  if (!schema->IsInherited(name)) {
    const std::vector<Surrogate>* members = obj->Subclass(name);
    return members == nullptr ? std::vector<Surrogate>{} : *members;
  }

  if (cache_mode_ != CacheMode::kOff) {
    if (const std::vector<Surrogate>* hit =
            Probe(&subclass_cache_, CacheKey(s.id, name))) {
      return *hit;
    }
  }

  // Same chain walk as GetAttribute: the member list is the terminal
  // transmitter's local subclass, viewed read-only through the chain.
  std::vector<const DbObject*> chain;
  std::vector<Surrogate> resolved;
  bool terminal_is_local = false;
  const DbObject* node = obj;
  const EffectiveSchema* node_schema = schema;
  while (true) {
    chain.push_back(node);
    if (!node_schema->IsInherited(name)) {
      const std::vector<Surrogate>* members = node->Subclass(name);
      if (members != nullptr) resolved = *members;
      terminal_is_local = true;
      break;
    }
    Surrogate rel_s = node->bound_inher_rel();
    if (!rel_s.valid()) break;
    CADDB_ASSIGN_OR_RETURN(const DbObject* rel, store_->Get(rel_s));
    CADDB_ASSIGN_OR_RETURN(node, store_->Get(rel->Participant("transmitter")));
    CADDB_ASSIGN_OR_RETURN(
        node_schema,
        store_->catalog().FindEffectiveSchema(node->type_name()));
  }

  if (cache_mode_ != CacheMode::kOff) {
    FillChain(&subclass_cache_, name, chain, terminal_is_local, resolved);
  }
  return resolved;
}

void InheritanceManager::NotifyChange(Surrogate transmitter,
                                      const std::string& item) {
  for (Surrogate rel_s : store_->InherRelsOfTransmitter(transmitter)) {
    Result<const DbObject*> rel = store_->Get(rel_s);
    if (!rel.ok()) continue;
    const InherRelTypeDef* def =
        store_->catalog().FindInherRelType((*rel)->type_name());
    if (def == nullptr || !def->Permeable(item)) continue;
    if (notifications_ != nullptr) {
      notifications_->Record(rel_s, transmitter, item);
    }
    // The inheritor's *inherited* view of `item` changed, which in turn is
    // visible to the inheritor's own inheritors if permeable there.
    NotifyChange((*rel)->Participant("inheritor"), item);
  }
}

Status InheritanceManager::SetAttribute(Surrogate s, const std::string& name,
                                        Value v) {
  CADDB_RETURN_IF_ERROR(store_->SetAttribute(s, name, std::move(v)));
  NotifyChange(s, name);
  return OkStatus();
}

Result<Surrogate> InheritanceManager::CreateSubobject(
    Surrogate parent, const std::string& subclass_name) {
  CADDB_ASSIGN_OR_RETURN(Surrogate s,
                         store_->CreateSubobject(parent, subclass_name));
  NotifyChange(parent, subclass_name);
  return s;
}

Status InheritanceManager::DeleteObject(Surrogate s,
                                        ObjectStore::DeletePolicy policy) {
  // Capture the containment context before deletion for the notification.
  Surrogate parent = Surrogate::Invalid();
  std::string subclass;
  Result<const DbObject*> obj = store_->Get(s);
  if (obj.ok() && (*obj)->IsSubobject()) {
    parent = (*obj)->parent();
    subclass = (*obj)->parent_subclass();
  }
  CADDB_RETURN_IF_ERROR(store_->Delete(s, policy));
  if (parent.valid() && !subclass.empty() && store_->Exists(parent)) {
    NotifyChange(parent, subclass);
  }
  return OkStatus();
}

Result<std::map<std::string, Value>> InheritanceManager::Snapshot(
    Surrogate s) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store_->Get(s));
  std::map<std::string, Value> out;
  if (obj->kind() == ObjKind::kObject) {
    CADDB_ASSIGN_OR_RETURN(
        const EffectiveSchema* schema,
        store_->catalog().FindEffectiveSchema(obj->type_name()));
    for (const AttributeDef& a : schema->attributes) {
      CADDB_ASSIGN_OR_RETURN(Value v, GetAttribute(s, a.name));
      out[a.name] = std::move(v);
    }
  } else {
    out = obj->attributes();
  }
  return out;
}

Result<Value> InheritanceManager::ResolveAttributeUncached(
    Surrogate s, const std::string& name) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* node, store_->Get(s));
  CADDB_ASSIGN_OR_RETURN(
      const EffectiveSchema* node_schema,
      store_->catalog().FindEffectiveSchema(node->type_name()));
  if (node_schema->FindAttribute(name) == nullptr) {
    return NotFound("type '" + node->type_name() + "' has no attribute '" +
                    name + "'");
  }
  while (node_schema->IsInherited(name)) {
    Surrogate rel_s = node->bound_inher_rel();
    if (!rel_s.valid()) return Value::Null();  // unbound: structure only
    CADDB_ASSIGN_OR_RETURN(const DbObject* rel, store_->Get(rel_s));
    CADDB_ASSIGN_OR_RETURN(node, store_->Get(rel->Participant("transmitter")));
    CADDB_ASSIGN_OR_RETURN(
        node_schema,
        store_->catalog().FindEffectiveSchema(node->type_name()));
  }
  return node->LocalAttribute(name);
}

Result<std::vector<Surrogate>> InheritanceManager::ResolveSubclassUncached(
    Surrogate s, const std::string& name) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* node, store_->Get(s));
  CADDB_ASSIGN_OR_RETURN(
      const EffectiveSchema* node_schema,
      store_->catalog().FindEffectiveSchema(node->type_name()));
  if (node_schema->FindSubclass(name) == nullptr) {
    return NotFound("type '" + node->type_name() + "' has no subclass '" +
                    name + "'");
  }
  while (node_schema->IsInherited(name)) {
    Surrogate rel_s = node->bound_inher_rel();
    if (!rel_s.valid()) return std::vector<Surrogate>{};
    CADDB_ASSIGN_OR_RETURN(const DbObject* rel, store_->Get(rel_s));
    CADDB_ASSIGN_OR_RETURN(node, store_->Get(rel->Participant("transmitter")));
    CADDB_ASSIGN_OR_RETURN(
        node_schema,
        store_->catalog().FindEffectiveSchema(node->type_name()));
  }
  const std::vector<Surrogate>* members = node->Subclass(name);
  return members == nullptr ? std::vector<Surrogate>{} : *members;
}

std::vector<std::string> InheritanceManager::AuditCache() const {
  std::vector<std::string> out;
  auto describe = [](const CacheKey& key) {
    return "(@" + std::to_string(key.first) + ", '" + key.second + "')";
  };
  for (const auto& [key, entry] : attr_cache_) {
    if (!EntryValid(entry)) continue;  // legal staleness, evicted on probe
    Result<Value> fresh =
        ResolveAttributeUncached(Surrogate(key.first), key.second);
    if (!fresh.ok()) {
      out.push_back("attribute cache entry " + describe(key) +
                    " validates but cannot be re-resolved: " +
                    fresh.status().ToString());
    } else if (*fresh != entry.payload) {
      out.push_back("attribute cache entry " + describe(key) + " holds " +
                    entry.payload.ToString() +
                    " but a fresh resolution yields " + fresh->ToString());
    }
  }
  for (const auto& [key, entry] : subclass_cache_) {
    if (!EntryValid(entry)) continue;
    Result<std::vector<Surrogate>> fresh =
        ResolveSubclassUncached(Surrogate(key.first), key.second);
    if (!fresh.ok()) {
      out.push_back("subclass cache entry " + describe(key) +
                    " validates but cannot be re-resolved: " +
                    fresh.status().ToString());
    } else if (*fresh != entry.payload) {
      out.push_back("subclass cache entry " + describe(key) + " holds " +
                    std::to_string(entry.payload.size()) +
                    " member(s) but a fresh resolution yields " +
                    std::to_string(fresh->size()));
    }
  }
  return out;
}

void InheritanceManager::SetCacheMode(CacheMode mode) {
  if (mode == cache_mode_) return;
  cache_mode_ = mode;
  attr_cache_.clear();
  subclass_cache_.clear();
}

void InheritanceManager::EnableCache(bool on) {
  if (on == cache_enabled()) return;
  SetCacheMode(on ? CacheMode::kFineGrained : CacheMode::kOff);
}

void InheritanceManager::ResetCacheStats() {
  cache_hits_ = 0;
  cache_misses_ = 0;
  cache_invalidations_ = 0;
}

}  // namespace caddb

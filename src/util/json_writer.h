#ifndef CADDB_UTIL_JSON_WRITER_H_
#define CADDB_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace caddb {

/// Minimal streaming JSON builder — the one renderer behind every
/// machine-readable surface (`metrics --format=json`, `stats --format=json`,
/// `wal status --format=json`, `replica status --format=json`), so the
/// escaping and number formatting rules cannot drift apart per command.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("state");   w.String("caught-up");
///   w.Key("lag");     w.UInt(0);
///   w.EndObject();
///   std::string json = w.str();
///
/// Commas are inserted automatically; keys must alternate with values inside
/// objects. No validation beyond that — callers own the shape.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Member key inside an object (always followed by exactly one value).
  void Key(const std::string& name);

  void String(const std::string& value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// Non-finite doubles render as null (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Key + value shorthands.
  void Field(const std::string& name, const std::string& value);
  void Field(const std::string& name, const char* value);
  void Field(const std::string& name, uint64_t value);
  void Field(const std::string& name, int64_t value);
  void Field(const std::string& name, double value);
  void Field(const std::string& name, bool value);

  const std::string& str() const { return out_; }

  /// Appends `s` to `out` as a quoted, escaped JSON string.
  static void AppendEscaped(std::string* out, const std::string& s);

 private:
  /// Emits a comma when the current container already holds a member and the
  /// next token is not a key's value.
  void BeforeValue();
  void BeforeKey();

  std::string out_;
  /// Per open container: true once a member has been written.
  std::vector<bool> has_member_;
  /// A Key was just written; the next value completes the member.
  bool pending_value_ = false;
};

}  // namespace caddb

#endif  // CADDB_UTIL_JSON_WRITER_H_

#ifndef CADDB_UTIL_SOURCE_LOC_H_
#define CADDB_UTIL_SOURCE_LOC_H_

#include <string>

namespace caddb {

/// Position of a construct in DDL source text (1-based). Definitions
/// registered programmatically (without DDL) carry the invalid default;
/// diagnostics then omit the location.
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }

  /// "line 12, column 3" (or "" when invalid).
  std::string ToString() const {
    if (!valid()) return "";
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column);
  }

  bool operator==(const SourceLoc& other) const {
    return line == other.line && column == other.column;
  }
};

}  // namespace caddb

#endif  // CADDB_UTIL_SOURCE_LOC_H_

#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace caddb {

void JsonWriter::AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::BeforeValue() {
  if (pending_value_) {
    pending_value_ = false;
    return;
  }
  if (!has_member_.empty()) {
    if (has_member_.back()) out_.push_back(',');
    has_member_.back() = true;
  }
}

void JsonWriter::BeforeKey() {
  if (has_member_.back()) out_.push_back(',');
  has_member_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  has_member_.push_back(false);
}

void JsonWriter::EndObject() {
  has_member_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  has_member_.push_back(false);
}

void JsonWriter::EndArray() {
  has_member_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(const std::string& name) {
  BeforeKey();
  AppendEscaped(&out_, name);
  out_.push_back(':');
  pending_value_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  AppendEscaped(&out_, value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Field(const std::string& name, const std::string& value) {
  Key(name);
  String(value);
}

void JsonWriter::Field(const std::string& name, const char* value) {
  Key(name);
  String(value);
}

void JsonWriter::Field(const std::string& name, uint64_t value) {
  Key(name);
  UInt(value);
}

void JsonWriter::Field(const std::string& name, int64_t value) {
  Key(name);
  Int(value);
}

void JsonWriter::Field(const std::string& name, double value) {
  Key(name);
  Double(value);
}

void JsonWriter::Field(const std::string& name, bool value) {
  Key(name);
  Bool(value);
}

}  // namespace caddb

#ifndef CADDB_UTIL_STATUS_H_
#define CADDB_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace caddb {

/// Error categories used across the whole engine. The public API never throws;
/// every fallible operation reports through Status / Result<T>.
enum class Code {
  kOk = 0,
  kInvalidArgument,      // malformed input (bad name, bad value shape, ...)
  kNotFound,             // named entity or surrogate does not exist
  kAlreadyExists,        // duplicate registration / duplicate binding
  kTypeMismatch,         // value does not satisfy a domain / wrong object type
  kConstraintViolation,  // an integrity constraint evaluated to false
  kInheritedReadOnly,    // attempt to update inherited data in an inheritor
  kCycle,                // inheritance or containment cycle detected
  kFailedPrecondition,   // operation not legal in the current state
  kPermissionDenied,     // access-control manager rejected the operation
  kDeadlock,             // transaction chosen as deadlock victim
  kConflict,             // checkin / update conflict between transactions
  kParseError,           // DDL / expression text could not be parsed
  kUnimplemented,
  kInternal,
  kUnavailable,          // transient I/O failure; retrying may succeed
};

/// Human-readable name of a Code ("ConstraintViolation", ...).
const char* CodeName(Code code);

/// Value-semantic error carrier: a Code plus a context message.
/// [[nodiscard]]: silently dropping a Status hides failures; the rare
/// intentionally-ignored result must be spelled `(void)` with a comment
/// saying why ignoring it is sound.
class [[nodiscard]] Status {
 public:
  /// Constructs OK.
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<CodeName>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Code code_;
  std::string message_;
};

// Terse factories, mirroring the RocksDB/Abseil convention.
Status OkStatus();
Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status AlreadyExists(std::string msg);
Status TypeMismatch(std::string msg);
Status ConstraintViolation(std::string msg);
Status InheritedReadOnly(std::string msg);
Status CycleError(std::string msg);
Status FailedPrecondition(std::string msg);
Status PermissionDenied(std::string msg);
Status DeadlockError(std::string msg);
Status ConflictError(std::string msg);
Status ParseError(std::string msg);
Status Unimplemented(std::string msg);
Status InternalError(std::string msg);
Status Unavailable(std::string msg);

/// Prefixes the message of a non-OK Status with location/context ("dump line
/// 17", "wal segment wal-...log record 42"), keeping the code. OK passes
/// through unchanged. Dump loading and WAL replay use this to attach source
/// positions to errors raised by deeper layers.
Status Annotate(const std::string& context, const Status& status);

}  // namespace caddb

/// Propagates a non-OK Status from the evaluated expression.
#define CADDB_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::caddb::Status _caddb_status = (expr);          \
    if (!_caddb_status.ok()) return _caddb_status;   \
  } while (0)

#endif  // CADDB_UTIL_STATUS_H_

#ifndef CADDB_UTIL_STRING_UTIL_H_
#define CADDB_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace caddb {

/// Joins `parts` with `sep` ("a", "b" -> "a.b").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `s` at every occurrence of `sep` (no escaping). Empty input yields
/// a single empty element, matching the usual split semantics.
std::vector<std::string> Split(const std::string& s, char sep);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Renders an integer with thousands separators for benchmark/report output.
std::string FormatWithCommas(int64_t v);

}  // namespace caddb

#endif  // CADDB_UTIL_STRING_UTIL_H_

#include "util/status.h"

namespace caddb {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kNotFound:
      return "NotFound";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kTypeMismatch:
      return "TypeMismatch";
    case Code::kConstraintViolation:
      return "ConstraintViolation";
    case Code::kInheritedReadOnly:
      return "InheritedReadOnly";
    case Code::kCycle:
      return "Cycle";
    case Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Code::kPermissionDenied:
      return "PermissionDenied";
    case Code::kDeadlock:
      return "Deadlock";
    case Code::kConflict:
      return "Conflict";
    case Code::kParseError:
      return "ParseError";
    case Code::kUnimplemented:
      return "Unimplemented";
    case Code::kInternal:
      return "Internal";
    case Code::kUnavailable:
      return "Unavailable";
  }
  return "UnknownCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }
Status InvalidArgument(std::string msg) {
  return Status(Code::kInvalidArgument, std::move(msg));
}
Status NotFound(std::string msg) {
  return Status(Code::kNotFound, std::move(msg));
}
Status AlreadyExists(std::string msg) {
  return Status(Code::kAlreadyExists, std::move(msg));
}
Status TypeMismatch(std::string msg) {
  return Status(Code::kTypeMismatch, std::move(msg));
}
Status ConstraintViolation(std::string msg) {
  return Status(Code::kConstraintViolation, std::move(msg));
}
Status InheritedReadOnly(std::string msg) {
  return Status(Code::kInheritedReadOnly, std::move(msg));
}
Status CycleError(std::string msg) {
  return Status(Code::kCycle, std::move(msg));
}
Status FailedPrecondition(std::string msg) {
  return Status(Code::kFailedPrecondition, std::move(msg));
}
Status PermissionDenied(std::string msg) {
  return Status(Code::kPermissionDenied, std::move(msg));
}
Status DeadlockError(std::string msg) {
  return Status(Code::kDeadlock, std::move(msg));
}
Status ConflictError(std::string msg) {
  return Status(Code::kConflict, std::move(msg));
}
Status ParseError(std::string msg) {
  return Status(Code::kParseError, std::move(msg));
}
Status Unimplemented(std::string msg) {
  return Status(Code::kUnimplemented, std::move(msg));
}
Status InternalError(std::string msg) {
  return Status(Code::kInternal, std::move(msg));
}
Status Unavailable(std::string msg) {
  return Status(Code::kUnavailable, std::move(msg));
}

Status Annotate(const std::string& context, const Status& status) {
  if (status.ok()) return status;
  return Status(status.code(), context + ": " + status.message());
}

}  // namespace caddb

#ifndef CADDB_UTIL_RESULT_H_
#define CADDB_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace caddb {

/// Status-or-value: either an error Status or a T. Modeled on
/// absl::StatusOr / rocksdb's status-and-out-param idiom, but value-returning.
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from Status so `return NotFound(...)` works in Result-returning
  /// functions. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  /// Implicit from T so `return value;` works.
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace caddb

/// Assigns the value of a Result-returning expression to `lhs`, or propagates
/// its Status. `lhs` may be a declaration ("auto x").
#define CADDB_ASSIGN_OR_RETURN(lhs, expr)                \
  CADDB_ASSIGN_OR_RETURN_IMPL_(                          \
      CADDB_RESULT_CONCAT_(_caddb_result, __LINE__), lhs, expr)

#define CADDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define CADDB_RESULT_CONCAT_(a, b) CADDB_RESULT_CONCAT_IMPL_(a, b)
#define CADDB_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // CADDB_UTIL_RESULT_H_

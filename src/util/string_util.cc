#include "util/string_util.h"

namespace caddb {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string FormatWithCommas(int64_t v) {
  bool negative = v < 0;
  uint64_t magnitude = negative ? 0 - static_cast<uint64_t>(v)
                                : static_cast<uint64_t>(v);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace caddb

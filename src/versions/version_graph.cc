#include "versions/version_graph.h"

#include <algorithm>
#include <deque>
#include <set>

#include "versions/selection.h"
#include "wal/wal.h"

namespace caddb {

namespace {

/// Appends an auto-committed redo record when a wal is attached.
Status LogOp(wal::Wal* wal, const wal::Record& record) {
  if (wal == nullptr) return OkStatus();
  return wal->AppendCommit(record);
}

}  // namespace

const char* VersionStateName(VersionState state) {
  switch (state) {
    case VersionState::kInProgress:
      return "in-progress";
    case VersionState::kTested:
      return "tested";
    case VersionState::kReleased:
      return "released";
    case VersionState::kDeprecated:
      return "deprecated";
  }
  return "?";
}

Result<VersionState> VersionStateFromName(const std::string& name) {
  for (VersionState state :
       {VersionState::kInProgress, VersionState::kTested,
        VersionState::kReleased, VersionState::kDeprecated}) {
    if (name == VersionStateName(state)) return state;
  }
  return InvalidArgument("unknown version state '" + name + "'");
}

const VersionInfo* DesignObject::Find(Surrogate object) const {
  for (const VersionInfo& v : versions_) {
    if (v.object == object) return &v;
  }
  return nullptr;
}

Status VersionManager::CreateDesignObject(const std::string& name,
                                          const std::string& object_type) {
  if (name.empty()) return InvalidArgument("empty design object name");
  if (designs_.count(name) > 0) {
    return AlreadyExists("design object '" + name + "' already exists");
  }
  if (manager_->store()->catalog().FindObjectType(object_type) == nullptr) {
    return NotFound("design object '" + name + "' names unknown type '" +
                    object_type + "'");
  }
  designs_[name] = DesignObject(name, object_type);
  return LogOp(wal_, wal::Record::CreateDesign(wal::kAutoCommitTxn, name,
                                               object_type));
}

Result<const DesignObject*> VersionManager::Find(
    const std::string& name) const {
  auto it = designs_.find(name);
  if (it == designs_.end()) {
    return NotFound("design object '" + name + "' does not exist");
  }
  return &it->second;
}

DesignObject* VersionManager::FindMutable(const std::string& name) {
  auto it = designs_.find(name);
  return it == designs_.end() ? nullptr : &it->second;
}

std::vector<std::string> VersionManager::DesignObjectNames() const {
  std::vector<std::string> out;
  out.reserve(designs_.size());
  for (const auto& [name, d] : designs_) out.push_back(name);
  return out;
}

Status VersionManager::AddVersion(const std::string& design, Surrogate object,
                                  const std::vector<Surrogate>& predecessors) {
  DesignObject* d = FindMutable(design);
  if (d == nullptr) {
    return NotFound("design object '" + design + "' does not exist");
  }
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, manager_->store()->Get(object));
  if (obj->type_name() != d->object_type()) {
    return TypeMismatch("design object '" + design + "' holds versions of '" +
                        d->object_type() + "', got '" + obj->type_name() +
                        "'");
  }
  if (d->Find(object) != nullptr) {
    return AlreadyExists("@" + std::to_string(object.id) +
                         " is already a version of '" + design + "'");
  }
  for (Surrogate p : predecessors) {
    if (d->Find(p) == nullptr) {
      return NotFound("predecessor @" + std::to_string(p.id) +
                      " is not a version of '" + design + "'");
    }
  }
  VersionInfo info;
  info.object = object;
  info.predecessors = predecessors;
  info.seq = d->next_seq_++;
  d->versions_.push_back(std::move(info));
  if (!d->default_version_.valid()) d->default_version_ = object;
  std::vector<uint64_t> predecessor_ids;
  for (Surrogate p : predecessors) predecessor_ids.push_back(p.id);
  return LogOp(wal_,
               wal::Record::AddVersion(wal::kAutoCommitTxn, design, object.id,
                                       std::move(predecessor_ids)));
}

Status VersionManager::SetState(const std::string& design, Surrogate object,
                                VersionState state) {
  DesignObject* d = FindMutable(design);
  if (d == nullptr) {
    return NotFound("design object '" + design + "' does not exist");
  }
  for (VersionInfo& v : d->versions_) {
    if (v.object == object) {
      v.state = state;
      return LogOp(wal_, wal::Record::SetVersionState(
                             wal::kAutoCommitTxn, design, object.id,
                             VersionStateName(state)));
    }
  }
  return NotFound("@" + std::to_string(object.id) +
                  " is not a version of '" + design + "'");
}

Status VersionManager::SetDefaultVersion(const std::string& design,
                                         Surrogate object) {
  DesignObject* d = FindMutable(design);
  if (d == nullptr) {
    return NotFound("design object '" + design + "' does not exist");
  }
  if (d->Find(object) == nullptr) {
    return NotFound("@" + std::to_string(object.id) +
                    " is not a version of '" + design + "'");
  }
  d->default_version_ = object;
  return LogOp(wal_, wal::Record::SetDefaultVersion(wal::kAutoCommitTxn,
                                                    design, object.id));
}

Result<Surrogate> VersionManager::DefaultVersion(
    const std::string& design) const {
  CADDB_ASSIGN_OR_RETURN(const DesignObject* d, Find(design));
  if (!d->default_version().valid()) {
    return FailedPrecondition("design object '" + design +
                              "' has no versions yet");
  }
  return d->default_version();
}

Result<std::vector<Surrogate>> VersionManager::VersionsInState(
    const std::string& design, VersionState state) const {
  CADDB_ASSIGN_OR_RETURN(const DesignObject* d, Find(design));
  std::vector<Surrogate> out;
  for (const VersionInfo& v : d->versions()) {
    if (v.state == state) out.push_back(v.object);
  }
  return out;
}

Result<std::vector<Surrogate>> VersionManager::History(
    const std::string& design, Surrogate object) const {
  CADDB_ASSIGN_OR_RETURN(const DesignObject* d, Find(design));
  if (d->Find(object) == nullptr) {
    return NotFound("@" + std::to_string(object.id) +
                    " is not a version of '" + design + "'");
  }
  std::vector<Surrogate> out;
  std::deque<Surrogate> worklist{object};
  std::set<uint64_t> seen{object.id};
  while (!worklist.empty()) {
    Surrogate s = worklist.front();
    worklist.pop_front();
    const VersionInfo* info = d->Find(s);
    if (info == nullptr) continue;
    for (Surrogate p : info->predecessors) {
      if (seen.insert(p.id).second) {
        out.push_back(p);
        worklist.push_back(p);
      }
    }
  }
  return out;
}

Result<std::vector<Surrogate>> VersionManager::Successors(
    const std::string& design, Surrogate object) const {
  CADDB_ASSIGN_OR_RETURN(const DesignObject* d, Find(design));
  if (d->Find(object) == nullptr) {
    return NotFound("@" + std::to_string(object.id) +
                    " is not a version of '" + design + "'");
  }
  std::vector<Surrogate> out;
  for (const VersionInfo& v : d->versions()) {
    if (std::find(v.predecessors.begin(), v.predecessors.end(), object) !=
        v.predecessors.end()) {
      out.push_back(v.object);
    }
  }
  return out;
}

Result<uint64_t> VersionManager::BindGeneric(
    Surrogate inheritor, const std::string& design,
    const std::string& inher_rel_type) {
  CADDB_ASSIGN_OR_RETURN(const DesignObject* d, Find(design));
  (void)d;
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj,
                         manager_->store()->Get(inheritor));
  (void)obj;
  if (manager_->store()->catalog().FindInherRelType(inher_rel_type) ==
      nullptr) {
    return NotFound("inher-rel-type '" + inher_rel_type +
                    "' is not registered");
  }
  uint64_t id = next_binding_id_++;
  generic_bindings_[id] = GenericBinding{id, inheritor, design,
                                         inher_rel_type, Surrogate::Invalid()};
  CADDB_RETURN_IF_ERROR(
      LogOp(wal_, wal::Record::BindGeneric(wal::kAutoCommitTxn, id,
                                           inheritor.id, design,
                                           inher_rel_type)));
  return id;
}

Result<VersionManager::GenericBinding> VersionManager::GetGenericBinding(
    uint64_t id) const {
  auto it = generic_bindings_.find(id);
  if (it == generic_bindings_.end()) {
    return NotFound("no generic binding with id " + std::to_string(id));
  }
  return it->second;
}

std::vector<VersionManager::GenericBinding> VersionManager::GenericBindings()
    const {
  std::vector<GenericBinding> out;
  out.reserve(generic_bindings_.size());
  for (const auto& [id, b] : generic_bindings_) out.push_back(b);
  return out;
}

Result<Surrogate> VersionManager::ResolveGeneric(
    uint64_t id, const SelectionPolicy& policy) {
  auto it = generic_bindings_.find(id);
  if (it == generic_bindings_.end()) {
    return NotFound("no generic binding with id " + std::to_string(id));
  }
  GenericBinding& binding = it->second;
  CADDB_ASSIGN_OR_RETURN(const DesignObject* d, Find(binding.design));
  CADDB_ASSIGN_OR_RETURN(
      Surrogate version,
      policy.Select(*d, binding.inheritor, *manager_));
  if (d->Find(version) == nullptr) {
    return InternalError("policy '" + policy.name() +
                         "' selected @" + std::to_string(version.id) +
                         " which is not a version of '" + binding.design +
                         "'");
  }
  if (binding.resolved_version == version) return version;
  // The physical effects (unbind + bind + resolved marker) go to the log as
  // one bracketed group under a pseudo-transaction id: a crash mid-rebinding
  // replays either the whole rebinding or none of it.
  uint64_t group = 0;
  auto log = [&](wal::Record record) -> Status {
    if (wal_ == nullptr) return OkStatus();
    if (group == 0) {
      group = wal_->AllocateGroupTxn();
      CADDB_RETURN_IF_ERROR(wal_->Append(wal::Record::Begin(group)).status());
    }
    record.txn = group;
    return wal_->Append(std::move(record)).status();
  };
  auto commit_group = [&]() -> Status {
    if (group == 0) return OkStatus();
    return wal_->AppendCommit(wal::Record::Commit(group));
  };
  if (binding.resolved_version.valid()) {
    CADDB_RETURN_IF_ERROR(manager_->Unbind(binding.inheritor));
    CADDB_RETURN_IF_ERROR(
        log(wal::Record::Unbind(wal::kAutoCommitTxn, binding.inheritor.id)));
  }
  Result<Surrogate> rel =
      manager_->Bind(binding.inheritor, version, binding.inher_rel_type);
  if (!rel.ok()) {
    // Seal the already-applied unbind so the log matches the store.
    CADDB_RETURN_IF_ERROR(commit_group());
    return rel.status();
  }
  CADDB_RETURN_IF_ERROR(
      log(wal::Record::Bind(wal::kAutoCommitTxn, rel->id,
                            binding.inheritor.id, version.id,
                            binding.inher_rel_type)));
  binding.resolved_version = version;
  CADDB_RETURN_IF_ERROR(
      log(wal::Record::MarkResolved(wal::kAutoCommitTxn, id, version.id)));
  CADDB_RETURN_IF_ERROR(commit_group());
  return version;
}

Status VersionManager::MarkResolved(uint64_t id, Surrogate version) {
  auto it = generic_bindings_.find(id);
  if (it == generic_bindings_.end()) {
    return NotFound("no generic binding with id " + std::to_string(id));
  }
  GenericBinding& binding = it->second;
  CADDB_ASSIGN_OR_RETURN(const DesignObject* d, Find(binding.design));
  if (d->Find(version) == nullptr) {
    return NotFound("@" + std::to_string(version.id) +
                    " is not a version of '" + binding.design + "'");
  }
  CADDB_ASSIGN_OR_RETURN(Surrogate transmitter,
                         manager_->TransmitterOf(binding.inheritor));
  if (transmitter != version) {
    return FailedPrecondition(
        "inheritor @" + std::to_string(binding.inheritor.id) +
        " is not currently bound to @" + std::to_string(version.id));
  }
  binding.resolved_version = version;
  return LogOp(wal_, wal::Record::MarkResolved(wal::kAutoCommitTxn, id,
                                               version.id));
}

}  // namespace caddb

#include "versions/selection.h"

#include <algorithm>

#include "constraints/checker.h"
#include "expr/eval.h"

namespace caddb {

std::vector<const VersionInfo*> CandidateVersions(const DesignObject& design) {
  std::vector<const VersionInfo*> out;
  out.reserve(design.versions().size());
  for (const VersionInfo& v : design.versions()) out.push_back(&v);
  std::sort(out.begin(), out.end(),
            [](const VersionInfo* a, const VersionInfo* b) {
              return a->seq < b->seq;
            });
  return out;
}

Result<Surrogate> DefaultVersionPolicy::Select(
    const DesignObject& design, Surrogate /*inheritor*/,
    const InheritanceManager& /*manager*/) const {
  if (!design.default_version().valid()) {
    return FailedPrecondition("design object '" + design.name() +
                              "' has no default version");
  }
  return design.default_version();
}

Result<Surrogate> PredicatePolicy::Select(
    const DesignObject& design, Surrogate /*inheritor*/,
    const InheritanceManager& manager) const {
  if (predicate_ == nullptr) {
    return InvalidArgument("predicate policy without a predicate");
  }
  std::vector<const VersionInfo*> candidates = CandidateVersions(design);
  // Newest first: designs usually want the most recent version that meets
  // the composite's requirements.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    ObjectEvalContext ctx(&manager, (*it)->object);
    Result<bool> match = expr::EvaluatePredicate(*predicate_, &ctx);
    if (!match.ok()) return match.status();
    if (*match) return (*it)->object;
  }
  return NotFound("no version of design object '" + design.name() +
                  "' satisfies the selection predicate " +
                  predicate_->ToString());
}

void EnvironmentPolicy::Pin(const std::string& design, Surrogate version) {
  pins_[design] = version;
}

void EnvironmentPolicy::Unpin(const std::string& design) {
  pins_.erase(design);
}

Surrogate EnvironmentPolicy::PinnedVersion(const std::string& design) const {
  auto it = pins_.find(design);
  return it == pins_.end() ? Surrogate::Invalid() : it->second;
}

Result<Surrogate> EnvironmentPolicy::Select(
    const DesignObject& design, Surrogate /*inheritor*/,
    const InheritanceManager& /*manager*/) const {
  Surrogate pinned = PinnedVersion(design.name());
  if (!pinned.valid()) {
    return FailedPrecondition("environment '" + environment_name_ +
                              "' does not pin design object '" +
                              design.name() + "'");
  }
  return pinned;
}

}  // namespace caddb

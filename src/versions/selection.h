#ifndef CADDB_VERSIONS_SELECTION_H_
#define CADDB_VERSIONS_SELECTION_H_

#include <map>
#include <string>

#include "expr/ast.h"
#include "versions/version_graph.h"

namespace caddb {

/// Strategy for choosing the component version when a generic relationship is
/// resolved at assembly time. The paper (section 6) lists exactly three:
/// top-down (query from the composite), bottom-up (design object's default
/// version), and environment-guided selection.
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  /// Picks a version of `design` for the given `inheritor`. Must return a
  /// surrogate that is a version of `design`.
  virtual Result<Surrogate> Select(const DesignObject& design,
                                   Surrogate inheritor,
                                   const InheritanceManager& manager) const = 0;

  virtual std::string name() const = 0;
};

/// Bottom-up: "Design objects supply a specific version as the default
/// version ... this default version becomes the actual component."
class DefaultVersionPolicy : public SelectionPolicy {
 public:
  Result<Surrogate> Select(const DesignObject& design, Surrogate inheritor,
                           const InheritanceManager& manager) const override;
  std::string name() const override { return "default-version"; }
};

/// Top-down: "A component is selected by queries associated with the
/// composite object giving the required properties of the component."
/// Evaluates `predicate` anchored at each candidate version (newest first)
/// and picks the first match.
class PredicatePolicy : public SelectionPolicy {
 public:
  explicit PredicatePolicy(expr::ExprPtr predicate)
      : predicate_(std::move(predicate)) {}

  Result<Surrogate> Select(const DesignObject& design, Surrogate inheritor,
                           const InheritanceManager& manager) const override;
  std::string name() const override { return "predicate"; }

 private:
  expr::ExprPtr predicate_;
};

/// Environment-guided: "the selection is guided by information not included
/// in the object definition (e.g. environments in [DiLo85])" — a named table
/// pinning design objects to versions.
class EnvironmentPolicy : public SelectionPolicy {
 public:
  explicit EnvironmentPolicy(std::string environment_name = "default")
      : environment_name_(std::move(environment_name)) {}

  /// Pins `design` to `version` in this environment.
  void Pin(const std::string& design, Surrogate version);
  void Unpin(const std::string& design);
  /// Invalid if unpinned.
  Surrogate PinnedVersion(const std::string& design) const;

  /// Fails with kFailedPrecondition when `design` is unpinned (environments
  /// are explicit: no silent fallback).
  Result<Surrogate> Select(const DesignObject& design, Surrogate inheritor,
                           const InheritanceManager& manager) const override;
  std::string name() const override {
    return "environment:" + environment_name_;
  }

 private:
  std::string environment_name_;
  std::map<std::string, Surrogate> pins_;
};

/// Version filter helper shared by policies: candidates in creation order,
/// optionally restricted to a lifecycle state.
std::vector<const VersionInfo*> CandidateVersions(const DesignObject& design);

}  // namespace caddb

#endif  // CADDB_VERSIONS_SELECTION_H_

#ifndef CADDB_VERSIONS_VERSION_GRAPH_H_
#define CADDB_VERSIONS_VERSION_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "inherit/inheritance.h"
#include "util/result.h"
#include "values/value.h"

namespace caddb {

namespace wal {
class Wal;
}

/// Lifecycle state used to classify versions "e.g. according to their degree
/// of correctness" (paper section 6).
enum class VersionState {
  kInProgress,
  kTested,
  kReleased,
  kDeprecated,
};

const char* VersionStateName(VersionState state);
/// Inverse of VersionStateName; kInvalidArgument for unknown names.
Result<VersionState> VersionStateFromName(const std::string& name);

/// One version of a design object: a stored object plus derivation edges
/// into the version graph.
struct VersionInfo {
  Surrogate object;
  VersionState state = VersionState::kInProgress;
  /// Versions this one was derived from ("ordering relationships among the
  /// versions ... keeping track of the design history"). Multiple
  /// predecessors model merges; none marks an initial version.
  std::vector<Surrogate> predecessors;
  /// Creation order within the design object (1-based, monotone).
  uint64_t seq = 0;
};

/// A design object = a named group of versions of one object type, typically
/// the implementations of an interface. Supports the paper's "versioned
/// versions": an interface is itself a version of a more abstract design
/// object, with its own implementations as versions.
class DesignObject {
 public:
  DesignObject() = default;
  DesignObject(std::string name, std::string object_type)
      : name_(std::move(name)), object_type_(std::move(object_type)) {}

  const std::string& name() const { return name_; }
  const std::string& object_type() const { return object_type_; }
  const std::vector<VersionInfo>& versions() const { return versions_; }
  Surrogate default_version() const { return default_version_; }

  const VersionInfo* Find(Surrogate object) const;

 private:
  friend class VersionManager;

  std::string name_;
  std::string object_type_;
  std::vector<VersionInfo> versions_;
  Surrogate default_version_;
  uint64_t next_seq_ = 1;
};

/// Registry of design objects and their version graphs, plus generic
/// component bindings whose version choice is deferred to assembly time
/// (paper section 6; [Wilk87], [DiLo85]).
class VersionManager {
 public:
  /// `manager` is not owned and must outlive the version manager.
  explicit VersionManager(InheritanceManager* manager) : manager_(manager) {}

  VersionManager(const VersionManager&) = delete;
  VersionManager& operator=(const VersionManager&) = delete;

  // ---- Design objects & version graphs ----
  Status CreateDesignObject(const std::string& name,
                            const std::string& object_type);
  Result<const DesignObject*> Find(const std::string& name) const;
  std::vector<std::string> DesignObjectNames() const;

  /// Registers `object` as a new version derived from `predecessors` (all of
  /// which must already be versions). The object must exist and have the
  /// design object's type. The first version becomes the default.
  Status AddVersion(const std::string& design, Surrogate object,
                    const std::vector<Surrogate>& predecessors = {});
  Status SetState(const std::string& design, Surrogate object,
                  VersionState state);
  Status SetDefaultVersion(const std::string& design, Surrogate object);
  Result<Surrogate> DefaultVersion(const std::string& design) const;
  /// Versions in `state` (creation order).
  Result<std::vector<Surrogate>> VersionsInState(const std::string& design,
                                                 VersionState state) const;
  /// All transitive ancestors of `object` in derivation order (nearest
  /// first). Supports "keeping track of the design history".
  Result<std::vector<Surrogate>> History(const std::string& design,
                                         Surrogate object) const;
  /// Direct derivation successors of `object` ("parallel development of
  /// alternatives" shows as multiple successors).
  Result<std::vector<Surrogate>> Successors(const std::string& design,
                                            Surrogate object) const;

  // ---- Generic bindings (deferred version selection) ----
  /// Declares that `inheritor` takes its transmitter from some version of
  /// `design`, to be selected later via a SelectionPolicy. Returns a binding
  /// id.
  Result<uint64_t> BindGeneric(Surrogate inheritor, const std::string& design,
                               const std::string& inher_rel_type);
  struct GenericBinding {
    uint64_t id = 0;
    Surrogate inheritor;
    std::string design;
    std::string inher_rel_type;
    /// The version currently materialized as transmitter (Invalid before the
    /// first resolution).
    Surrogate resolved_version;
  };
  Result<GenericBinding> GetGenericBinding(uint64_t id) const;
  std::vector<GenericBinding> GenericBindings() const;

  /// Selects a version through `policy` and materializes the inheritance
  /// binding (rebinding if a different version was previously selected).
  /// Returns the selected version.
  Result<Surrogate> ResolveGeneric(uint64_t id, const class SelectionPolicy& policy);

  /// Restore path (persist::Dumper): records that `id` is already resolved
  /// to `version` — the inheritance binding must already exist and point at
  /// `version`. Never creates or changes bindings.
  Status MarkResolved(uint64_t id, Surrogate version);

  InheritanceManager* manager() const { return manager_; }

  /// Attaches (or with nullptr, detaches) the write-ahead log. Every
  /// mutating operation above then appends its redo record as an
  /// auto-committed operation. ResolveGeneric logs its *physical* effects
  /// (unbind + bind + resolved marker), not the policy call — replay must
  /// reproduce the choice that was made, not re-run the policy against a
  /// possibly different version graph.
  void set_wal(wal::Wal* wal) { wal_ = wal; }

 private:
  DesignObject* FindMutable(const std::string& name);

  InheritanceManager* manager_;
  wal::Wal* wal_ = nullptr;  // not owned; null = non-durable
  std::map<std::string, DesignObject> designs_;
  std::map<uint64_t, GenericBinding> generic_bindings_;
  uint64_t next_binding_id_ = 1;
};

}  // namespace caddb

#endif  // CADDB_VERSIONS_VERSION_GRAPH_H_

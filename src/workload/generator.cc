#include "workload/generator.h"

#include "core/paper_schemas.h"

namespace caddb {
namespace workload {

namespace {

/// A GateInterface_I + GateInterface pair with pins; returns the interface.
Result<Surrogate> NewInterface(Database* db, std::mt19937* rng, int pins) {
  CADDB_ASSIGN_OR_RETURN(Surrogate abs, db->CreateObject("GateInterface_I"));
  for (int i = 0; i < pins; ++i) {
    CADDB_ASSIGN_OR_RETURN(Surrogate pin, db->CreateSubobject(abs, "Pins"));
    CADDB_RETURN_IF_ERROR(
        db->Set(pin, "InOut", Value::Enum(i == 0 ? "OUT" : "IN")));
    CADDB_RETURN_IF_ERROR(db->Set(
        pin, "PinLocation",
        Value::Point(static_cast<int64_t>((*rng)() % 100),
                     static_cast<int64_t>((*rng)() % 100))));
  }
  CADDB_ASSIGN_OR_RETURN(Surrogate iface, db->CreateObject("GateInterface"));
  CADDB_ASSIGN_OR_RETURN(Surrogate binding,
                         db->Bind(iface, abs, "AllOf_GateInterface_I"));
  (void)binding;
  CADDB_RETURN_IF_ERROR(db->Set(
      iface, "Length", Value::Int(static_cast<int64_t>(4 + (*rng)() % 60))));
  CADDB_RETURN_IF_ERROR(db->Set(
      iface, "Width", Value::Int(static_cast<int64_t>(2 + (*rng)() % 30))));
  return iface;
}

}  // namespace

Result<Netlist> GenerateNetlist(Database* db, const NetlistParams& params) {
  if (params.library_size < 1 || params.pins_per_interface < 1 ||
      params.depth < 1) {
    return InvalidArgument("netlist params out of range");
  }
  std::mt19937 rng(params.seed);
  Netlist out;

  // The shared library.
  for (int i = 0; i < params.library_size; ++i) {
    CADDB_ASSIGN_OR_RETURN(
        Surrogate iface,
        NewInterface(db, &rng, params.pins_per_interface));
    out.library.push_back(iface);
  }
  out.hot_interface = out.library.front();

  // Composites, layered by depth: layer k may use interfaces of layer < k
  // composites as components.
  std::vector<Surrogate> candidate_pool = out.library;
  int per_layer = std::max(1, params.composites / params.depth);
  int built = 0;
  for (int layer = 0; layer < params.depth && built < params.composites;
       ++layer) {
    std::vector<Surrogate> new_interfaces;
    for (int c = 0; c < per_layer && built < params.composites;
         ++c, ++built) {
      CADDB_ASSIGN_OR_RETURN(
          Surrogate own_iface,
          NewInterface(db, &rng, params.pins_per_interface));
      CADDB_ASSIGN_OR_RETURN(Surrogate composite,
                             db->CreateObject("GateImplementation"));
      CADDB_ASSIGN_OR_RETURN(
          Surrogate binding,
          db->Bind(composite, own_iface, "AllOf_GateInterface"));
      (void)binding;
      out.composites.push_back(composite);
      new_interfaces.push_back(own_iface);

      for (int s = 0; s < params.components_per_composite; ++s) {
        Surrogate component;
        if (static_cast<int>(rng() % 100) < params.hot_share_percent) {
          component = out.hot_interface;
        } else {
          component = candidate_pool[rng() % candidate_pool.size()];
        }
        CADDB_ASSIGN_OR_RETURN(Surrogate slot,
                               db->CreateSubobject(composite, "SubGates"));
        CADDB_ASSIGN_OR_RETURN(
            Surrogate slot_binding,
            db->Bind(slot, component, "AllOf_GateInterface"));
        (void)slot_binding;
        CADDB_RETURN_IF_ERROR(db->Set(
            slot, "GateLocation",
            Value::Point(static_cast<int64_t>(s * 10),
                         static_cast<int64_t>(layer * 10))));
        out.slots.push_back(slot);

        if (params.wire_up) {
          // Wire the composite's first (inherited) pin to the component's
          // first pin, through the inheritance-resolved views.
          CADDB_ASSIGN_OR_RETURN(std::vector<Surrogate> own_pins,
                                 db->Subclass(composite, "Pins"));
          CADDB_ASSIGN_OR_RETURN(std::vector<Surrogate> sub_pins,
                                 db->Subclass(slot, "Pins"));
          if (!own_pins.empty() && !sub_pins.empty()) {
            CADDB_ASSIGN_OR_RETURN(
                Surrogate wire,
                db->CreateSubrel(composite, "Wires",
                                 {{"Pin1", {own_pins[rng() % own_pins.size()]}},
                                  {"Pin2", {sub_pins[rng() % sub_pins.size()]}}}));
            (void)wire;
            ++out.wires;
          }
        }
      }
    }
    candidate_pool.insert(candidate_pool.end(), new_interfaces.begin(),
                          new_interfaces.end());
  }
  return out;
}

Result<Netlist> GenerateNetlistInto(Database* db,
                                    const NetlistParams& params) {
  CADDB_RETURN_IF_ERROR(db->ExecuteDdl(schemas::kGatesBase));
  CADDB_RETURN_IF_ERROR(db->ExecuteDdl(schemas::kGatesInterfaces));
  return GenerateNetlist(db, params);
}

}  // namespace workload
}  // namespace caddb

#ifndef CADDB_WORKLOAD_SCENARIO_H_
#define CADDB_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"

namespace caddb {
namespace workload {

/// Parameters of the paper's section 5 steel-construction population: a
/// catalog of standard parts (bolts/nuts), libraries of girder and plate
/// interfaces with bores, and a yard of weight-carrying structures whose
/// members inherit from the libraries and whose screwings tie member bores
/// to catalog parts. Every generated value satisfies the schema's
/// constraints (girder proportions, bolt/nut/bore arithmetic), so
/// constraint checks over the population stay clean.
struct SteelParams {
  uint32_t seed = 7;
  /// Bolt/nut pairs in the standard-parts catalog.
  int catalog_parts = 4;
  int girder_interfaces = 4;
  int plate_interfaces = 3;
  /// Bores drilled into each interface.
  int bores_per_interface = 2;
  /// Weight-carrying structures in the yard.
  int structures = 6;
  int girders_per_structure = 2;
  int plates_per_structure = 1;
  /// Screwings per structure; each uses two bores of the structure's own
  /// members (the subrel's where-clause) plus one catalog bolt/nut pair.
  int screwings_per_structure = 2;
};

/// The generated population, for soak drivers and stress tests to mutate
/// and navigate.
struct SteelYard {
  std::vector<Surrogate> bolts;
  std::vector<Surrogate> nuts;
  std::vector<Surrogate> girder_interfaces;
  std::vector<Surrogate> plate_interfaces;
  std::vector<Surrogate> structures;
  std::vector<Surrogate> screwings;
  size_t bores = 0;
};

/// Populates `db` (which must already hold schemas::kSteel) with a random
/// steel yard. Deterministic per seed.
Result<SteelYard> GenerateSteelYard(Database* db, const SteelParams& params);

/// Convenience: runs the steel DDL first.
Result<SteelYard> GenerateSteelYardInto(Database* db,
                                        const SteelParams& params);

/// Parameters of a deep interface hierarchy: `chains` independent
/// inheritance chains of `depth` hops, each hop re-transmitting the root's
/// A attribute (the resolution-path stressor from the paper's interface
/// discussion — reads at the leaf walk the full chain).
struct HierarchyParams {
  uint32_t seed = 11;
  int depth = 6;
  int chains = 3;
};

struct Hierarchy {
  /// chain_nodes[c][k] is level-k node of chain c (k = 0 is the root).
  std::vector<std::vector<Surrogate>> chain_nodes;
  /// Root A values, seeded per chain; leaves must resolve to these.
  std::vector<int64_t> root_values;
};

/// Declares the chain types (HL0..HLdepth / HR1..HRdepth — names chosen
/// not to collide with other schemas) if absent and builds the bound,
/// seeded chains. Deterministic per seed.
Result<Hierarchy> GenerateDeepHierarchy(Database* db,
                                        const HierarchyParams& params);

/// The DDL GenerateDeepHierarchy executes, exposed so differential oracles
/// can mirror the schema into a second database.
std::string DeepHierarchyDdl(int depth);

}  // namespace workload
}  // namespace caddb

#endif  // CADDB_WORKLOAD_SCENARIO_H_

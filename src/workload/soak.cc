#include "workload/soak.h"

#include <time.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/disk_verifier.h"
#include "baselines/copy_import.h"
#include "core/database.h"
#include "fault/failpoint.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "replication/daemon.h"
#include "replication/follower.h"
#include "replication/shipper.h"

namespace caddb {
namespace workload {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SleepUs(uint64_t us) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(us / 1000000);
  ts.tv_nsec = static_cast<long>((us % 1000000) * 1000);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// FNV-1a, folding each op's identifying fields into the stream hash.
void HashMix(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= 1099511628211ULL;
  }
}

/// One timed entry of the fault schedule.
struct FaultEvent {
  uint64_t at_ms = 0;
  bool arm = true;
  std::string directive;  // "site spec..." for arm, "site" for disarm
};

Result<std::vector<FaultEvent>> ParseFaultSchedule(const std::string& text) {
  std::vector<FaultEvent> events;
  std::string entry;
  std::stringstream stream(text);
  while (std::getline(stream, entry, ';')) {
    std::stringstream tokens(entry);
    std::string at, verb;
    if (!(tokens >> at)) continue;  // empty entry
    if (at.size() < 2 || at[0] != '@') {
      return InvalidArgument("fault schedule entry '" + entry +
                             "': expected '@<ms> arm|disarm ...'");
    }
    FaultEvent event;
    try {
      event.at_ms = std::stoull(at.substr(1));
    } catch (...) {
      return InvalidArgument("fault schedule entry '" + entry +
                             "': bad time '" + at + "'");
    }
    if (!(tokens >> verb) || (verb != "arm" && verb != "disarm")) {
      return InvalidArgument("fault schedule entry '" + entry +
                             "': expected arm or disarm");
    }
    event.arm = verb == "arm";
    std::string rest, token;
    while (tokens >> token) {
      if (!rest.empty()) rest += ' ';
      rest += token;
    }
    if (rest.empty()) {
      return InvalidArgument("fault schedule entry '" + entry +
                             "': missing site");
    }
    event.directive = rest;
    events.push_back(std::move(event));
  }
  return events;
}

/// The safe default schedule: chaos on the wire and the replication
/// transport (both self-healing), bounded clean errors in storage, and
/// delay-only at the WAL fsync site — an injected *error* there poisons
/// the log for the process lifetime (fsyncgate semantics), which is a
/// crash-matrix scenario, not a soak scenario.
std::vector<FaultEvent> DefaultFaultSchedule(uint32_t seed,
                                             uint64_t duration_ms) {
  const uint64_t d = duration_ms == 0 ? 2000 : duration_ms;
  const std::string s = " --seed=" + std::to_string(seed);
  std::vector<FaultEvent> events;
  auto arm = [&](uint64_t at, const std::string& directive) {
    events.push_back(FaultEvent{at, true, directive});
  };
  auto disarm = [&](uint64_t at, const std::string& site) {
    events.push_back(FaultEvent{at, false, site});
  };
  arm(d / 20, std::string(fault::sites::kNetSessionWrite) +
                  " drop --p=0.05" + s);
  arm(d / 10, std::string(fault::sites::kNetSessionRead) +
                  " delay=2ms --p=0.05" + s);
  arm(d / 8, std::string(fault::sites::kNetClientRead) +
                 " delay=1ms --p=0.05" + s);
  arm(d / 5, std::string(fault::sites::kReplicationShip) + " drop --every=5");
  arm(d / 4, std::string(fault::sites::kWalAppendPreFsync) +
                 " delay=500us --p=0.2" + s);
  arm(d * 2 / 5, std::string(fault::sites::kStoragePageFlush) +
                     " error --times=2");
  arm(d / 2, std::string(fault::sites::kNetSessionWrite) +
                 " reset --p=0.02" + s);
  arm(d * 3 / 5, std::string(fault::sites::kReplicationShip) +
                     " truncate --every=7");
  disarm(d * 4 / 5, fault::sites::kNetSessionWrite);
  disarm(d * 4 / 5, fault::sites::kNetSessionRead);
  return events;
}

/// The copy-based mirror of DeepHierarchyDdl: every level declares A as an
/// *own* attribute (that is the baseline's defining flaw — the schema
/// duplicates the transmitted structure, and updates propagate only by
/// manual re-copy).
std::string MirrorHierarchyDdl(int depth) {
  std::string ddl = "obj-type MH0 = attributes: A, B: integer; end MH0;\n";
  for (int i = 1; i <= depth; ++i) {
    const std::string cur = "MH" + std::to_string(i);
    ddl += "obj-type " + cur + " = attributes: A, C" + std::to_string(i) +
           ": integer; end " + cur + ";\n";
  }
  return ddl;
}

/// Fires scheduled fault events at their times until stopped.
class FaultScheduler {
 public:
  FaultScheduler(std::vector<FaultEvent> events, obs::MetricsRegistry* metrics,
                 SoakReport* report, std::mutex* report_mu)
      : events_(std::move(events)),
        metrics_(metrics),
        report_(report),
        report_mu_(report_mu),
        start_ms_(NowMs()),
        thread_([this] { Loop(); }) {}

  ~FaultScheduler() { Stop(); }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    for (const FaultEvent& event : events_) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        const uint64_t target = start_ms_ + event.at_ms;
        cv_.wait_for(lock,
                     std::chrono::milliseconds(
                         target > NowMs() ? target - NowMs() : 0),
                     [this] { return stop_; });
        if (stop_) return;
      }
      fault::FailpointRegistry& registry = fault::FailpointRegistry::Global();
      const Status s = event.arm
                           ? registry.ArmFromString(event.directive, metrics_)
                           : registry.Disarm(event.directive);
      std::lock_guard<std::mutex> lock(*report_mu_);
      if (s.ok() && event.arm) ++report_->faults_armed;
      if (!s.ok() && report_->first_violation.empty()) {
        report_->first_violation = "fault schedule: " + s.ToString();
        ++report_->invariant_violations;
      }
    }
  }

  std::vector<FaultEvent> events_;
  obs::MetricsRegistry* metrics_;
  SoakReport* report_;
  std::mutex* report_mu_;
  uint64_t start_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

std::string SoakReport::RenderText() const {
  std::ostringstream out;
  out << "soak " << (ok() ? "OK" : "FAILED") << "\n"
      << "  ops applied:             " << ops_applied << " (" << op_failures
      << " failed)\n"
      << "  wire reads:              " << reads << " (" << read_failures
      << " failed, " << retries << " retries, " << sheds << " sheds)\n"
      << "  checkpoints:             " << checkpoints << "\n"
      << "  invariant checks:        " << checks_run << "\n"
      << "  faults armed/fired:      " << faults_armed << "/" << faults_fired
      << "\n"
      << "  invariant violations:    " << invariant_violations << "\n"
      << "  differential mismatches: " << differential_mismatches << "\n"
      << "  follower:                "
      << (follower_quarantined
              ? "QUARANTINED"
              : (follower_caught_up ? "caught-up" : "LAGGING"))
      << "\n"
      << "  disk artifacts:          " << (disk_clean ? "clean" : "DIRTY")
      << "\n"
      << "  ops hash:                " << ops_hash << "\n";
  if (!first_violation.empty()) {
    out << "  first violation:         " << first_violation << "\n";
  }
  return out.str();
}

Result<SoakReport> RunSoak(const SoakOptions& options) {
  if (options.dir.empty()) return InvalidArgument("soak needs a directory");
  if (options.hierarchy_depth < 1 || options.hierarchy_chains < 1) {
    return InvalidArgument("soak hierarchy params out of range");
  }
  // Parse the schedule before any thread or file exists, so a bad
  // schedule is a clean InvalidArgument instead of a mid-teardown return.
  std::vector<FaultEvent> events;
  if (options.fault_schedule == "none") {
    // chaos-free run
  } else if (options.fault_schedule.empty()) {
    events = DefaultFaultSchedule(options.seed, options.duration_ms);
  } else {
    CADDB_ASSIGN_OR_RETURN(events,
                           ParseFaultSchedule(options.fault_schedule));
  }
  SoakReport report;
  std::mutex report_mu;

  // ---- The fleet ----
  const std::string primary_dir = options.dir + "/primary";
  const std::string replica_dir = options.dir + "/replica";
  CADDB_ASSIGN_OR_RETURN(std::unique_ptr<Database> primary,
                         Database::Open(primary_dir));

  std::unique_ptr<net::Server> server;
  if (options.with_server) {
    net::ServerOptions server_options;
    server_options.request_deadline_us = 2 * 1000 * 1000;
    CADDB_ASSIGN_OR_RETURN(server,
                           net::Server::Start(primary.get(), server_options));
  }
  // Serializes the mutator's direct Database calls against the server's
  // worker pool; a no-op lock when no server runs.
  std::mutex no_server_mu;
  auto pause = [&]() {
    return server != nullptr ? server->PauseExecution()
                             : std::unique_lock<std::mutex>(no_server_mu);
  };

  std::unique_ptr<replication::Shipper> shipper;
  std::unique_ptr<replication::Follower> follower;
  std::unique_ptr<replication::AutoShipper> auto_shipper;
  std::unique_ptr<replication::AutoPoller> auto_poller;
  if (options.with_replication) {
    shipper = std::make_unique<replication::Shipper>(primary.get(),
                                                     replica_dir);
    follower = std::make_unique<replication::Follower>(replica_dir);
    replication::DaemonOptions cadence;
    cadence.interval_ms = 100;
    auto_shipper =
        std::make_unique<replication::AutoShipper>(shipper.get(), cadence);
    auto_poller =
        std::make_unique<replication::AutoPoller>(follower.get(), cadence);
  }

  // ---- The population (generated before the chaos starts) ----
  SteelYard yard;
  Hierarchy hierarchy;
  {
    auto lock = pause();
    CADDB_ASSIGN_OR_RETURN(yard,
                           GenerateSteelYardInto(primary.get(), options.steel));
    HierarchyParams hierarchy_params;
    hierarchy_params.seed = options.seed;
    hierarchy_params.depth = options.hierarchy_depth;
    hierarchy_params.chains = options.hierarchy_chains;
    CADDB_ASSIGN_OR_RETURN(
        hierarchy, GenerateDeepHierarchy(primary.get(), hierarchy_params));
  }

  // ---- The differential oracle: the paper's copy-based strawman ----
  // Mirrors every hierarchy root/A mutation with ImportByCopy + manual
  // refresh cascades; inherited reads on the primary must match the
  // baseline's copied values at every level.
  Database baseline;
  CADDB_RETURN_IF_ERROR(
      baseline.ExecuteDdl(MirrorHierarchyDdl(options.hierarchy_depth)));
  CopyImportManager copies(&baseline.inheritance());
  std::vector<std::vector<Surrogate>> mirror_chains;
  for (int c = 0; c < options.hierarchy_chains; ++c) {
    std::vector<Surrogate> chain;
    for (int k = 0; k <= options.hierarchy_depth; ++k) {
      CADDB_ASSIGN_OR_RETURN(
          Surrogate node, baseline.CreateObject("MH" + std::to_string(k)));
      chain.push_back(node);
    }
    CADDB_RETURN_IF_ERROR(baseline.Set(
        chain[0], "A", Value::Int(hierarchy.root_values[c])));
    for (int k = 1; k <= options.hierarchy_depth; ++k) {
      CADDB_RETURN_IF_ERROR(
          copies.ImportByCopy(chain[k], chain[k - 1], {"A"}).status());
    }
    mirror_chains.push_back(std::move(chain));
  }
  // The manual adaptation step the paper criticizes: after a source
  // update, every copy taken from it (transitively) must be re-copied, in
  // chain order.
  auto refresh_chain = [&](int c) -> Status {
    for (int k = 0; k < options.hierarchy_depth; ++k) {
      CADDB_RETURN_IF_ERROR(
          copies.RefreshAllFrom(mirror_chains[c][k]).status());
    }
    return OkStatus();
  };

  // ---- The wire reader ----
  std::atomic<bool> reader_stop{false};
  std::atomic<uint64_t> reads{0}, read_failures{0}, reader_retries{0},
      reader_sheds{0};
  std::thread reader;
  if (options.with_server) {
    const uint16_t port = server->port();
    reader = std::thread([&, port] {
      net::ClientOptions client_options;
      client_options.ns = "soak-reader";
      client_options.recv_timeout_ms = 1000;
      net::RetryOptions retry;
      retry.max_attempts = 5;
      retry.initial_backoff_us = 10 * 1000;
      retry.max_backoff_us = 200 * 1000;
      Result<std::unique_ptr<net::RetryingClient>> client =
          net::RetryingClient::Connect("127.0.0.1", port, client_options,
                                       retry);
      if (!client.ok()) {
        ++read_failures;
        return;
      }
      while (!reader_stop.load(std::memory_order_relaxed)) {
        std::string output;
        bool command_error = false;
        Status s = (*client)->Execute("stats", &output, &command_error);
        ++reads;
        if (!s.ok() || command_error) ++read_failures;
        SleepUs(2000);
      }
      reader_retries += (*client)->retries();
      reader_sheds += (*client)->sheds_seen();
      (*client)->Close();
    });
  }

  // ---- The fault schedule (parsed upfront) ----
  std::unique_ptr<FaultScheduler> scheduler;
  if (!events.empty()) {
    scheduler = std::make_unique<FaultScheduler>(
        std::move(events), &primary->observability()->metrics, &report,
        &report_mu);
  }

  // ---- The op stream (seeded; independent of fault timing) ----
  // Pre-generated in full and hashed upfront, so ops_hash is a pure
  // function of the seed even when the wall-clock budget cuts execution
  // short — two runs of the same seed are always comparing the same plan.
  struct Op {
    uint64_t kind;
    uint64_t chain;
    uint64_t value;
    uint64_t aux;  // secondary selector (interface, structure, level)
  };
  std::mt19937 rng(options.seed);
  std::vector<Op> plan;
  plan.reserve(options.ops);
  uint64_t ops_hash = 14695981039346656037ULL;
  for (uint64_t op = 0; op < options.ops; ++op) {
    Op entry{rng() % 4, rng() % hierarchy.chain_nodes.size(), rng() % 100000,
             rng()};
    HashMix(&ops_hash, entry.kind);
    HashMix(&ops_hash, entry.chain);
    HashMix(&ops_hash, entry.value);
    HashMix(&ops_hash, entry.aux);
    plan.push_back(entry);
  }
  report.ops_hash = ops_hash;
  const uint64_t start_ms = NowMs();
  const uint64_t pace_us =
      options.duration_ms > 0 && options.ops > 0
          ? options.duration_ms * 1000 / options.ops
          : 0;
  auto note_violation = [&](const std::string& what) {
    std::lock_guard<std::mutex> lock(report_mu);
    if (report.first_violation.empty()) report.first_violation = what;
  };

  for (uint64_t op = 0; op < plan.size(); ++op) {
    if (options.duration_ms > 0 &&
        NowMs() - start_ms > options.duration_ms) {
      break;
    }
    const uint64_t kind = plan[op].kind;
    const uint64_t chain_index = plan[op].chain;
    const uint64_t value = plan[op].value;
    const uint64_t aux = plan[op].aux;

    Status op_status = OkStatus();
    switch (kind) {
      case 0: {
        // Hierarchy root update + differential compare at every level.
        const std::vector<Surrogate>& chain =
            hierarchy.chain_nodes[chain_index];
        {
          auto lock = pause();
          op_status = primary->Set(chain[0], "A",
                                   Value::Int(static_cast<int64_t>(value)));
        }
        if (op_status.ok()) {
          op_status = baseline.Set(mirror_chains[chain_index][0], "A",
                                   Value::Int(static_cast<int64_t>(value)));
        }
        if (op_status.ok()) op_status = refresh_chain(chain_index);
        if (op_status.ok()) {
          auto lock = pause();
          for (int k = 0; k <= options.hierarchy_depth; ++k) {
            Result<Value> inherited = primary->Get(chain[k], "A");
            Result<Value> copied =
                baseline.Get(mirror_chains[chain_index][k], "A");
            if (!inherited.ok() || !copied.ok() ||
                inherited->AsInt() != copied->AsInt()) {
              std::lock_guard<std::mutex> report_lock(report_mu);
              ++report.differential_mismatches;
              if (report.first_violation.empty()) {
                report.first_violation =
                    "differential: chain " + std::to_string(chain_index) +
                    " level " + std::to_string(k) +
                    ": inherited != copied after root := " +
                    std::to_string(value);
              }
              break;
            }
          }
        }
        break;
      }
      case 1: {
        // Steel interface update. Heights start at 10 and widths at 5, so
        // any Length below 100*10*5 respects the girder constraint.
        Surrogate iface =
            yard.girder_interfaces[aux % yard.girder_interfaces.size()];
        auto lock = pause();
        op_status = primary->Set(
            iface, "Length",
            Value::Int(1 + static_cast<int64_t>(value % 4999)));
        break;
      }
      case 2: {
        if (yard.structures.empty()) break;
        Surrogate wcs = yard.structures[aux % yard.structures.size()];
        auto lock = pause();
        op_status = primary->Set(
            wcs, "Description",
            Value::String("rev-" + std::to_string(value)));
        break;
      }
      default: {
        // Mid-chain own-attribute update.
        const std::vector<Surrogate>& chain =
            hierarchy.chain_nodes[chain_index];
        const int level =
            1 + static_cast<int>(aux % options.hierarchy_depth);
        auto lock = pause();
        op_status = primary->Set(chain[level], "C" + std::to_string(level),
                                 Value::Int(static_cast<int64_t>(value)));
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(report_mu);
      if (op_status.ok()) {
        ++report.ops_applied;
      } else {
        ++report.op_failures;
        if (report.first_violation.empty()) {
          report.first_violation = "op " + std::to_string(op) + ": " +
                                   op_status.ToString();
        }
      }
    }

    if (options.check_every > 0 && (op + 1) % options.check_every == 0) {
      auto lock = pause();
      analysis::DiagnosticBag bag = primary->Check();
      std::lock_guard<std::mutex> report_lock(report_mu);
      ++report.checks_run;
      if (bag.HasErrors()) {
        ++report.invariant_violations;
        if (report.first_violation.empty()) {
          report.first_violation = "check at op " + std::to_string(op) +
                                   ": " + bag.RenderText();
        }
      }
    }
    if (options.checkpoint_every > 0 &&
        (op + 1) % options.checkpoint_every == 0) {
      Status s = primary->Checkpoint();
      std::lock_guard<std::mutex> lock(report_mu);
      // A failed checkpoint under injected storage faults is expected and
      // self-healing (the dirty set is restored for the next attempt).
      if (s.ok()) ++report.checkpoints;
    }
    if (pace_us > 0) SleepUs(pace_us);
  }

  // ---- Wind down: disarm, drain, heal, verify ----
  if (scheduler != nullptr) scheduler->Stop();
  {
    // Tally fires from this run's metrics registry, not the global site
    // table: the process-wide registry keeps counters across runs (by
    // design, for post-run tables), but the primary's metrics are fresh
    // per run, so the bound caddb_fault_fired_total{site=...} counters
    // are exactly this run's fires.
    std::lock_guard<std::mutex> lock(report_mu);
    const std::string prefix = "caddb_fault_fired_total{";
    for (const obs::CounterSample& counter :
         primary->observability()->metrics.Snapshot().counters) {
      if (counter.name.rfind(prefix, 0) == 0) {
        report.faults_fired += counter.value;
      }
    }
  }
  fault::FailpointRegistry::Global().DisarmAll();

  reader_stop.store(true, std::memory_order_relaxed);
  if (reader.joinable()) reader.join();
  report.reads = reads.load();
  report.read_failures = read_failures.load();
  report.retries = reader_retries.load();
  report.sheds = reader_sheds.load();

  if (options.with_replication) {
    auto_shipper->Stop();
    auto_poller->Stop();
    // Converge: one clean shipment, then poll until the follower has it.
    Result<replication::ShipmentReport> shipped = shipper->ShipNow();
    for (int attempt = 0; !shipped.ok() && attempt < 3; ++attempt) {
      shipped = shipper->ShipNow();
    }
    report.follower_caught_up = false;
    if (shipped.ok()) {
      for (int attempt = 0; attempt < 5; ++attempt) {
        Result<replication::PollResult> poll = follower->Poll();
        if (poll.ok() && poll->replay_lsn >= shipped->shipped_lsn) {
          report.follower_caught_up = true;
          break;
        }
        if (follower->state() == replication::FollowerState::kQuarantined) {
          break;
        }
        SleepUs(50 * 1000);
      }
    }
    report.follower_quarantined =
        follower->state() == replication::FollowerState::kQuarantined;
    if (report.follower_quarantined) {
      ++report.invariant_violations;
      note_violation("follower quarantined: " + follower->quarantine_code() +
                     " " + follower->quarantine_reason());
    } else if (!report.follower_caught_up) {
      ++report.invariant_violations;
      note_violation("follower failed to catch up after disarm");
    }
  }

  {
    auto lock = pause();
    analysis::DiagnosticBag bag = primary->Check();
    ++report.checks_run;
    if (bag.HasErrors()) {
      ++report.invariant_violations;
      note_violation("final check: " + bag.RenderText());
    }
  }
  if (server != nullptr) server->Shutdown();
  auto_poller.reset();
  auto_shipper.reset();
  follower.reset();
  shipper.reset();

  Status closed = primary->Close();
  if (!closed.ok()) {
    ++report.invariant_violations;
    note_violation("close: " + closed.ToString());
  }
  primary.reset();

  Result<analysis::DiskVerifyReport> disk =
      analysis::VerifyDiskArtifacts(primary_dir, analysis::DiskVerifyOptions{});
  report.disk_clean = disk.ok() && disk->Clean();
  if (!report.disk_clean) {
    ++report.invariant_violations;
    note_violation(disk.ok() ? "disk verifier: " + disk->diagnostics.RenderText()
                             : "disk verifier: " + disk.status().ToString());
  }
  return report;
}

}  // namespace workload
}  // namespace caddb

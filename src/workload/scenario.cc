#include "workload/scenario.h"

#include <random>

#include "core/paper_schemas.h"

namespace caddb {
namespace workload {

namespace {

/// Standard bore drilled into every interface: the fixed dimensions keep
/// the screwing arithmetic (s.Length = n.Length + sum(Bores.Length),
/// diameters ordered) satisfiable by construction.
constexpr int64_t kBoreDiameter = 9;
constexpr int64_t kBoreLength = 20;
constexpr int64_t kNutLength = 5;
constexpr int64_t kPartDiameter = 8;

Result<Surrogate> NewBore(Database* db, Surrogate owner, std::mt19937* rng) {
  CADDB_ASSIGN_OR_RETURN(Surrogate bore, db->CreateSubobject(owner, "Bores"));
  CADDB_RETURN_IF_ERROR(db->Set(bore, "Diameter", Value::Int(kBoreDiameter)));
  CADDB_RETURN_IF_ERROR(db->Set(bore, "Length", Value::Int(kBoreLength)));
  CADDB_RETURN_IF_ERROR(
      db->Set(bore, "Position",
              Value::Point(static_cast<int64_t>((*rng)() % 1000),
                           static_cast<int64_t>((*rng)() % 1000))));
  return bore;
}

}  // namespace

Result<SteelYard> GenerateSteelYard(Database* db, const SteelParams& params) {
  if (params.catalog_parts < 1 || params.girder_interfaces < 1 ||
      params.bores_per_interface < 1 || params.structures < 0 ||
      params.girders_per_structure < 1) {
    return InvalidArgument("steel params out of range");
  }
  std::mt19937 rng(params.seed);
  SteelYard out;

  // The standard-parts catalog. Each screwing uses exactly two bores, so a
  // consistent bolt is nut + 2 bores long.
  for (int i = 0; i < params.catalog_parts; ++i) {
    CADDB_ASSIGN_OR_RETURN(Surrogate bolt, db->CreateObject("BoltType"));
    CADDB_RETURN_IF_ERROR(
        db->Set(bolt, "Length", Value::Int(kNutLength + 2 * kBoreLength)));
    CADDB_RETURN_IF_ERROR(
        db->Set(bolt, "Diameter", Value::Int(kPartDiameter)));
    out.bolts.push_back(bolt);
    CADDB_ASSIGN_OR_RETURN(Surrogate nut, db->CreateObject("NutType"));
    CADDB_RETURN_IF_ERROR(db->Set(nut, "Length", Value::Int(kNutLength)));
    CADDB_RETURN_IF_ERROR(db->Set(nut, "Diameter", Value::Int(kPartDiameter)));
    out.nuts.push_back(nut);
  }

  // Interface libraries. Girder proportions respect the schema constraint
  // Length < 100 * Height * Width.
  for (int i = 0; i < params.girder_interfaces; ++i) {
    CADDB_ASSIGN_OR_RETURN(Surrogate iface,
                           db->CreateObject("GirderInterface"));
    const int64_t height = 10 + static_cast<int64_t>(rng() % 20);
    const int64_t width = 5 + static_cast<int64_t>(rng() % 10);
    const int64_t length =
        1 + static_cast<int64_t>(rng() % (100 * height * width / 2));
    CADDB_RETURN_IF_ERROR(db->Set(iface, "Length", Value::Int(length)));
    CADDB_RETURN_IF_ERROR(db->Set(iface, "Height", Value::Int(height)));
    CADDB_RETURN_IF_ERROR(db->Set(iface, "Width", Value::Int(width)));
    for (int b = 0; b < params.bores_per_interface; ++b) {
      CADDB_RETURN_IF_ERROR(NewBore(db, iface, &rng).status());
      ++out.bores;
    }
    out.girder_interfaces.push_back(iface);
  }
  for (int i = 0; i < params.plate_interfaces; ++i) {
    CADDB_ASSIGN_OR_RETURN(Surrogate iface, db->CreateObject("PlateInterface"));
    CADDB_RETURN_IF_ERROR(
        db->Set(iface, "Thickness",
                Value::Int(10 + static_cast<int64_t>(rng() % 30))));
    for (int b = 0; b < params.bores_per_interface; ++b) {
      CADDB_RETURN_IF_ERROR(NewBore(db, iface, &rng).status());
      ++out.bores;
    }
    out.plate_interfaces.push_back(iface);
  }

  // The yard: structures with member girders/plates bound to random
  // interfaces, plus screwings over the members' (inherited) bores.
  for (int s = 0; s < params.structures; ++s) {
    CADDB_ASSIGN_OR_RETURN(Surrogate wcs,
                           db->CreateObject("WeightCarrying_Structure"));
    CADDB_RETURN_IF_ERROR(
        db->Set(wcs, "Designer",
                Value::String("designer-" + std::to_string(rng() % 8))));
    CADDB_RETURN_IF_ERROR(
        db->Set(wcs, "Description",
                Value::String("structure-" + std::to_string(s))));
    std::vector<Surrogate> members;
    for (int g = 0; g < params.girders_per_structure; ++g) {
      CADDB_ASSIGN_OR_RETURN(Surrogate girder,
                             db->CreateSubobject(wcs, "Girders"));
      Surrogate iface =
          out.girder_interfaces[rng() % out.girder_interfaces.size()];
      CADDB_ASSIGN_OR_RETURN(Surrogate binding,
                             db->Bind(girder, iface, "AllOf_GirderIf"));
      (void)binding;
      members.push_back(girder);
    }
    for (int p = 0;
         p < params.plates_per_structure && !out.plate_interfaces.empty();
         ++p) {
      CADDB_ASSIGN_OR_RETURN(Surrogate plate,
                             db->CreateSubobject(wcs, "Plates"));
      Surrogate iface =
          out.plate_interfaces[rng() % out.plate_interfaces.size()];
      CADDB_ASSIGN_OR_RETURN(Surrogate binding,
                             db->Bind(plate, iface, "AllOf_PlateIf"));
      (void)binding;
      members.push_back(plate);
    }

    // Member bores, via the inheritance-resolved views — exactly what the
    // Screwings where-clause admits.
    std::vector<Surrogate> member_bores;
    for (Surrogate member : members) {
      CADDB_ASSIGN_OR_RETURN(std::vector<Surrogate> bores,
                             db->Subclass(member, "Bores"));
      member_bores.insert(member_bores.end(), bores.begin(), bores.end());
    }
    for (int w = 0;
         w < params.screwings_per_structure && member_bores.size() >= 2;
         ++w) {
      const size_t first = rng() % member_bores.size();
      size_t second = rng() % member_bores.size();
      if (second == first) second = (second + 1) % member_bores.size();
      CADDB_ASSIGN_OR_RETURN(
          Surrogate screwing,
          db->CreateSubrel(
              wcs, "Screwings",
              {{"Bores", {member_bores[first], member_bores[second]}}}));
      CADDB_RETURN_IF_ERROR(
          db->Set(screwing, "Strength",
                  Value::Int(50 + static_cast<int64_t>(rng() % 50))));
      const size_t part = rng() % out.bolts.size();
      CADDB_ASSIGN_OR_RETURN(Surrogate bolt_slot,
                             db->CreateSubobject(screwing, "Bolt"));
      CADDB_ASSIGN_OR_RETURN(
          Surrogate bolt_bind,
          db->Bind(bolt_slot, out.bolts[part], "AllOf_BoltType"));
      (void)bolt_bind;
      CADDB_ASSIGN_OR_RETURN(Surrogate nut_slot,
                             db->CreateSubobject(screwing, "Nut"));
      CADDB_ASSIGN_OR_RETURN(
          Surrogate nut_bind,
          db->Bind(nut_slot, out.nuts[part], "AllOf_NutType"));
      (void)nut_bind;
      out.screwings.push_back(screwing);
    }
    out.structures.push_back(wcs);
  }
  return out;
}

Result<SteelYard> GenerateSteelYardInto(Database* db,
                                        const SteelParams& params) {
  CADDB_RETURN_IF_ERROR(db->ExecuteDdl(schemas::kSteel));
  return GenerateSteelYard(db, params);
}

std::string DeepHierarchyDdl(int depth) {
  std::string ddl = "obj-type HL0 = attributes: A, B: integer; end HL0;\n";
  for (int i = 1; i <= depth; ++i) {
    const std::string prev = "HL" + std::to_string(i - 1);
    const std::string cur = "HL" + std::to_string(i);
    const std::string rel = "HR" + std::to_string(i);
    ddl += "inher-rel-type " + rel + " = transmitter: object-of-type " +
           prev + "; inheritor: object; inheriting: A; end " + rel + ";\n";
    ddl += "obj-type " + cur + " = inheritor-in: " + rel + "; attributes: C" +
           std::to_string(i) + ": integer; end " + cur + ";\n";
  }
  return ddl;
}

Result<Hierarchy> GenerateDeepHierarchy(Database* db,
                                        const HierarchyParams& params) {
  if (params.depth < 1 || params.chains < 1) {
    return InvalidArgument("hierarchy params out of range");
  }
  // Idempotent DDL: a second call on the same database (or a soak restart)
  // finds the types already declared.
  if (!db->catalog().FindObjectType("HL0")) {
    CADDB_RETURN_IF_ERROR(db->ExecuteDdl(DeepHierarchyDdl(params.depth)));
  }
  std::mt19937 rng(params.seed);
  Hierarchy out;
  for (int c = 0; c < params.chains; ++c) {
    std::vector<Surrogate> chain;
    for (int k = 0; k <= params.depth; ++k) {
      CADDB_ASSIGN_OR_RETURN(Surrogate node,
                             db->CreateObject("HL" + std::to_string(k)));
      chain.push_back(node);
    }
    const int64_t root_value = static_cast<int64_t>(rng() % 100000);
    CADDB_RETURN_IF_ERROR(db->Set(chain[0], "A", Value::Int(root_value)));
    CADDB_RETURN_IF_ERROR(db->Set(chain[0], "B", Value::Int(c)));
    for (int k = 1; k <= params.depth; ++k) {
      CADDB_ASSIGN_OR_RETURN(
          Surrogate binding,
          db->Bind(chain[k], chain[k - 1], "HR" + std::to_string(k)));
      (void)binding;
      CADDB_RETURN_IF_ERROR(
          db->Set(chain[k], "C" + std::to_string(k),
                  Value::Int(static_cast<int64_t>(rng() % 1000))));
    }
    out.chain_nodes.push_back(std::move(chain));
    out.root_values.push_back(root_value);
  }
  return out;
}

}  // namespace workload
}  // namespace caddb

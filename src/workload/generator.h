#ifndef CADDB_WORKLOAD_GENERATOR_H_
#define CADDB_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <random>
#include <vector>

#include "core/database.h"

namespace caddb {
namespace workload {

/// Parameters of a synthetic design workload: a library of gate interfaces
/// and a forest of composite implementations using them as components —
/// the population the paper's CAD scenarios imply but never quantify.
struct NetlistParams {
  uint32_t seed = 42;
  /// Interfaces in the shared library.
  int library_size = 8;
  /// Pins per interface (one OUT, rest IN).
  int pins_per_interface = 3;
  /// Composite implementations to build.
  int composites = 16;
  /// Component slots per composite (subgates bound to library interfaces).
  int components_per_composite = 4;
  /// Composition nesting depth: depth > 1 promotes earlier composites'
  /// interfaces into the candidate pool, creating part-of hierarchies.
  int depth = 2;
  /// Fraction (0-100) of component slots that bind to the single "hot"
  /// library interface — models heavily shared standard cells.
  int hot_share_percent = 25;
  /// Create wires between the composite's pins and component pins.
  bool wire_up = true;
};

/// The generated population, for benchmarks and stress tests to navigate.
struct Netlist {
  std::vector<Surrogate> library;     // library GateInterface objects
  Surrogate hot_interface;            // the most-shared interface
  std::vector<Surrogate> composites;  // GateImplementation objects
  std::vector<Surrogate> slots;       // all component subobjects
  size_t wires = 0;
};

/// Populates `db` (which must already hold the paper gate schemas — see
/// core/paper_schemas.h) with a random netlist. Deterministic per seed.
Result<Netlist> GenerateNetlist(Database* db, const NetlistParams& params);

/// Convenience: fresh database + schemas + netlist.
Result<Netlist> GenerateNetlistInto(Database* db, const NetlistParams& params);

}  // namespace workload
}  // namespace caddb

#endif  // CADDB_WORKLOAD_GENERATOR_H_

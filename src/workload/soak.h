#ifndef CADDB_WORKLOAD_SOAK_H_
#define CADDB_WORKLOAD_SOAK_H_

#include <cstdint>
#include <string>

#include "workload/scenario.h"

namespace caddb {
namespace workload {

/// Configuration of one soak run: a durable primary (plus, by default, a
/// net::Server serving it, a replication follower tailing it, and a wire
/// reader hammering the server through a RetryingClient), mutated by a
/// seeded op stream while a seeded fault schedule arms failpoints against
/// every layer. Two oracles watch the whole time:
///
///   invariant oracle     `caddb check` (schema + store analysis) during
///                        the run, replica-divergence/quarantine at the
///                        end, and the offline disk verifier after close;
///   differential oracle  a copy-based baseline database (the paper's
///                        section 2 strawman) maintained alongside every
///                        hierarchy mutation — primary reads resolved
///                        through value inheritance must equal the
///                        baseline's manually-refreshed copies.
///
/// The op stream depends only on the seed, never on fault timing, so a
/// failing run reproduces from its seed alone.
struct SoakOptions {
  /// Root directory; the run creates <dir>/primary and <dir>/replica.
  std::string dir;
  uint32_t seed = 1;
  /// Mutation ops to apply (the run's length in op terms).
  uint64_t ops = 2000;
  /// Wall-clock budget. 0 = run the ops as fast as possible; otherwise the
  /// op stream is paced to spread over roughly this long, and the run
  /// stops early when the budget is exhausted.
  uint64_t duration_ms = 0;
  /// Serve the primary over TCP and run a wire-reader thread against it.
  bool with_server = true;
  /// Ship to and poll a follower for the whole run.
  bool with_replication = true;
  /// Fault schedule: ";"-separated events `@<ms> arm <site> <spec>` /
  /// `@<ms> disarm <site>`. Empty = a safe seeded default schedule;
  /// "none" = no faults.
  std::string fault_schedule;
  /// Run the invariant oracle every this many ops (0 = only at the end).
  uint64_t check_every = 250;
  /// Publish a checkpoint every this many ops (0 = never during the run).
  uint64_t checkpoint_every = 500;
  int hierarchy_depth = 5;
  int hierarchy_chains = 3;
  SteelParams steel;
};

struct SoakReport {
  uint64_t ops_applied = 0;
  uint64_t op_failures = 0;
  uint64_t reads = 0;
  uint64_t read_failures = 0;
  uint64_t retries = 0;  ///< wire-reader reconnect/backoff retries
  uint64_t sheds = 0;    ///< wire-reader requests the server refused
  uint64_t checks_run = 0;
  uint64_t checkpoints = 0;
  uint64_t faults_armed = 0;
  uint64_t faults_fired = 0;
  uint64_t invariant_violations = 0;
  uint64_t differential_mismatches = 0;
  /// FNV-1a over the generated op stream — equal for equal seeds, fault
  /// schedule or not, so two runs are comparable by construction.
  uint64_t ops_hash = 0;
  bool follower_caught_up = true;
  bool follower_quarantined = false;
  bool disk_clean = true;
  /// First oracle complaint, verbatim (empty when none).
  std::string first_violation;

  bool ok() const {
    return invariant_violations == 0 && differential_mismatches == 0 &&
           !follower_quarantined && follower_caught_up && disk_clean;
  }
  std::string RenderText() const;
};

/// Runs one soak. The returned Status is about the harness itself (could
/// not open the primary, could not bind the server); oracle failures are
/// reported in the SoakReport, not as an error.
Result<SoakReport> RunSoak(const SoakOptions& options);

}  // namespace workload
}  // namespace caddb

#endif  // CADDB_WORKLOAD_SOAK_H_

#include "fault/failpoint.h"

#include <time.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace caddb {
namespace fault {

namespace {

std::string WithErrno(const std::string& msg, int err) {
  return msg + " (errno " + std::to_string(err) + ": " +
         std::strerror(err) + ")";
}

void RealSleep(uint64_t delay_us) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(delay_us / 1000000);
  ts.tv_nsec = static_cast<long>((delay_us % 1000000) * 1000);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// "50ms" / "2000us" / "1s" / bare number (us) → microseconds.
Result<uint64_t> ParseDuration(const std::string& text) {
  size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (...) {
    return InvalidArgument("bad duration '" + text + "'");
  }
  const std::string unit = text.substr(pos);
  if (unit.empty() || unit == "us") return static_cast<uint64_t>(value);
  if (unit == "ms") return static_cast<uint64_t>(value) * 1000;
  if (unit == "s") return static_cast<uint64_t>(value) * 1000000;
  return InvalidArgument("bad duration unit '" + unit + "' in '" + text +
                         "'");
}

Result<uint64_t> ParseUint(const std::string& text, const char* what) {
  try {
    size_t pos = 0;
    unsigned long long value = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return static_cast<uint64_t>(value);
  } catch (...) {
    return InvalidArgument(std::string("bad ") + what + " '" + text + "'");
  }
}

}  // namespace

const char* ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kOff:
      return "off";
    case ActionKind::kError:
      return "error";
    case ActionKind::kAbort:
      return "abort";
    case ActionKind::kDelay:
      return "delay";
    case ActionKind::kCut:
      return "cut";
    case ActionKind::kDrop:
      return "drop";
    case ActionKind::kTruncate:
      return "truncate";
    case ActionKind::kReset:
      return "reset";
    case ActionKind::kCorrupt:
      return "corrupt";
    case ActionKind::kDuplicate:
      return "duplicate";
    case ActionKind::kReorder:
      return "reorder";
    case ActionKind::kStall:
      return "stall";
  }
  return "?";
}

Result<ActionKind> ActionKindFromName(const std::string& name) {
  for (ActionKind kind :
       {ActionKind::kOff, ActionKind::kError, ActionKind::kAbort,
        ActionKind::kDelay, ActionKind::kCut, ActionKind::kDrop,
        ActionKind::kTruncate, ActionKind::kReset, ActionKind::kCorrupt,
        ActionKind::kDuplicate, ActionKind::kReorder, ActionKind::kStall}) {
    if (name == ActionKindName(kind)) return kind;
  }
  return InvalidArgument("unknown failpoint action '" + name + "'");
}

Result<FailpointSpec> FailpointSpec::Parse(
    const std::vector<std::string>& tokens) {
  if (tokens.empty()) {
    return InvalidArgument("empty failpoint spec (expected an action kind)");
  }
  FailpointSpec spec;
  // First token: kind, optionally "kind=value".
  {
    const std::string& tok = tokens[0];
    const size_t eq = tok.find('=');
    const std::string kind_name = tok.substr(0, eq);
    CADDB_ASSIGN_OR_RETURN(spec.kind, ActionKindFromName(kind_name));
    const std::string value =
        eq == std::string::npos ? "" : tok.substr(eq + 1);
    if (spec.kind == ActionKind::kDelay) {
      if (value.empty()) {
        return InvalidArgument("delay needs a duration (delay=50ms)");
      }
      CADDB_ASSIGN_OR_RETURN(spec.delay_us, ParseDuration(value));
    } else if (spec.kind == ActionKind::kCut) {
      if (value.empty()) {
        return InvalidArgument("cut needs a byte budget (cut=4096)");
      }
      CADDB_ASSIGN_OR_RETURN(spec.arg, ParseUint(value, "cut budget"));
    } else if (spec.kind == ActionKind::kError) {
      spec.message = value;  // optional
    } else if (!value.empty()) {
      return InvalidArgument(std::string("action '") +
                             ActionKindName(spec.kind) + "' takes no value");
    }
  }
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const size_t eq = tok.find('=');
    if (tok.rfind("--", 0) != 0 || eq == std::string::npos) {
      return InvalidArgument("bad failpoint modifier '" + tok +
                             "' (expected --skip/--every/--times/--p/--seed"
                             "=value)");
    }
    const std::string key = tok.substr(2, eq - 2);
    const std::string value = tok.substr(eq + 1);
    if (key == "skip") {
      CADDB_ASSIGN_OR_RETURN(spec.skip, ParseUint(value, "--skip"));
    } else if (key == "every") {
      CADDB_ASSIGN_OR_RETURN(spec.every, ParseUint(value, "--every"));
      if (spec.every == 0) return InvalidArgument("--every must be >= 1");
    } else if (key == "times") {
      CADDB_ASSIGN_OR_RETURN(spec.times, ParseUint(value, "--times"));
    } else if (key == "p") {
      try {
        spec.probability = std::stod(value);
      } catch (...) {
        return InvalidArgument("bad --p '" + value + "'");
      }
      if (spec.probability < 0.0 || spec.probability > 1.0) {
        return InvalidArgument("--p must be within [0, 1]");
      }
    } else if (key == "seed") {
      CADDB_ASSIGN_OR_RETURN(uint64_t seed, ParseUint(value, "--seed"));
      spec.seed = static_cast<uint32_t>(seed);
    } else {
      return InvalidArgument("unknown failpoint modifier '--" + key + "'");
    }
  }
  return spec;
}

Result<FailpointSpec> FailpointSpec::ParseString(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return Parse(tokens);
}

std::string FailpointSpec::ToString() const {
  std::string out = ActionKindName(kind);
  if (kind == ActionKind::kDelay) {
    out += "=" + std::to_string(delay_us) + "us";
  } else if (kind == ActionKind::kCut) {
    out += "=" + std::to_string(arg);
  } else if (kind == ActionKind::kError && !message.empty()) {
    out += "=" + message;
  }
  if (skip != 0) out += " --skip=" + std::to_string(skip);
  if (every != 1) out += " --every=" + std::to_string(every);
  if (times != 0) out += " --times=" + std::to_string(times);
  if (probability < 1.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " --p=%g", probability);
    out += buf;
    out += " --seed=" + std::to_string(seed);
  }
  return out;
}

FailpointRegistry::FailpointRegistry() {
  constexpr uint32_t kGeneric = KindBit(ActionKind::kError) |
                                KindBit(ActionKind::kAbort) |
                                KindBit(ActionKind::kDelay);
  constexpr uint32_t kNetWrite =
      KindBit(ActionKind::kDrop) | KindBit(ActionKind::kTruncate) |
      KindBit(ActionKind::kReset) | KindBit(ActionKind::kDelay) |
      KindBit(ActionKind::kError);
  constexpr uint32_t kNetRead =
      KindBit(ActionKind::kDrop) | KindBit(ActionKind::kReset) |
      KindBit(ActionKind::kDelay) | KindBit(ActionKind::kError);
  constexpr uint32_t kShip =
      KindBit(ActionKind::kDrop) | KindBit(ActionKind::kTruncate) |
      KindBit(ActionKind::kDuplicate) | KindBit(ActionKind::kReorder) |
      KindBit(ActionKind::kCorrupt) | KindBit(ActionKind::kStall) |
      KindBit(ActionKind::kDelay) | KindBit(ActionKind::kError);
  (void)Declare(sites::kWalAppendPreFsync,
                "before the WAL file fsync that makes a commit durable",
                kGeneric);
  (void)Declare(sites::kWalFileCut,
                "byte budget for newly opened WAL segments: appends beyond "
                "`cut=N` bytes are silently dropped and fsync lies "
                "(simulated crash cut)",
                KindBit(ActionKind::kCut));
  (void)Declare(sites::kWalCheckpointPublish,
                "before a checkpoint file is atomically published",
                kGeneric);
  (void)Declare(sites::kStoragePageWrite,
                "before a page image is written to pages.db", kGeneric);
  (void)Declare(sites::kStoragePageFlush,
                "before pages.db is fsynced", kGeneric);
  (void)Declare(sites::kReplicationShip,
                "per ship attempt: the shipper's fault matrix "
                "(drop/truncate/duplicate/reorder/corrupt/stall)",
                kShip);
  (void)Declare(sites::kReplicationShipManifest,
                "before the replica MANIFEST is atomically published",
                kGeneric);
  (void)Declare(sites::kNetSessionWrite,
                "server-side socket writes (drop/truncate/reset mid-frame)",
                kNetWrite);
  (void)Declare(sites::kNetSessionRead,
                "server-side socket reads (slow-loris delay, fake EOF, "
                "reset)",
                kNetRead);
  (void)Declare(sites::kNetClientWrite,
                "client-side socket writes (drop/truncate/reset mid-frame)",
                kNetWrite);
  (void)Declare(sites::kNetClientRead,
                "client-side socket reads (slow-loris delay, fake EOF, "
                "reset)",
                kNetRead);
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* global = new FailpointRegistry();
  return *global;
}

Status FailpointRegistry::Declare(const std::string& site,
                                  const std::string& help,
                                  uint32_t supported_kinds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) {
    if (it->second.supported == supported_kinds) return OkStatus();
    return AlreadyExists("failpoint site '" + site +
                         "' already declared with a different kind set");
  }
  Site& s = sites_[site];
  s.help = help;
  s.supported = supported_kinds;
  return OkStatus();
}

Status FailpointRegistry::Arm(const std::string& site,
                              const FailpointSpec& spec,
                              obs::MetricsRegistry* metrics,
                              obs::EventLog* log) {
  if (spec.kind == ActionKind::kOff) return Disarm(site);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return NotFound(WithErrno(
        "fault arm '" + site + "': unknown failpoint site", ENOENT));
  }
  Site& s = it->second;
  if ((s.supported & KindBit(spec.kind)) == 0) {
    return InvalidArgument(WithErrno(
        "fault arm '" + site + "': action '" +
            ActionKindName(spec.kind) + "' is not supported at this site",
        EINVAL));
  }
  if (!s.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.spec = spec;
  s.hits = 0;
  s.fired = 0;
  s.rng.seed(spec.seed);
  s.fired_counter =
      metrics == nullptr
          ? nullptr
          : metrics->GetCounter(
                "caddb_fault_fired_total{site=\"" + site + "\"}",
                "Failpoint fires by site");
  s.event_log = log;
  return OkStatus();
}

Status FailpointRegistry::ArmFromString(const std::string& directive,
                                        obs::MetricsRegistry* metrics,
                                        obs::EventLog* log) {
  std::vector<std::string> tokens;
  std::istringstream in(directive);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  if (tokens.empty()) {
    return InvalidArgument("empty fault directive (expected '<site> "
                           "<action> [modifiers]')");
  }
  const std::string site = tokens[0];
  tokens.erase(tokens.begin());
  Result<FailpointSpec> spec = FailpointSpec::Parse(tokens);
  if (!spec.ok()) {
    return InvalidArgument(WithErrno(
        "fault arm '" + site + "': " + spec.status().message(), EINVAL));
  }
  return Arm(site, *spec, metrics, log);
}

Status FailpointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return NotFound(WithErrno(
        "fault disarm '" + site + "': unknown failpoint site", ENOENT));
  }
  Site& s = it->second;
  if (s.armed) {
    s.armed = false;
    s.fired_counter = nullptr;
    s.event_log = nullptr;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return OkStatus();
}

size_t FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t disarmed = 0;
  for (auto& [name, s] : sites_) {
    if (s.armed) {
      s.armed = false;
      s.fired_counter = nullptr;
      s.event_log = nullptr;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
      ++disarmed;
    }
  }
  return disarmed;
}

std::vector<SiteInfo> FailpointRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteInfo> out;
  out.reserve(sites_.size());
  for (const auto& [name, s] : sites_) {
    SiteInfo info;
    info.name = name;
    info.help = s.help;
    info.armed = s.armed;
    info.spec = s.armed ? s.spec.ToString() : "off";
    info.hits = s.hits;
    info.fired = s.fired;
    out.push_back(std::move(info));
  }
  return out;
}

bool FailpointRegistry::Hit(const std::string& site, FiredAction* out) {
  // Captured under mu_, emitted after — the log sink may do file I/O and
  // Hit() promises not to dawdle while holding the registry lock.
  obs::EventLog* fire_log = nullptr;
  uint64_t fire_hit = 0, fire_no = 0;
  std::string fire_spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.armed) return false;
    Site& s = it->second;
    const FailpointSpec& spec = s.spec;
    ++s.hits;
    if (s.hits <= spec.skip) return false;
    const uint64_t eligible = s.hits - spec.skip;
    if ((eligible - 1) % spec.every != 0) return false;
    if (spec.times != 0 && s.fired >= spec.times) return false;
    if (spec.probability < 1.0) {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      if (uniform(s.rng) >= spec.probability) return false;
    }
    ++s.fired;
    if (s.fired_counter != nullptr) s.fired_counter->Increment();
    if (out != nullptr) {
      out->kind = spec.kind;
      out->delay_us = spec.delay_us;
      out->arg = spec.arg;
      out->message = spec.message;
    }
    if (s.event_log != nullptr &&
        s.event_log->ShouldLog(obs::LogLevel::kWarn)) {
      fire_log = s.event_log;
      fire_hit = s.hits;
      fire_no = s.fired;
      fire_spec = spec.ToString();
    }
  }
  if (fire_log != nullptr) {
    fire_log->Log(obs::LogLevel::kWarn, "fault",
                  "failpoint " + site + " fired (hit " +
                      std::to_string(fire_hit) + ", fire " +
                      std::to_string(fire_no) + "): " + fire_spec);
  }
  return true;
}

Status FailpointRegistry::Inject(const std::string& site) {
  FiredAction action;
  if (!Hit(site, &action)) return OkStatus();
  switch (action.kind) {
    case ActionKind::kDelay:
      SleepFor(action.delay_us);
      return OkStatus();
    case ActionKind::kAbort:
      std::fprintf(stderr, "failpoint %s: injected abort\n", site.c_str());
      std::fflush(stderr);
      std::abort();
    default: {
      std::string msg = "failpoint " + site + ": injected failure";
      if (!action.message.empty()) msg += ": " + action.message;
      return Unavailable(std::move(msg));
    }
  }
}

void FailpointRegistry::set_sleeper(std::function<void(uint64_t)> sleeper) {
  std::lock_guard<std::mutex> lock(mu_);
  sleeper_ = std::move(sleeper);
}

void FailpointRegistry::SleepFor(uint64_t delay_us) {
  std::function<void(uint64_t)> sleeper;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sleeper = sleeper_;
  }
  if (sleeper) {
    sleeper(delay_us);
  } else {
    RealSleep(delay_us);
  }
}

}  // namespace fault
}  // namespace caddb

#ifndef CADDB_FAULT_FAILPOINT_H_
#define CADDB_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace caddb {
namespace fault {

/// What an armed failpoint does when it fires. A site declares the subset
/// of kinds that make sense for it (arming an unsupported kind is an
/// InvalidArgument naming the site); the generic kinds are interpreted by
/// Inject(), the domain kinds by the subsystem that owns the site:
///
///   generic      kError (return a Status), kAbort (std::abort), kDelay
///   byte budget  kCut (wal.file.cut: bytes beyond `arg` silently dropped)
///   network      kDrop / kTruncate / kReset (sockets)
///   replication  kDrop / kTruncate / kDuplicate / kReorder / kCorrupt /
///                kStall (the shipper's per-attempt fault matrix)
enum class ActionKind {
  kOff,
  kError,
  kAbort,
  kDelay,
  kCut,
  kDrop,
  kTruncate,
  kReset,
  kCorrupt,
  kDuplicate,
  kReorder,
  kStall,
};

const char* ActionKindName(ActionKind kind);
Result<ActionKind> ActionKindFromName(const std::string& name);

/// Bitmask helpers for a site's supported-kind set.
constexpr uint32_t KindBit(ActionKind kind) {
  return 1u << static_cast<uint32_t>(kind);
}

/// An armed trigger: the action plus when it fires. The trigger walks the
/// site's hit stream: the first `skip` hits pass through, then every
/// `every`-th eligible hit is a candidate, each candidate fires with
/// `probability` (seeded RNG, deterministic per arm), and after `times`
/// fires (0 = unlimited) the spec goes quiet.
struct FailpointSpec {
  ActionKind kind = ActionKind::kOff;
  uint64_t delay_us = 0;    ///< kDelay: how long to stall.
  uint64_t arg = 0;         ///< kCut: byte budget. Other kinds: unused.
  std::string message;      ///< kError: Status message override.

  uint64_t skip = 0;
  uint64_t every = 1;
  uint64_t times = 0;
  double probability = 1.0;
  uint32_t seed = 1;

  /// Parses the shell token form: a kind token (`error[=msg]`, `abort`,
  /// `delay=50ms|2000us|1s`, `cut=4096`, `drop`, `truncate`, `reset`,
  /// `corrupt`, `duplicate`, `reorder`, `stall`) followed by optional
  /// `--skip=N --every=N --times=N --p=F --seed=S` modifiers.
  static Result<FailpointSpec> Parse(const std::vector<std::string>& tokens);
  /// Like Parse, on a whitespace-split string ("delay=2ms --every=3").
  static Result<FailpointSpec> ParseString(const std::string& text);

  /// Canonical round-trippable form (defaults omitted).
  std::string ToString() const;
};

/// What Hit() reports when a site fires.
struct FiredAction {
  ActionKind kind = ActionKind::kOff;
  uint64_t delay_us = 0;
  uint64_t arg = 0;
  std::string message;
};

/// One row of FailpointRegistry::List().
struct SiteInfo {
  std::string name;
  std::string help;
  bool armed = false;
  std::string spec;      ///< FailpointSpec::ToString() when armed, "off".
  uint64_t hits = 0;     ///< Evaluations since last arm.
  uint64_t fired = 0;    ///< Fires since last arm.
};

/// Process-wide registry of named failpoint sites. Subsystems consult
/// their sites inline (`fault::Inject("wal.append.pre_fsync")` or
/// `Hit()` for domain-specific kinds); operators arm them at runtime via
/// the shell's `fault arm` verb — locally or over the wire.
///
/// Concurrency: the disarmed fast path is one relaxed atomic load (no
/// lock, no map lookup); Evaluate/arm/disarm serialize on a mutex. Site
/// entries are never erased, so `List()` order is stable. Hit() never
/// sleeps or aborts while holding the lock — Inject() acts after
/// evaluation. The sleeper is injectable for tests.
class FailpointRegistry {
 public:
  /// A fresh registry with the built-in site table declared (unit tests
  /// construct their own; production code uses Global()).
  FailpointRegistry();
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  static FailpointRegistry& Global();

  /// Declares a site. Idempotent for an identical re-declare.
  Status Declare(const std::string& site, const std::string& help,
                 uint32_t supported_kinds);

  /// Arms `site` with `spec`, resetting its hit/fired counters. When
  /// `metrics` is non-null the site exports its fire count as the counter
  /// `caddb_fault_fired_total{site="<site>"}` in that registry (which must
  /// outlive the armed spec — disarm before tearing the registry down).
  /// When `log` is non-null every fire additionally emits a kWarn event
  /// ("fault" subsystem) naming the site, the firing hit, and the armed
  /// spec, so metric spikes can be matched to the exact injections that
  /// caused them. Errors name the failing site and carry an errno:
  /// unknown site → ENOENT, unsupported or malformed spec → EINVAL.
  Status Arm(const std::string& site, const FailpointSpec& spec,
             obs::MetricsRegistry* metrics = nullptr,
             obs::EventLog* log = nullptr);

  /// Arm() on "<site> <spec tokens...>" in one string.
  Status ArmFromString(const std::string& directive,
                       obs::MetricsRegistry* metrics = nullptr,
                       obs::EventLog* log = nullptr);

  /// Disarms `site` (unknown site → NotFound naming it, with ENOENT).
  Status Disarm(const std::string& site);
  /// Disarms every site and drops metric bindings. Returns how many were
  /// armed.
  size_t DisarmAll();

  std::vector<SiteInfo> List() const;

  bool any_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates one hit of `site`. Returns true when the site fires and
  /// fills `*out`; counts hits/fires and bumps the bound metric. Unknown
  /// or disarmed sites are a cheap false. Performs no action itself.
  bool Hit(const std::string& site, FiredAction* out);

  /// Hit() plus the generic actions: kError returns kUnavailable with the
  /// site name (and spec message, if any), kAbort writes the site to
  /// stderr and aborts, kDelay sleeps via the sleeper and returns OK.
  /// Domain kinds (cut/drop/...) at a generic call site degrade to
  /// kError — arm validation normally prevents that.
  Status Inject(const std::string& site);

  /// Replaces the delay sleeper (tests). Null restores the real one.
  void set_sleeper(std::function<void(uint64_t)> sleeper);
  /// Sleeps `delay_us` via the current sleeper (used by subsystems that
  /// handle kDelay themselves, e.g. sockets).
  void SleepFor(uint64_t delay_us);

 private:
  struct Site {
    std::string help;
    uint32_t supported = 0;
    bool armed = false;
    FailpointSpec spec;
    uint64_t hits = 0;
    uint64_t fired = 0;
    std::mt19937 rng;
    obs::Counter* fired_counter = nullptr;  // null when no metrics bound
    obs::EventLog* event_log = nullptr;     // null when no log bound
  };

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
  std::atomic<uint64_t> armed_count_{0};
  std::function<void(uint64_t)> sleeper_;  // null = real nanosleep
};

/// The canonical site table. Subsystems reference these constants; the
/// registry declares them (with their supported-kind sets) on
/// construction.
namespace sites {
inline constexpr char kWalAppendPreFsync[] = "wal.append.pre_fsync";
inline constexpr char kWalFileCut[] = "wal.file.cut";
inline constexpr char kWalCheckpointPublish[] = "wal.checkpoint.publish";
inline constexpr char kStoragePageWrite[] = "storage.page.write";
inline constexpr char kStoragePageFlush[] = "storage.page.flush";
inline constexpr char kReplicationShip[] = "replication.ship";
inline constexpr char kReplicationShipManifest[] =
    "replication.ship.manifest";
inline constexpr char kNetSessionWrite[] = "net.session.write";
inline constexpr char kNetSessionRead[] = "net.session.read";
inline constexpr char kNetClientWrite[] = "net.client.write";
inline constexpr char kNetClientRead[] = "net.client.read";
}  // namespace sites

/// Convenience wrappers over Global() with the one-atomic-load fast path
/// inlined, cheap enough for WAL appends and socket I/O.
inline bool Hit(const std::string& site, FiredAction* out) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  if (!reg.any_armed()) return false;
  return reg.Hit(site, out);
}

inline Status Inject(const std::string& site) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  if (!reg.any_armed()) return OkStatus();
  return reg.Inject(site);
}

}  // namespace fault
}  // namespace caddb

#endif  // CADDB_FAULT_FAILPOINT_H_

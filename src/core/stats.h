#ifndef CADDB_CORE_STATS_H_
#define CADDB_CORE_STATS_H_

#include <map>
#include <string>

#include "core/database.h"
#include "obs/metrics.h"

namespace caddb {

/// Point-in-time introspection over a database: object population per type
/// and kind, containment/binding structure, notification backlog. Used by
/// the examples' final reports and by operational tooling.
struct DatabaseStats {
  size_t total_objects = 0;
  size_t plain_objects = 0;
  size_t relationship_objects = 0;
  size_t inher_rel_objects = 0;
  size_t subobjects = 0;
  size_t top_level_objects = 0;
  size_t bound_inheritors = 0;
  size_t classes = 0;
  size_t object_types = 0;
  size_t rel_types = 0;
  size_t inher_rel_types = 0;
  size_t domains = 0;
  size_t pending_notifications = 0;
  std::map<std::string, size_t> per_type;

  // Resolution-cache telemetry: the inheritance manager's memoization cache
  // (mode + hit/miss/invalidation counters + live entries) and the catalog's
  // effective-schema cache.
  std::string cache_mode;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  size_t cache_entries = 0;
  uint64_t schema_cache_hits = 0;
  uint64_t schema_cache_misses = 0;

  // Analyzer telemetry: eager DDL validation is memoized on the catalog's
  // schema epoch, so repeated statements against an unchanged schema skip the
  // full AnalyzeSchema pass.
  uint64_t schema_analyses_run = 0;
  uint64_t schema_analyses_skipped = 0;

  // Replication telemetry (meaningful only when is_replica: the database is
  // the read-only product of a replication::Follower).
  bool is_replica = false;
  std::string replica_state;
  uint64_t replica_generation = 0;
  uint64_t replica_manifest_seq = 0;
  uint64_t replay_lsn = 0;
  uint64_t shipped_lsn = 0;
  uint64_t replica_lag = 0;

  // Point-in-time copy of the database's metrics registry (every counter,
  // gauge and histogram the subsystems registered). ToString leaves it out
  // — the human report stays the curated summary above — but ToJson emits
  // it in full, so `stats --format=json` is a superset of `metrics`.
  obs::MetricsSnapshot metrics;

  static DatabaseStats Collect(const Database& db);

  /// Multi-line human-readable report.
  std::string ToString() const;

  /// The whole report as one JSON object, metrics snapshot included
  /// (same renderer the shell's `metrics --format=json` uses).
  std::string ToJson() const;
};

}  // namespace caddb

#endif  // CADDB_CORE_STATS_H_

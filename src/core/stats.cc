#include "core/stats.h"

#include "util/string_util.h"

namespace caddb {

DatabaseStats DatabaseStats::Collect(const Database& db) {
  DatabaseStats stats;
  const ObjectStore& store = db.store();
  for (Surrogate s : store.AllObjects()) {
    Result<const DbObject*> obj = store.Get(s);
    if (!obj.ok()) continue;
    ++stats.total_objects;
    ++stats.per_type[(*obj)->type_name()];
    switch ((*obj)->kind()) {
      case ObjKind::kObject:
        ++stats.plain_objects;
        break;
      case ObjKind::kRelationship:
        ++stats.relationship_objects;
        break;
      case ObjKind::kInherRel:
        ++stats.inher_rel_objects;
        break;
    }
    if ((*obj)->IsSubobject()) {
      ++stats.subobjects;
    } else {
      ++stats.top_level_objects;
    }
    if ((*obj)->bound_inher_rel().valid()) {
      ++stats.bound_inheritors;
    }
    if ((*obj)->kind() == ObjKind::kInherRel) {
      stats.pending_notifications += db.notifications().PendingFor(s).size();
    }
  }
  stats.classes = store.ClassNames().size();
  stats.object_types = db.catalog().ObjectTypeNames().size();
  stats.rel_types = db.catalog().RelTypeNames().size();
  stats.inher_rel_types = db.catalog().InherRelTypeNames().size();
  stats.domains = db.catalog().DomainNames().size();
  return stats;
}

std::string DatabaseStats::ToString() const {
  std::string out;
  out += "objects:          " +
         FormatWithCommas(static_cast<int64_t>(total_objects)) + " (" +
         std::to_string(plain_objects) + " plain, " +
         std::to_string(relationship_objects) + " relationships, " +
         std::to_string(inher_rel_objects) + " inheritance relationships)\n";
  out += "containment:      " + std::to_string(top_level_objects) +
         " top-level, " + std::to_string(subobjects) + " subobjects\n";
  out += "bound inheritors: " + std::to_string(bound_inheritors) + "\n";
  out += "pending changes:  " + std::to_string(pending_notifications) + "\n";
  out += "schema:           " + std::to_string(object_types) +
         " object types, " + std::to_string(rel_types) + " rel types, " +
         std::to_string(inher_rel_types) + " inher-rel types, " +
         std::to_string(domains) + " domains, " + std::to_string(classes) +
         " classes\n";
  out += "population by type:\n";
  for (const auto& [type, count] : per_type) {
    out += "  " + type + ": " + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace caddb

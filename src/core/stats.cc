#include "core/stats.h"

#include "obs/exposition.h"
#include "util/json_writer.h"
#include "util/string_util.h"

namespace caddb {

DatabaseStats DatabaseStats::Collect(const Database& db) {
  DatabaseStats stats;
  const ObjectStore& store = db.store();
  for (Surrogate s : store.AllObjects()) {
    Result<const DbObject*> obj = store.Get(s);
    if (!obj.ok()) continue;
    ++stats.total_objects;
    ++stats.per_type[(*obj)->type_name()];
    switch ((*obj)->kind()) {
      case ObjKind::kObject:
        ++stats.plain_objects;
        break;
      case ObjKind::kRelationship:
        ++stats.relationship_objects;
        break;
      case ObjKind::kInherRel:
        ++stats.inher_rel_objects;
        break;
    }
    if ((*obj)->IsSubobject()) {
      ++stats.subobjects;
    } else {
      ++stats.top_level_objects;
    }
    if ((*obj)->bound_inher_rel().valid()) {
      ++stats.bound_inheritors;
    }
    if ((*obj)->kind() == ObjKind::kInherRel) {
      stats.pending_notifications += db.notifications().PendingFor(s).size();
    }
  }
  const InheritanceManager& inheritance = db.inheritance();
  stats.cache_mode = CacheModeName(inheritance.cache_mode());
  stats.cache_hits = inheritance.cache_hits();
  stats.cache_misses = inheritance.cache_misses();
  stats.cache_invalidations = inheritance.cache_invalidations();
  stats.cache_entries = inheritance.cache_entries();
  stats.schema_cache_hits = db.catalog().schema_cache_hits();
  stats.schema_cache_misses = db.catalog().schema_cache_misses();
  stats.schema_analyses_run = db.schema_analyses_run();
  stats.schema_analyses_skipped = db.schema_analyses_skipped();
  const ReplicaInfo& replica = db.replica_info();
  stats.is_replica = replica.is_replica;
  stats.replica_state = replica.state;
  stats.replica_generation = replica.generation;
  stats.replica_manifest_seq = replica.manifest_seq;
  stats.replay_lsn = replica.replay_lsn;
  stats.shipped_lsn = replica.shipped_lsn;
  stats.replica_lag = replica.lag();
  stats.classes = store.ClassNames().size();
  stats.object_types = db.catalog().ObjectTypeNames().size();
  stats.rel_types = db.catalog().RelTypeNames().size();
  stats.inher_rel_types = db.catalog().InherRelTypeNames().size();
  stats.domains = db.catalog().DomainNames().size();
  stats.metrics = db.observability()->metrics.Snapshot();
  return stats;
}

std::string DatabaseStats::ToString() const {
  std::string out;
  out += "objects:          " +
         FormatWithCommas(static_cast<int64_t>(total_objects)) + " (" +
         std::to_string(plain_objects) + " plain, " +
         std::to_string(relationship_objects) + " relationships, " +
         std::to_string(inher_rel_objects) + " inheritance relationships)\n";
  out += "containment:      " + std::to_string(top_level_objects) +
         " top-level, " + std::to_string(subobjects) + " subobjects\n";
  out += "bound inheritors: " + std::to_string(bound_inheritors) + "\n";
  out += "pending changes:  " + std::to_string(pending_notifications) + "\n";
  out += "resolution cache: " + cache_mode + ", " +
         std::to_string(cache_entries) + " entries; " +
         std::to_string(cache_hits) + " hits, " +
         std::to_string(cache_misses) + " misses, " +
         std::to_string(cache_invalidations) + " invalidations\n";
  out += "schema cache:     " + std::to_string(schema_cache_hits) +
         " hits, " + std::to_string(schema_cache_misses) + " misses\n";
  out += "schema analyses:  " + std::to_string(schema_analyses_run) +
         " run, " + std::to_string(schema_analyses_skipped) +
         " skipped (epoch unchanged)\n";
  out += "schema:           " + std::to_string(object_types) +
         " object types, " + std::to_string(rel_types) + " rel types, " +
         std::to_string(inher_rel_types) + " inher-rel types, " +
         std::to_string(domains) + " domains, " + std::to_string(classes) +
         " classes\n";
  if (is_replica) {
    out += "replica:          " + replica_state + "; generation " +
           std::to_string(replica_generation) + ", manifest seq " +
           std::to_string(replica_manifest_seq) + ", replay lsn " +
           std::to_string(replay_lsn) + " / shipped lsn " +
           std::to_string(shipped_lsn) + " (lag " +
           std::to_string(replica_lag) + ")\n";
  }
  out += "population by type:\n";
  for (const auto& [type, count] : per_type) {
    out += "  " + type + ": " + std::to_string(count) + "\n";
  }
  return out;
}

std::string DatabaseStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("objects");
  w.BeginObject();
  w.Field("total", static_cast<uint64_t>(total_objects));
  w.Field("plain", static_cast<uint64_t>(plain_objects));
  w.Field("relationships", static_cast<uint64_t>(relationship_objects));
  w.Field("inher_rels", static_cast<uint64_t>(inher_rel_objects));
  w.Field("top_level", static_cast<uint64_t>(top_level_objects));
  w.Field("subobjects", static_cast<uint64_t>(subobjects));
  w.Field("bound_inheritors", static_cast<uint64_t>(bound_inheritors));
  w.EndObject();
  w.Key("per_type");
  w.BeginObject();
  for (const auto& [type, count] : per_type) {
    w.Field(type, static_cast<uint64_t>(count));
  }
  w.EndObject();
  w.Field("pending_notifications",
          static_cast<uint64_t>(pending_notifications));
  w.Key("resolution_cache");
  w.BeginObject();
  w.Field("mode", cache_mode);
  w.Field("entries", static_cast<uint64_t>(cache_entries));
  w.Field("hits", cache_hits);
  w.Field("misses", cache_misses);
  w.Field("invalidations", cache_invalidations);
  w.EndObject();
  w.Key("schema_cache");
  w.BeginObject();
  w.Field("hits", schema_cache_hits);
  w.Field("misses", schema_cache_misses);
  w.EndObject();
  w.Key("schema_analyses");
  w.BeginObject();
  w.Field("run", schema_analyses_run);
  w.Field("skipped", schema_analyses_skipped);
  w.EndObject();
  w.Key("schema");
  w.BeginObject();
  w.Field("object_types", static_cast<uint64_t>(object_types));
  w.Field("rel_types", static_cast<uint64_t>(rel_types));
  w.Field("inher_rel_types", static_cast<uint64_t>(inher_rel_types));
  w.Field("domains", static_cast<uint64_t>(domains));
  w.Field("classes", static_cast<uint64_t>(classes));
  w.EndObject();
  if (is_replica) {
    w.Key("replica");
    w.BeginObject();
    w.Field("state", replica_state);
    w.Field("generation", replica_generation);
    w.Field("manifest_seq", replica_manifest_seq);
    w.Field("replay_lsn", replay_lsn);
    w.Field("shipped_lsn", shipped_lsn);
    w.Field("lag", replica_lag);
    w.EndObject();
  }
  w.Key("metrics");
  obs::WriteMetricsJson(metrics, &w);
  w.EndObject();
  return w.str();
}

}  // namespace caddb

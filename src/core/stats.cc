#include "core/stats.h"

#include "util/string_util.h"

namespace caddb {

DatabaseStats DatabaseStats::Collect(const Database& db) {
  DatabaseStats stats;
  const ObjectStore& store = db.store();
  for (Surrogate s : store.AllObjects()) {
    Result<const DbObject*> obj = store.Get(s);
    if (!obj.ok()) continue;
    ++stats.total_objects;
    ++stats.per_type[(*obj)->type_name()];
    switch ((*obj)->kind()) {
      case ObjKind::kObject:
        ++stats.plain_objects;
        break;
      case ObjKind::kRelationship:
        ++stats.relationship_objects;
        break;
      case ObjKind::kInherRel:
        ++stats.inher_rel_objects;
        break;
    }
    if ((*obj)->IsSubobject()) {
      ++stats.subobjects;
    } else {
      ++stats.top_level_objects;
    }
    if ((*obj)->bound_inher_rel().valid()) {
      ++stats.bound_inheritors;
    }
    if ((*obj)->kind() == ObjKind::kInherRel) {
      stats.pending_notifications += db.notifications().PendingFor(s).size();
    }
  }
  const InheritanceManager& inheritance = db.inheritance();
  stats.cache_mode = CacheModeName(inheritance.cache_mode());
  stats.cache_hits = inheritance.cache_hits();
  stats.cache_misses = inheritance.cache_misses();
  stats.cache_invalidations = inheritance.cache_invalidations();
  stats.cache_entries = inheritance.cache_entries();
  stats.schema_cache_hits = db.catalog().schema_cache_hits();
  stats.schema_cache_misses = db.catalog().schema_cache_misses();
  stats.schema_analyses_run = db.schema_analyses_run();
  stats.schema_analyses_skipped = db.schema_analyses_skipped();
  const ReplicaInfo& replica = db.replica_info();
  stats.is_replica = replica.is_replica;
  stats.replica_state = replica.state;
  stats.replica_generation = replica.generation;
  stats.replica_manifest_seq = replica.manifest_seq;
  stats.replay_lsn = replica.replay_lsn;
  stats.shipped_lsn = replica.shipped_lsn;
  stats.replica_lag = replica.lag();
  stats.classes = store.ClassNames().size();
  stats.object_types = db.catalog().ObjectTypeNames().size();
  stats.rel_types = db.catalog().RelTypeNames().size();
  stats.inher_rel_types = db.catalog().InherRelTypeNames().size();
  stats.domains = db.catalog().DomainNames().size();
  return stats;
}

std::string DatabaseStats::ToString() const {
  std::string out;
  out += "objects:          " +
         FormatWithCommas(static_cast<int64_t>(total_objects)) + " (" +
         std::to_string(plain_objects) + " plain, " +
         std::to_string(relationship_objects) + " relationships, " +
         std::to_string(inher_rel_objects) + " inheritance relationships)\n";
  out += "containment:      " + std::to_string(top_level_objects) +
         " top-level, " + std::to_string(subobjects) + " subobjects\n";
  out += "bound inheritors: " + std::to_string(bound_inheritors) + "\n";
  out += "pending changes:  " + std::to_string(pending_notifications) + "\n";
  out += "resolution cache: " + cache_mode + ", " +
         std::to_string(cache_entries) + " entries; " +
         std::to_string(cache_hits) + " hits, " +
         std::to_string(cache_misses) + " misses, " +
         std::to_string(cache_invalidations) + " invalidations\n";
  out += "schema cache:     " + std::to_string(schema_cache_hits) +
         " hits, " + std::to_string(schema_cache_misses) + " misses\n";
  out += "schema analyses:  " + std::to_string(schema_analyses_run) +
         " run, " + std::to_string(schema_analyses_skipped) +
         " skipped (epoch unchanged)\n";
  out += "schema:           " + std::to_string(object_types) +
         " object types, " + std::to_string(rel_types) + " rel types, " +
         std::to_string(inher_rel_types) + " inher-rel types, " +
         std::to_string(domains) + " domains, " + std::to_string(classes) +
         " classes\n";
  if (is_replica) {
    out += "replica:          " + replica_state + "; generation " +
           std::to_string(replica_generation) + ", manifest seq " +
           std::to_string(replica_manifest_seq) + ", replay lsn " +
           std::to_string(replay_lsn) + " / shipped lsn " +
           std::to_string(shipped_lsn) + " (lag " +
           std::to_string(replica_lag) + ")\n";
  }
  out += "population by type:\n";
  for (const auto& [type, count] : per_type) {
    out += "  " + type + ": " + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace caddb

#ifndef CADDB_CORE_PAPER_SCHEMAS_H_
#define CADDB_CORE_PAPER_SCHEMAS_H_

// The worked schemas of Wilkes/Klahold/Schlageter (sections 3-5), cleaned of
// the report's OCR typos (Gatelnterface -> GateInterface, Positiion ->
// Position, bold -> bolt, inconsistent Subgates/SubGates casing) but
// otherwise verbatim. Examples, integration tests and benchmarks all build
// on these.

namespace caddb {
namespace schemas {

/// Section 3: simple gates, pins, wires, elementary gates and the complex
/// object type Gate (Figure 1).
inline constexpr const char* kGatesBase = R"(
  domain I/O = (IN, OUT);

  obj-type SimpleGate =
    attributes:
      Length, Width: integer;
      Function:      (AND, OR, NOR, NAND);
      Pins:          set-of ( PinId: integer;
                              InOut: I/O;
                            );
    constraints:
      count (Pins) = 2 where Pins.InOut = IN;
      count (Pins) = 1 where Pins.InOut = OUT;
  end SimpleGate;

  obj-type PinType =
    attributes:
      InOut:       I/O;
      PinLocation: Point;
  end PinType;

  rel-type WireType =
    relates:
      Pin1, Pin2: object-of-type PinType;
    attributes:
      Corners: list-of Point;
  end WireType;

  obj-type ElementaryGate =
    /* equals SimpleGate except for the definition of Pins */
    attributes:
      Length, Width: integer;
      Function:      (AND, OR, NAND, NOR);
      GatePosition:  Point;
    types-of-subclasses:
      Pins: PinType;
    constraints:
      count (Pins) = 2 where Pins.InOut = IN;
      count (Pins) = 1 where Pins.InOut = OUT;
  end ElementaryGate;

  obj-type Gate =
    /* gates constructed from AND, OR, NAND and NOR gates (Figure 1) */
    attributes:
      Length, Width: integer;
      Function:      matrix-of boolean;
    types-of-subclasses:
      Pins:     PinType;
      SubGates: ElementaryGate;
    types-of-subrels:
      Wires: WireType
        where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins)
          and (Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins);
  end Gate;
)";

/// Section 4.2/4.3: the interface hierarchy (GateInterface_I above
/// GateInterface), implementations inheriting interface data, composite
/// implementations whose SubGates are inheritors of *other* gates'
/// interfaces (Figures 2-4), and the tailored SomeOf_Gate permeability.
inline constexpr const char* kGatesInterfaces = R"(
  obj-type GateInterface_I =
    /* the abstract super-interface: pins only */
    types-of-subclasses:
      Pins: PinType;
  end GateInterface_I;

  inher-rel-type AllOf_GateInterface_I =
    transmitter: object-of-type GateInterface_I;
    inheritor:   object;
    inheriting:  Pins;
  end AllOf_GateInterface_I;

  obj-type GateInterface =
    inheritor-in: AllOf_GateInterface_I;
    attributes:
      Length, Width: integer;
  end GateInterface;

  inher-rel-type AllOf_GateInterface =
    /* enables objects to inherit all data of GateInterface objects */
    transmitter: object-of-type GateInterface;
    inheritor:   object;
    inheriting:  Length, Width, Pins;
  end AllOf_GateInterface;

  obj-type GateImplementation =
    inheritor-in: AllOf_GateInterface;
    attributes:
      Function:     matrix-of boolean;
      TimeBehavior: integer;
    types-of-subclasses:
      SubGates:
        inheritor-in: AllOf_GateInterface;
        attributes:
          GateLocation: Point;
    types-of-subrels:
      Wires: WireType
        where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins)
          and (Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins);
  end GateImplementation;

  inher-rel-type SomeOf_Gate =
    /* top-down tailored visibility: exports TimeBehavior, which is not
       part of the interface */
    transmitter: object-of-type GateImplementation;
    inheritor:   object;
    inheriting:  Length, Width, TimeBehavior, Pins;
  end SomeOf_Gate;

  obj-type TimingComposite =
    /* a composite that needs the components' timing data (section 4.3) */
    attributes:
      CycleTime: integer;
    types-of-subclasses:
      TimedSubGates:
        inheritor-in: SomeOf_Gate;
        attributes:
          GateLocation: Point;
  end TimingComposite;
)";

/// Section 5: steel construction (Figure 5). One deliberate deviation from
/// the report: AllOf_GirderIf / AllOf_PlateIf use `inheritor: object` instead
/// of `object-of-type Girder` / `Plate` — the report restricts the inheritor
/// type yet immediately uses the same relationships for the implicitly-typed
/// Girders/Plates subobjects of WeightCarrying_Structure, which can never
/// satisfy that restriction. kSteelVerbatimInconsistency below preserves the
/// original for the regression test that pinpoints the contradiction.
inline constexpr const char* kSteel = R"(
  domain AreaDom =
    record:
      Length, Width: integer;
  end-domain AreaDom;

  obj-type BoltType =
    attributes:
      Length, Diameter: integer;
  end BoltType;

  obj-type NutType =
    attributes:
      Length, Diameter: integer;
  end NutType;

  obj-type BoreType =
    attributes:
      Diameter, Length: integer;
      Position:         Point;
  end BoreType;

  obj-type GirderInterface =
    attributes:
      Length, Height, Width: integer;
    types-of-subclasses:
      Bores: BoreType;
    constraints:
      Length < 100*Height*Width;
  end GirderInterface;

  obj-type PlateInterface =
    attributes:
      Thickness: integer;
      Area:      AreaDom;
    types-of-subclasses:
      Bores: BoreType;
  end PlateInterface;

  inher-rel-type AllOf_GirderIf =
    transmitter: object-of-type GirderInterface;
    inheritor:   object;
    inheriting:  Length, Height, Width, Bores;
  end AllOf_GirderIf;

  inher-rel-type AllOf_PlateIf =
    transmitter: object-of-type PlateInterface;
    inheritor:   object;
    inheriting:  Thickness, Area, Bores;
  end AllOf_PlateIf;

  obj-type Girder =
    inheritor-in: AllOf_GirderIf;
    attributes:
      Material: (wood, metal);
  end Girder;

  obj-type Plate =
    inheritor-in: AllOf_PlateIf;
    attributes:
      Material: (wood, metal);
  end Plate;

  inher-rel-type AllOf_BoltType =
    transmitter: object-of-type BoltType;
    inheritor:   object;
    inheriting:  Length, Diameter;
  end AllOf_BoltType;

  inher-rel-type AllOf_NutType =
    transmitter: object-of-type NutType;
    inheritor:   object;
    inheriting:  Length, Diameter;
  end AllOf_NutType;

  rel-type ScrewingType =
    relates:
      Bores: set-of object-of-type BoreType;
    attributes:
      Strength: integer;
    types-of-subclasses:
      Bolt:
        inheritor-in: AllOf_BoltType;
      Nut:
        inheritor-in: AllOf_NutType;
    constraints:
      #s in Bolt = 1;
      #n in Nut = 1;
      for (s in Bolt, n in Nut):
        s.Diameter = n.Diameter;
      for b in Bores:
        s.Diameter <= b.Diameter;
      s.Length = n.Length + sum (Bores.Length);
  end ScrewingType;

  obj-type WeightCarrying_Structure =
    attributes:
      Designer:    char;
      Description: char;
    types-of-subclasses:
      Girders:
        inheritor-in: AllOf_GirderIf;
      Plates:
        inheritor-in: AllOf_PlateIf;
    types-of-subrels:
      Screwings: ScrewingType
        where for x in Bores:
          x in Girders.Bores or x in Plates.Bores;
  end WeightCarrying_Structure;
)";

/// The report's original (inconsistent) girder inheritance declaration: the
/// inheritor is restricted to type Girder, yet section 5 also uses the
/// relationship for WeightCarrying_Structure's implicitly-typed Girders
/// subclass. ddl_parser_test pins down that the schema parses but cannot
/// validate.
inline constexpr const char* kSteelVerbatimInconsistency = R"(
  obj-type GirderInterface =
    attributes:
      Length, Height, Width: integer;
    types-of-subclasses:
      Bores: BoreType;
  end GirderInterface;

  obj-type BoreType =
    attributes:
      Diameter, Length: integer;
  end BoreType;

  inher-rel-type AllOf_GirderIf =
    transmitter: object-of-type GirderInterface;
    inheritor:   object-of-type Girder;
    inheriting:  Length, Height, Width, Bores;
  end AllOf_GirderIf;

  obj-type Girder =
    inheritor-in: AllOf_GirderIf;
    attributes:
      Material: (wood, metal);
  end Girder;

  obj-type Structure =
    types-of-subclasses:
      Girders:
        inheritor-in: AllOf_GirderIf;
  end Structure;
)";

}  // namespace schemas
}  // namespace caddb

#endif  // CADDB_CORE_PAPER_SCHEMAS_H_

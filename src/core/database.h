#ifndef CADDB_CORE_DATABASE_H_
#define CADDB_CORE_DATABASE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diagnostics.h"
#include "catalog/catalog.h"
#include "constraints/checker.h"
#include "ddl/parser.h"
#include "inherit/inheritance.h"
#include "inherit/notification.h"
#include "obs/observability.h"
#include "query/expansion.h"
#include "query/query.h"
#include "storage/buffer_pool.h"
#include "storage/file_manager.h"
#include "storage/paged_heap.h"
#include "store/store.h"
#include "txn/access_control.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "txn/workspace.h"
#include "versions/version_graph.h"
#include "wal/recovery.h"

namespace caddb {

/// Replication telemetry a replication::Follower attaches to the read-only
/// database it maintains, surfaced through DatabaseStats and the shell's
/// `replica status`.
struct ReplicaInfo {
  bool is_replica = false;
  /// "following", "caught-up", or "quarantined (CADnnn ...)".
  std::string state;
  uint64_t manifest_seq = 0;  // last manifest applied
  uint64_t generation = 0;    // primary log generation being followed
  uint64_t replay_lsn = 0;    // last lsn replayed into this database
  uint64_t shipped_lsn = 0;   // newest lsn the primary has shipped
  uint64_t lag() const {
    return shipped_lsn > replay_lsn ? shipped_lsn - replay_lsn : 0;
  }
};

/// One in-memory CAD/CAM database: catalog + object store + value-inheritance
/// engine + constraint checker + query/expansion + version management +
/// transactions. This is the public entry point; examples and benchmarks
/// program exclusively against it.
///
/// Usage sketch:
///
///   caddb::Database db;
///   CHECK_OK(db.ExecuteDdl(R"(obj-type Plate = attributes: ... end Plate;)"));
///   auto plate = db.CreateObject("Plate");
///   CHECK_OK(db.Set(*plate, "Thickness", caddb::Value::Int(4)));
///
/// Thread model: schema/data manipulation through the plain methods is
/// single-threaded; multi-threaded access goes through transactions().
class Database {
 public:
  /// `obs` (not owned; must outlive the database) redirects all metrics and
  /// traces into an external bundle; by default the database owns its own,
  /// so two databases in one process (a primary and its follower) keep
  /// separate books.
  explicit Database(obs::Observability* obs = nullptr)
      : obs_(obs != nullptr ? obs : &owned_obs_),
        catalog_(obs_),
        store_(&catalog_),
        inheritance_(&store_, &notifications_, obs_),
        checker_(&inheritance_),
        query_(&inheritance_),
        expander_(&inheritance_),
        versions_(&inheritance_),
        locks_(&catalog_, obs_),
        transactions_(&inheritance_, &locks_, &acl_),
        workspaces_(&inheritance_) {
    m_checkpoints_ = obs_->metrics.GetCounter(
        "caddb_wal_checkpoints_total", "Checkpoints published");
    m_checkpoint_us_ = obs_->metrics.GetHistogram(
        "caddb_wal_checkpoint_us",
        "Checkpoint duration (capture + stage + publish + truncate)");
    m_checkpoint_pause_us_ = obs_->metrics.GetHistogram(
        "caddb_wal_checkpoint_pause_us",
        "Commit-blocking portion of a checkpoint (the capture critical "
        "section under the store gate)");
    // Transactions and workspaces serialize store access against checkpoint
    // capture through one database-wide gate.
    transactions_.set_store_gate(&store_gate_);
    workspaces_.set_store_gate(&store_gate_);
  }

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Closes the write-ahead log cleanly (best effort) if one is attached.
  ~Database();

  // ---- Durability (write-ahead log + checkpoints + crash recovery) ----
  /// Opens (creating if necessary) a durable database rooted at directory
  /// `dir`: loads the newest valid checkpoint, replays every committed
  /// transaction and auto-committed operation from the log (stopping at the
  /// first torn or corrupt record), runs the store fsck, then publishes a
  /// fresh checkpoint and truncates the log before logging resumes. The
  /// fresh checkpoint is not optional — it anchors the new process's
  /// surrogate and transaction id spaces, so a log generation never mixes
  /// the ids of two processes.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& dir,
      const wal::DurabilityOptions& options = wal::DurabilityOptions{});

  /// Replays `dir` like Open but writes nothing back: no log is attached,
  /// no fresh checkpoint is published, and every mutating entry point fails
  /// with kFailedPrecondition afterwards. This is how a replication
  /// follower materializes shipped state without disturbing the shipped
  /// bytes (the staged directory stays byte-comparable to the primary's).
  static Result<std::unique_ptr<Database>> OpenReadOnly(
      const std::string& dir,
      const wal::DurabilityOptions& options = wal::DurabilityOptions{});

  /// Incremental checkpoint: captures the dirty/deleted object sets and
  /// the live-transaction undo masks in one short critical section under
  /// the store gate (commits block only for that capture, not for the I/O),
  /// stages the dirty objects onto buffer-pool pages, embeds the dirtied
  /// page images in the atomically-published checkpoint file (a double-
  /// write journal), then writes the pages in place and truncates the log.
  /// Writes of transactions still active at capture are masked with their
  /// before-images, and the checkpoint records the oldest such begin lsn so
  /// recovery replays them iff they later committed — active transactions
  /// no longer block checkpointing. A failed attempt restores the dirty
  /// sets and leaves the page batch pinned for retry.
  Status Checkpoint();

  /// Recovery plumbing (called by wal::Recover and Open): opens pages.db in
  /// `dir`, heals it with the checkpoint's page `images` (or overlays them,
  /// read-only), adopts every stored object into the store, and wires the
  /// demand-paging and dirty-tracking machinery.
  Status InitPagedStore(const std::string& dir,
                        const std::map<uint32_t, std::string>& images,
                        const wal::DurabilityOptions& options);

  /// Blocks Checkpoint() (and the in-place page writes + log truncation it
  /// performs) while held. The replication shipper snapshots the
  /// checkpoint file, the page file and the segments under this, so the
  /// shipped triple is mutually consistent.
  std::unique_lock<std::mutex> PauseCheckpoints() {
    return std::unique_lock<std::mutex>(checkpoint_mu_);
  }

  /// Paged-store telemetry for `status` and the benchmarks.
  struct StorageStats {
    bool paged = false;
    storage::BufferPoolStats pool;
    storage::PagedHeap::Stats heap;
    size_t resident_objects = 0;
    size_t dirty_objects = 0;
    uint64_t page_writes = 0;
  };
  StorageStats storage_stats() const;

  /// The paged heap (null until InitPagedStore — i.e. for in-memory
  /// databases). Read-only inspection: the disk verifier's tests cross-check
  /// its surrogate directory against the one re-derived from raw pages.
  storage::PagedHeap* heap() { return heap_.get(); }

  /// Syncs and closes the log; mutations afterwards are no longer logged.
  Status Close();

  bool durable() const { return wal_ != nullptr; }
  wal::Wal* wal() { return wal_.get(); }
  /// What the recovery pass of Open found (default-initialized for a
  /// database that was default-constructed rather than opened).
  const wal::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }

  /// True for databases materialized via OpenReadOnly: every mutating entry
  /// point fails with kFailedPrecondition.
  bool read_only() const { return read_only_; }
  /// Log generation this process writes (loaded generation + 1 for Open;
  /// the loaded generation itself for OpenReadOnly, which writes nothing).
  uint64_t generation() const { return generation_; }
  /// Replication telemetry; is_replica is false unless a Follower set it.
  const ReplicaInfo& replica_info() const { return replica_info_; }
  void set_replica_info(const ReplicaInfo& info) { replica_info_ = info; }

  // ---- Schema ----
  /// Parses and registers schema text (paper syntax); warnings accumulate in
  /// ddl_warnings(). With eager DDL validation enabled, the schema analyzer
  /// runs after registration and any *error*-severity finding fails the
  /// call (the definitions stay registered, like a failing ValidateSchema
  /// after the fact; analyzer warnings never fail it).
  Status ExecuteDdl(const std::string& source);
  /// Whole-catalog consistency check (resolves forward references).
  Status ValidateSchema() const { return catalog_.Validate(); }
  const std::vector<std::string>& ddl_warnings() const {
    return ddl_warnings_;
  }

  /// When on, every ExecuteDdl is followed by the static schema analysis
  /// (`caddb check`-style) so defective DDL fails at definition time instead
  /// of at first use. Off by default: the paper's adaptation workflow
  /// tolerates temporarily inconsistent schemas (forward references across
  /// multiple ExecuteDdl calls).
  void set_eager_ddl_validation(bool on) { eager_ddl_validation_ = on; }
  bool eager_ddl_validation() const { return eager_ddl_validation_; }

  // ---- Static integrity analysis ----
  /// Schema passes only (CAD0xx). Memoized on the catalog's schema epoch:
  /// a check against a schema that has not changed since the last one
  /// returns the cached diagnostics without re-analyzing, so eager DDL
  /// validation and repeated `check schema` runs cost one analysis per
  /// actual schema change. The counters below prove the skip.
  analysis::DiagnosticBag CheckSchema() const;
  uint64_t schema_analyses_run() const { return schema_analyses_run_; }
  uint64_t schema_analyses_skipped() const { return schema_analyses_skipped_; }
  /// Store passes only (CAD1xx), including the resolution-cache audit.
  analysis::DiagnosticBag CheckStore() const;
  /// Both, merged and sorted — the `caddb check` entry point.
  analysis::DiagnosticBag Check() const;

  // ---- Observability ----
  /// The metrics/trace bundle this database (and every subsystem under it)
  /// reports into. Never null.
  obs::Observability* observability() const { return obs_; }
  /// Span-completion subscription: `fn` runs, on the completing thread,
  /// for every span finished while tracing is enabled. Returns a token for
  /// RemoveObserver. Callbacks must not re-enter the tracer.
  using Observer = obs::Tracer::Observer;
  int AddObserver(Observer fn) {
    return obs_->trace.AddObserver(std::move(fn));
  }
  void RemoveObserver(int token) { obs_->trace.RemoveObserver(token); }

  // ---- Subsystem access ----
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }
  NotificationCenter& notifications() { return notifications_; }
  const NotificationCenter& notifications() const { return notifications_; }
  InheritanceManager& inheritance() { return inheritance_; }
  const InheritanceManager& inheritance() const { return inheritance_; }
  ConstraintChecker& constraints() { return checker_; }
  QueryEngine& query() { return query_; }
  Expander& expander() { return expander_; }
  VersionManager& versions() { return versions_; }
  const VersionManager& versions() const { return versions_; }
  LockManager& locks() { return locks_; }
  AccessControl& access_control() { return acl_; }
  TransactionManager& transactions() { return transactions_; }
  WorkspaceManager& workspaces() { return workspaces_; }

  // ---- Convenience forwarding (the common instance-level operations) ----
  // Mutating operations live in database.cc: each one appends its redo
  // record to the write-ahead log (as an auto-committed operation) when the
  // database was opened durably. Reads stay inline.
  Status CreateClass(const std::string& name, const std::string& type);
  Result<Surrogate> CreateObject(const std::string& type,
                                 const std::string& class_name = "");
  Result<Surrogate> CreateSubobject(Surrogate parent,
                                    const std::string& subclass);
  Result<Surrogate> CreateRelationship(
      const std::string& rel_type,
      const std::map<std::string, std::vector<Surrogate>>& participants);
  Result<Surrogate> CreateSubrel(
      Surrogate owner, const std::string& subrel,
      const std::map<std::string, std::vector<Surrogate>>& participants);
  /// CreateSubrel + immediate where-clause check; on violation the freshly
  /// created relationship is removed again and the violation returned.
  /// (Plain CreateSubrel defers the check — the paper's adaptation workflow
  /// tolerates temporary inconsistency; this is the eager variant.) Logged
  /// only after the check passes: a rejected member nets out to nothing.
  Result<Surrogate> CreateCheckedSubrel(
      Surrogate owner, const std::string& subrel,
      const std::map<std::string, std::vector<Surrogate>>& participants);
  Result<Surrogate> Bind(Surrogate inheritor, Surrogate transmitter,
                         const std::string& inher_rel_type);
  Status Unbind(Surrogate inheritor);
  Status Set(Surrogate s, const std::string& attr, Value v);
  /// Reads take the store gate too: with demand paging even a read may
  /// fault an object in, and a background checkpointer may be trimming.
  Result<Value> Get(Surrogate s, const std::string& attr) const;
  Result<std::vector<Surrogate>> Subclass(Surrogate s,
                                          const std::string& name) const;
  Status Delete(Surrogate s, ObjectStore::DeletePolicy policy =
                                 ObjectStore::DeletePolicy::kRestrict);
  /// Parses `text` as a constraint expression and evaluates it anchored at
  /// `s` (handy for top-down version selection and ad-hoc checks).
  Result<bool> Holds(Surrogate s, const std::string& text) const;

 private:
  /// Appends `record` as an auto-committed operation when a wal is
  /// attached (must hold store_gate_: the marker lsn and the store
  /// mutation it describes become atomic w.r.t. checkpoint capture);
  /// `*appended` tells FinishOp whether a durability wait is owed.
  Status LogOpLocked(const wal::Record& record, bool* appended);
  /// Outside the gate: waits for the commit's durability policy, then
  /// trims resident objects to the configured budget.
  Status FinishOp(Status result, bool appended);
  void MaybeTrimResident();
  void StartCheckpointer(uint64_t interval_ms);
  void StopCheckpointer();

  /// kFailedPrecondition for read-only (replica) databases, OK otherwise.
  /// Every mutating convenience method and ExecuteDdl checks it first.
  Status CheckWritable() const;

  // Declared first: every subsystem below registers its instruments with
  // the bundle during construction.
  obs::Observability owned_obs_;
  obs::Observability* obs_;
  obs::Counter* m_checkpoints_;
  obs::Histogram* m_checkpoint_us_;

  Catalog catalog_;
  ObjectStore store_;
  NotificationCenter notifications_;
  InheritanceManager inheritance_;
  ConstraintChecker checker_;
  QueryEngine query_;
  Expander expander_;
  VersionManager versions_;
  LockManager locks_;
  AccessControl acl_;
  TransactionManager transactions_;
  WorkspaceManager workspaces_;
  std::vector<std::string> ddl_warnings_;
  bool eager_ddl_validation_ = false;

  // Durability: present only for databases created via Open.
  std::unique_ptr<wal::Wal> wal_;
  wal::RecoveryReport recovery_report_;
  bool read_only_ = false;
  uint64_t generation_ = 0;
  ReplicaInfo replica_info_;

  // Paged store (present once InitPagedStore ran — every durable open).
  // Declaration order is destruction-in-reverse: the heap drops before the
  // pool, the pool before the file manager.
  std::unique_ptr<storage::FileManager> files_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<storage::PagedHeap> heap_;
  std::unique_ptr<ObjectPager> pager_;
  size_t resident_budget_ = 0;

  /// Serializes every store mutation/read against checkpoint capture.
  /// Shared into the transaction and workspace managers. Lock order:
  /// store_gate_ -> subsystem mutexes -> heap/pool/file mutexes.
  mutable std::mutex store_gate_;
  /// Serializes whole checkpoints (foreground calls, the background
  /// checkpointer, and the shipper's consistency pause). Never taken while
  /// store_gate_ is held.
  std::mutex checkpoint_mu_;
  obs::Histogram* m_checkpoint_pause_us_;

  // Background checkpointer (Open with checkpoint_interval_ms != 0).
  std::thread checkpointer_;
  std::mutex checkpointer_mu_;
  std::condition_variable checkpointer_cv_;
  bool stop_checkpointer_ = false;
  uint64_t checkpoint_interval_ms_ = 0;

  // CheckSchema memoization (satellite of the durability work: recovery and
  // eager DDL validation both call it repeatedly).
  mutable analysis::DiagnosticBag schema_check_cache_;
  mutable uint64_t schema_check_epoch_ = 0;
  mutable bool schema_check_valid_ = false;
  mutable uint64_t schema_analyses_run_ = 0;
  mutable uint64_t schema_analyses_skipped_ = 0;
};

}  // namespace caddb

#endif  // CADDB_CORE_DATABASE_H_

#ifndef CADDB_CORE_DATABASE_H_
#define CADDB_CORE_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "catalog/catalog.h"
#include "constraints/checker.h"
#include "ddl/parser.h"
#include "inherit/inheritance.h"
#include "inherit/notification.h"
#include "query/expansion.h"
#include "query/query.h"
#include "store/store.h"
#include "txn/access_control.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "txn/workspace.h"
#include "versions/version_graph.h"

namespace caddb {

/// One in-memory CAD/CAM database: catalog + object store + value-inheritance
/// engine + constraint checker + query/expansion + version management +
/// transactions. This is the public entry point; examples and benchmarks
/// program exclusively against it.
///
/// Usage sketch:
///
///   caddb::Database db;
///   CHECK_OK(db.ExecuteDdl(R"(obj-type Plate = attributes: ... end Plate;)"));
///   auto plate = db.CreateObject("Plate");
///   CHECK_OK(db.Set(*plate, "Thickness", caddb::Value::Int(4)));
///
/// Thread model: schema/data manipulation through the plain methods is
/// single-threaded; multi-threaded access goes through transactions().
class Database {
 public:
  Database()
      : store_(&catalog_),
        inheritance_(&store_, &notifications_),
        checker_(&inheritance_),
        query_(&inheritance_),
        expander_(&inheritance_),
        versions_(&inheritance_),
        locks_(&catalog_),
        transactions_(&inheritance_, &locks_, &acl_),
        workspaces_(&inheritance_) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- Schema ----
  /// Parses and registers schema text (paper syntax); warnings accumulate in
  /// ddl_warnings(). With eager DDL validation enabled, the schema analyzer
  /// runs after registration and any *error*-severity finding fails the
  /// call (the definitions stay registered, like a failing ValidateSchema
  /// after the fact; analyzer warnings never fail it).
  Status ExecuteDdl(const std::string& source);
  /// Whole-catalog consistency check (resolves forward references).
  Status ValidateSchema() const { return catalog_.Validate(); }
  const std::vector<std::string>& ddl_warnings() const {
    return ddl_warnings_;
  }

  /// When on, every ExecuteDdl is followed by the static schema analysis
  /// (`caddb check`-style) so defective DDL fails at definition time instead
  /// of at first use. Off by default: the paper's adaptation workflow
  /// tolerates temporarily inconsistent schemas (forward references across
  /// multiple ExecuteDdl calls).
  void set_eager_ddl_validation(bool on) { eager_ddl_validation_ = on; }
  bool eager_ddl_validation() const { return eager_ddl_validation_; }

  // ---- Static integrity analysis ----
  /// Schema passes only (CAD0xx).
  analysis::DiagnosticBag CheckSchema() const;
  /// Store passes only (CAD1xx), including the resolution-cache audit.
  analysis::DiagnosticBag CheckStore() const;
  /// Both, merged and sorted — the `caddb check` entry point.
  analysis::DiagnosticBag Check() const;

  // ---- Subsystem access ----
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }
  NotificationCenter& notifications() { return notifications_; }
  const NotificationCenter& notifications() const { return notifications_; }
  InheritanceManager& inheritance() { return inheritance_; }
  const InheritanceManager& inheritance() const { return inheritance_; }
  ConstraintChecker& constraints() { return checker_; }
  QueryEngine& query() { return query_; }
  Expander& expander() { return expander_; }
  VersionManager& versions() { return versions_; }
  const VersionManager& versions() const { return versions_; }
  LockManager& locks() { return locks_; }
  AccessControl& access_control() { return acl_; }
  TransactionManager& transactions() { return transactions_; }
  WorkspaceManager& workspaces() { return workspaces_; }

  // ---- Convenience forwarding (the common instance-level operations) ----
  Status CreateClass(const std::string& name, const std::string& type) {
    return store_.CreateClass(name, type);
  }
  Result<Surrogate> CreateObject(const std::string& type,
                                 const std::string& class_name = "") {
    return store_.CreateObject(type, class_name);
  }
  Result<Surrogate> CreateSubobject(Surrogate parent,
                                    const std::string& subclass) {
    return inheritance_.CreateSubobject(parent, subclass);
  }
  Result<Surrogate> CreateRelationship(
      const std::string& rel_type,
      const std::map<std::string, std::vector<Surrogate>>& participants) {
    return store_.CreateRelationship(rel_type, participants);
  }
  Result<Surrogate> CreateSubrel(
      Surrogate owner, const std::string& subrel,
      const std::map<std::string, std::vector<Surrogate>>& participants) {
    return store_.CreateSubrel(owner, subrel, participants);
  }
  /// CreateSubrel + immediate where-clause check; on violation the freshly
  /// created relationship is removed again and the violation returned.
  /// (Plain CreateSubrel defers the check — the paper's adaptation workflow
  /// tolerates temporary inconsistency; this is the eager variant.)
  Result<Surrogate> CreateCheckedSubrel(
      Surrogate owner, const std::string& subrel,
      const std::map<std::string, std::vector<Surrogate>>& participants) {
    CADDB_ASSIGN_OR_RETURN(Surrogate member,
                           store_.CreateSubrel(owner, subrel, participants));
    Status where = checker_.CheckSubrelMember(owner, subrel, member);
    if (!where.ok()) {
      Status cleanup = inheritance_.DeleteObject(member);
      (void)cleanup;
      return where;
    }
    return member;
  }
  Result<Surrogate> Bind(Surrogate inheritor, Surrogate transmitter,
                         const std::string& inher_rel_type) {
    return inheritance_.Bind(inheritor, transmitter, inher_rel_type);
  }
  Status Unbind(Surrogate inheritor) { return inheritance_.Unbind(inheritor); }
  Status Set(Surrogate s, const std::string& attr, Value v) {
    return inheritance_.SetAttribute(s, attr, std::move(v));
  }
  Result<Value> Get(Surrogate s, const std::string& attr) const {
    return inheritance_.GetAttribute(s, attr);
  }
  Result<std::vector<Surrogate>> Subclass(Surrogate s,
                                          const std::string& name) const {
    return inheritance_.GetSubclass(s, name);
  }
  Status Delete(Surrogate s, ObjectStore::DeletePolicy policy =
                                 ObjectStore::DeletePolicy::kRestrict) {
    return inheritance_.DeleteObject(s, policy);
  }
  /// Parses `text` as a constraint expression and evaluates it anchored at
  /// `s` (handy for top-down version selection and ad-hoc checks).
  Result<bool> Holds(Surrogate s, const std::string& text) const {
    Result<expr::ExprPtr> e = ddl::Parser::ParseConstraintExpression(text);
    if (!e.ok()) return e.status();
    return checker_.Evaluate(s, **e);
  }

 private:
  Catalog catalog_;
  ObjectStore store_;
  NotificationCenter notifications_;
  InheritanceManager inheritance_;
  ConstraintChecker checker_;
  QueryEngine query_;
  Expander expander_;
  VersionManager versions_;
  LockManager locks_;
  AccessControl acl_;
  TransactionManager transactions_;
  WorkspaceManager workspaces_;
  std::vector<std::string> ddl_warnings_;
  bool eager_ddl_validation_ = false;
};

}  // namespace caddb

#endif  // CADDB_CORE_DATABASE_H_

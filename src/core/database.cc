#include "core/database.h"

#include "analysis/analyzer.h"
#include "persist/dump.h"
#include "wal/checkpoint.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace caddb {

using wal::kAutoCommitTxn;
using wal::Record;

Database::~Database() {
  if (wal_ != nullptr) {
    // Best-effort clean shutdown; a real crash never reaches this.
    (void)Close();
  }
}

Status Database::LogOp(const Record& record) {
  if (wal_ == nullptr) return OkStatus();
  return wal_->AppendCommit(record);
}

Status Database::CheckWritable() const {
  if (read_only_) {
    return FailedPrecondition(
        "database is read-only (a replica follows the primary's log; "
        "promote it before writing)");
  }
  return OkStatus();
}

// ---- Durability ----

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, const wal::DurabilityOptions& options) {
  // An obs bundle in the options adopts the whole database (the replication
  // follower routes every rebuild into one bundle this way); otherwise the
  // database owns its own and recovery + log report into it.
  auto db = std::make_unique<Database>(options.wal.obs);
  wal::DurabilityOptions opts = options;
  if (opts.wal.obs == nullptr) opts.wal.obs = db->observability();
  CADDB_ASSIGN_OR_RETURN(db->recovery_report_,
                         wal::Recover(dir, db.get(), opts));
  // The log is attached only now, so replay above did not re-log itself,
  // and always starts a fresh segment — a torn tail is never appended to.
  CADDB_ASSIGN_OR_RETURN(
      std::unique_ptr<wal::Wal> wal,
      wal::Wal::Open(dir, opts.wal, db->recovery_report_.last_lsn + 1));
  db->wal_ = std::move(wal);
  db->transactions_.set_wal(db->wal_.get());
  db->versions_.set_wal(db->wal_.get());
  db->workspaces_.set_wal(db->wal_.get());
  // A new generation per process lifetime: the fresh checkpoint below
  // anchors it, so one generation never mixes two processes' id spaces and
  // a replication follower can spot a rewound primary.
  db->generation_ = db->recovery_report_.generation + 1;
  CADDB_RETURN_IF_ERROR(db->Checkpoint());
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenReadOnly(
    const std::string& dir, const wal::DurabilityOptions& options) {
  auto db = std::make_unique<Database>(options.wal.obs);
  wal::DurabilityOptions opts = options;
  if (opts.wal.obs == nullptr) opts.wal.obs = db->observability();
  CADDB_ASSIGN_OR_RETURN(db->recovery_report_,
                         wal::Recover(dir, db.get(), opts));
  db->generation_ = db->recovery_report_.generation;
  db->read_only_ = true;
  return db;
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return FailedPrecondition("database is not durable (no wal attached)");
  }
  if (transactions_.ActiveCount() > 0) {
    return FailedPrecondition(
        "checkpoint with active transactions would freeze uncommitted "
        "writes into the snapshot");
  }
  obs::Span span(&obs_->trace, "wal.checkpoint", m_checkpoint_us_,
                 /*always_time=*/true);
  m_checkpoints_->Increment();
  CADDB_ASSIGN_OR_RETURN(std::string dump, persist::Dumper::Dump(*this));
  // Everything the snapshot reflects must be on disk before the covering
  // lsn claims it; then the snapshot covers last_lsn exactly (the store is
  // quiescent here — no active transactions, and this thread is the
  // caller).
  CADDB_RETURN_IF_ERROR(wal_->Sync());
  CADDB_RETURN_IF_ERROR(
      wal::WriteCheckpoint(wal_->dir(), wal_->last_lsn(), generation_, dump));
  return wal_->RotateAndTruncate();
}

Status Database::Close() {
  if (wal_ == nullptr) return OkStatus();
  transactions_.set_wal(nullptr);
  versions_.set_wal(nullptr);
  workspaces_.set_wal(nullptr);
  Status closed = wal_->Close();
  wal_.reset();
  return closed;
}

// ---- Schema ----

Status Database::ExecuteDdl(const std::string& source) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_RETURN_IF_ERROR(
      ddl::Parser::ParseSchema(source, &catalog_, &ddl_warnings_));
  if (eager_ddl_validation_) {
    analysis::DiagnosticBag bag = CheckSchema();
    if (bag.HasErrors()) {
      return FailedPrecondition("schema analysis found " + bag.Summary() +
                                ":\n" + bag.RenderText());
    }
  }
  return LogOp(Record::Ddl(kAutoCommitTxn, source));
}

analysis::DiagnosticBag Database::CheckSchema() const {
  const uint64_t epoch = catalog_.schema_epoch();
  if (schema_check_valid_ && schema_check_epoch_ == epoch) {
    ++schema_analyses_skipped_;
    return schema_check_cache_;
  }
  schema_check_cache_ = analysis::AnalyzeSchema(catalog_);
  schema_check_epoch_ = epoch;
  schema_check_valid_ = true;
  ++schema_analyses_run_;
  return schema_check_cache_;
}

analysis::DiagnosticBag Database::CheckStore() const {
  return analysis::AnalyzeStore(store_, &inheritance_);
}

analysis::DiagnosticBag Database::Check() const {
  return analysis::AnalyzeDatabase(store_, &inheritance_);
}

// ---- Convenience forwarding with redo logging ----

Status Database::CreateClass(const std::string& name,
                             const std::string& type) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_RETURN_IF_ERROR(store_.CreateClass(name, type));
  return LogOp(Record::CreateClass(kAutoCommitTxn, name, type));
}

Result<Surrogate> Database::CreateObject(const std::string& type,
                                         const std::string& class_name) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_ASSIGN_OR_RETURN(Surrogate created,
                         store_.CreateObject(type, class_name));
  CADDB_RETURN_IF_ERROR(LogOp(
      Record::CreateObject(kAutoCommitTxn, created.id, type, class_name)));
  return created;
}

Result<Surrogate> Database::CreateSubobject(Surrogate parent,
                                            const std::string& subclass) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_ASSIGN_OR_RETURN(Surrogate created,
                         inheritance_.CreateSubobject(parent, subclass));
  CADDB_RETURN_IF_ERROR(LogOp(Record::CreateSubobject(
      kAutoCommitTxn, created.id, parent.id, subclass)));
  return created;
}

namespace {

std::map<std::string, std::vector<uint64_t>> ParticipantIds(
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  std::map<std::string, std::vector<uint64_t>> out;
  for (const auto& [role, members] : participants) {
    std::vector<uint64_t>& ids = out[role];
    for (Surrogate m : members) ids.push_back(m.id);
  }
  return out;
}

}  // namespace

Result<Surrogate> Database::CreateRelationship(
    const std::string& rel_type,
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_ASSIGN_OR_RETURN(Surrogate created,
                         store_.CreateRelationship(rel_type, participants));
  CADDB_RETURN_IF_ERROR(LogOp(Record::CreateRelationship(
      kAutoCommitTxn, created.id, rel_type, ParticipantIds(participants))));
  return created;
}

Result<Surrogate> Database::CreateSubrel(
    Surrogate owner, const std::string& subrel,
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_ASSIGN_OR_RETURN(Surrogate created,
                         store_.CreateSubrel(owner, subrel, participants));
  CADDB_RETURN_IF_ERROR(LogOp(Record::CreateSubrel(
      kAutoCommitTxn, created.id, owner.id, subrel,
      ParticipantIds(participants))));
  return created;
}

Result<Surrogate> Database::CreateCheckedSubrel(
    Surrogate owner, const std::string& subrel,
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_ASSIGN_OR_RETURN(Surrogate member,
                         store_.CreateSubrel(owner, subrel, participants));
  Status where = checker_.CheckSubrelMember(owner, subrel, member);
  if (!where.ok()) {
    Status cleanup = inheritance_.DeleteObject(member);
    (void)cleanup;
    return where;
  }
  CADDB_RETURN_IF_ERROR(LogOp(Record::CreateSubrel(
      kAutoCommitTxn, member.id, owner.id, subrel,
      ParticipantIds(participants))));
  return member;
}

Result<Surrogate> Database::Bind(Surrogate inheritor, Surrogate transmitter,
                                 const std::string& inher_rel_type) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_ASSIGN_OR_RETURN(
      Surrogate created,
      inheritance_.Bind(inheritor, transmitter, inher_rel_type));
  CADDB_RETURN_IF_ERROR(LogOp(Record::Bind(kAutoCommitTxn, created.id,
                                           inheritor.id, transmitter.id,
                                           inher_rel_type)));
  return created;
}

Status Database::Unbind(Surrogate inheritor) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_RETURN_IF_ERROR(inheritance_.Unbind(inheritor));
  return LogOp(Record::Unbind(kAutoCommitTxn, inheritor.id));
}

Status Database::Set(Surrogate s, const std::string& attr, Value v) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  Value logged = wal_ != nullptr ? v : Value();
  CADDB_RETURN_IF_ERROR(inheritance_.SetAttribute(s, attr, std::move(v)));
  return LogOp(
      Record::SetAttribute(kAutoCommitTxn, s.id, attr, std::move(logged)));
}

Status Database::Delete(Surrogate s, ObjectStore::DeletePolicy policy) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  CADDB_RETURN_IF_ERROR(inheritance_.DeleteObject(s, policy));
  return LogOp(Record::Delete(
      kAutoCommitTxn, s.id,
      policy == ObjectStore::DeletePolicy::kDetachInheritors));
}

}  // namespace caddb

#include "core/database.h"

#include <chrono>
#include <filesystem>

#include "analysis/analyzer.h"
#include "persist/dump.h"
#include "store/object_codec.h"
#include "wal/checkpoint.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace caddb {

using wal::kAutoCommitTxn;
using wal::Record;

namespace {

/// Demand-paging adapter: the store faults clean objects back in through
/// this; payloads come off pages via the buffer pool.
class HeapPager : public ObjectPager {
 public:
  explicit HeapPager(const storage::PagedHeap* heap) : heap_(heap) {}

  bool Contains(uint64_t id) const override { return heap_->Contains(id); }

  Result<std::unique_ptr<DbObject>> Fetch(uint64_t id) const override {
    CADDB_ASSIGN_OR_RETURN(std::string payload, heap_->Fetch(id));
    return store_codec::DecodeObjectPayload(payload);
  }

 private:
  const storage::PagedHeap* heap_;
};

}  // namespace

Database::~Database() {
  StopCheckpointer();
  if (wal_ != nullptr) {
    // Best-effort clean shutdown; a real crash never reaches this.
    (void)Close();
  }
}

Status Database::LogOpLocked(const Record& record, bool* appended) {
  if (wal_ == nullptr) return OkStatus();
  CADDB_RETURN_IF_ERROR(wal_->AppendCommitRecord(record).status());
  *appended = true;
  return OkStatus();
}

Status Database::FinishOp(Status result, bool appended) {
  if (appended) {
    Status durable = wal_->FinishCommit();
    if (result.ok()) result = durable;
  }
  if (result.ok()) MaybeTrimResident();
  return result;
}

void Database::MaybeTrimResident() {
  if (resident_budget_ == 0) return;
  std::lock_guard<std::mutex> gate(store_gate_);
  if (store_.resident_objects() > resident_budget_) {
    store_.TrimResident(resident_budget_);
  }
}

Status Database::CheckWritable() const {
  if (read_only_) {
    return FailedPrecondition(
        "database is read-only (a replica follows the primary's log; "
        "promote it before writing)");
  }
  return OkStatus();
}

// ---- Durability ----

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, const wal::DurabilityOptions& options) {
  // An obs bundle in the options adopts the whole database (the replication
  // follower routes every rebuild into one bundle this way); otherwise the
  // database owns its own and recovery + log report into it.
  auto db = std::make_unique<Database>(options.wal.obs);
  wal::DurabilityOptions opts = options;
  if (opts.wal.obs == nullptr) opts.wal.obs = db->observability();
  opts.read_only = false;
  CADDB_ASSIGN_OR_RETURN(db->recovery_report_,
                         wal::Recover(dir, db.get(), opts));
  // The log is attached only now, so replay above did not re-log itself,
  // and always starts a fresh segment — a torn tail is never appended to.
  CADDB_ASSIGN_OR_RETURN(
      std::unique_ptr<wal::Wal> wal,
      wal::Wal::Open(dir, opts.wal, db->recovery_report_.last_lsn + 1));
  db->wal_ = std::move(wal);
  db->transactions_.set_wal(db->wal_.get());
  db->versions_.set_wal(db->wal_.get());
  db->workspaces_.set_wal(db->wal_.get());
  // A new generation per process lifetime: the fresh checkpoint below
  // anchors it, so one generation never mixes two processes' id spaces and
  // a replication follower can spot a rewound primary.
  db->generation_ = db->recovery_report_.generation + 1;
  if (db->files_ == nullptr) {
    // Fresh directory, or a v1/v2 (full-dump) checkpoint: nothing lives on
    // pages yet. Open the page file and mark everything dirty so the
    // checkpoint below migrates the whole store onto it.
    CADDB_RETURN_IF_ERROR(db->InitPagedStore(dir, {}, opts));
    db->store_.MarkAllDirty();
  }
  CADDB_RETURN_IF_ERROR(db->Checkpoint());
  if (opts.checkpoint_interval_ms != 0) {
    db->StartCheckpointer(opts.checkpoint_interval_ms);
  }
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenReadOnly(
    const std::string& dir, const wal::DurabilityOptions& options) {
  auto db = std::make_unique<Database>(options.wal.obs);
  wal::DurabilityOptions opts = options;
  if (opts.wal.obs == nullptr) opts.wal.obs = db->observability();
  opts.read_only = true;
  opts.checkpoint_interval_ms = 0;
  CADDB_ASSIGN_OR_RETURN(db->recovery_report_,
                         wal::Recover(dir, db.get(), opts));
  db->generation_ = db->recovery_report_.generation;
  db->read_only_ = true;
  return db;
}

Status Database::InitPagedStore(const std::string& dir,
                                const std::map<uint32_t, std::string>& images,
                                const wal::DurabilityOptions& options) {
  if (files_ != nullptr) {
    return FailedPrecondition("paged store is already initialized");
  }
  storage::FileManagerOptions fm;
  fm.read_only = options.read_only;
  fm.fail_after_writes = options.page_fail_after_writes;
  fm.error_at_write = options.page_error_at_write;
  const std::string path =
      (std::filesystem::path(dir) / storage::kPageFileName).string();
  CADDB_ASSIGN_OR_RETURN(files_, storage::FileManager::Open(path, fm));
  if (options.read_only) {
    // Never write a byte: the checkpoint's page images overlay the file on
    // read, healing torn in-place writes without touching them.
    files_->SetOverlay(images);
  } else {
    // Heal: the published images are authoritative over whatever state a
    // crash mid-phase-two left in the file.
    for (const auto& [id, image] : images) {
      CADDB_RETURN_IF_ERROR(files_->WritePage(id, image));
    }
    if (!images.empty()) CADDB_RETURN_IF_ERROR(files_->Sync());
  }
  storage::BufferPoolOptions po;
  po.capacity = options.buffer_pool_pages;
  // The WAL rule: a dirty page may only reach disk once the log explains
  // it. During recovery (no wal yet) pages carry only checkpointed state —
  // flush freely.
  po.flushed_lsn = [this]() {
    return wal_ != nullptr ? wal_->stats().synced_lsn : ~uint64_t{0};
  };
  po.ensure_flushed = [this](uint64_t) {
    return wal_ != nullptr ? wal_->Sync() : OkStatus();
  };
  pool_ = std::make_unique<storage::BufferPool>(files_.get(), std::move(po));
  heap_ = std::make_unique<storage::PagedHeap>(files_.get(), pool_.get());
  CADDB_RETURN_IF_ERROR(heap_->LoadAll(
      [this](uint64_t id, const std::string& payload) -> Status {
        CADDB_ASSIGN_OR_RETURN(std::unique_ptr<DbObject> object,
                               store_codec::DecodeObjectPayload(payload));
        if (object->surrogate().id != id) {
          return InternalError("page record keyed @" + std::to_string(id) +
                               " decodes as @" +
                               std::to_string(object->surrogate().id));
        }
        return store_.AdoptLoadedObject(std::move(object));
      }));
  pager_ = std::make_unique<HeapPager>(heap_.get());
  store_.set_pager(pager_.get());
  store_.set_dirty_tracking(true);
  resident_budget_ = options.resident_object_budget;
  return OkStatus();
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return FailedPrecondition("database is not durable (no wal attached)");
  }
  if (files_ == nullptr) {
    return FailedPrecondition("database has no paged store");
  }
  std::lock_guard<std::mutex> serialize(checkpoint_mu_);
  obs::Span span(&obs_->trace, "wal.checkpoint", m_checkpoint_us_,
                 /*always_time=*/true);

  // Phase 1 — capture, the only part commits wait on: under the store gate,
  // claim the dirty/deleted sets, snapshot the active transactions' undo
  // masks, encode every dirty object (masking uncommitted writes with their
  // before-images), and snapshot the non-paged meta state.
  uint64_t lsn_cap = 0;
  ObjectStore::CheckpointSet set;
  TransactionManager::UndoSnapshot undo;
  std::vector<std::pair<uint64_t, std::string>> encoded;
  wal::CheckpointData data;
  {
    obs::Span pause(&obs_->trace, "wal.checkpoint_pause",
                    m_checkpoint_pause_us_, /*always_time=*/true);
    std::lock_guard<std::mutex> gate(store_gate_);
    lsn_cap = wal_->last_lsn();
    undo = transactions_.SnapshotUndo();
    set = store_.TakeCheckpointSet();
    for (uint64_t id : set.dirty) {
      // Dirty objects are never paged out, so this is a map lookup.
      Result<const DbObject*> object = store_.Get(Surrogate(id));
      if (!object.ok()) continue;  // raced a delete; set.deleted covers it
      auto mask = undo.masks.find(id);
      encoded.emplace_back(
          id, store_codec::EncodeObjectPayload(
                  **object,
                  mask != undo.masks.end() ? &mask->second : nullptr));
    }
    Result<std::string> meta = persist::DumpMeta(*this);
    if (!meta.ok()) {
      store_.RestoreCheckpointSet(std::move(set));
      return meta.status();
    }
    data.meta = std::move(*meta);
    data.replay_from = undo.oldest_begin_lsn;
    // A masked object's page image holds before-images, not its live
    // state: once the spanning transaction commits, the next checkpoint
    // must rewrite it. Re-dirty immediately so that happens.
    ObjectStore::CheckpointSet masked;
    for (const auto& [id, overrides] : undo.masks) {
      if (set.dirty.count(id) > 0) masked.dirty.insert(id);
    }
    store_.RestoreCheckpointSet(std::move(masked));
  }

  // Phase 2 — stage (gate released; commits proceed): apply the batch to
  // pinned buffer-pool pages and capture their images.
  Status staged = OkStatus();
  for (uint64_t id : set.deleted) {
    staged = heap_->Erase(id);
    if (!staged.ok()) break;
  }
  if (staged.ok()) {
    for (const auto& [id, payload] : encoded) {
      staged = heap_->Upsert(id, payload);
      if (!staged.ok()) break;
    }
  }
  if (staged.ok()) {
    data.pages = heap_->CaptureBatchImages(lsn_cap);
    // Phase 3 — the log must durably explain everything up to the covering
    // lsn before the checkpoint claims it.
    staged = wal_->Sync();
  }
  // Phase 4 — atomic publication. The page images ride inside the
  // checkpoint file (double-write journal): after this rename, every
  // in-place page write below is recoverable.
  if (staged.ok()) {
    staged = wal::WriteCheckpointV3(wal_->dir(), lsn_cap, generation_, data);
  }
  if (!staged.ok()) {
    // The batch pages stay pinned and dirty in the pool; the restored set
    // makes the next attempt re-capture and retry them (Erase and Upsert
    // are idempotent).
    std::lock_guard<std::mutex> gate(store_gate_);
    store_.RestoreCheckpointSet(std::move(set));
    CADDB_LOG(&obs_->log, obs::LogLevel::kWarn, "storage",
              "checkpoint attempt failed, dirty set restored: " +
                  staged.ToString());
    return staged;
  }
  m_checkpoints_->Increment();
  CADDB_LOG(&obs_->log, obs::LogLevel::kInfo, "storage",
            "checkpoint published through lsn " + std::to_string(lsn_cap) +
                " (" + std::to_string(encoded.size()) + " object(s), " +
                std::to_string(data.pages.size()) + " page image(s))");

  // Phase 5 — in-place page writes, fsync, unpin. A crash (or torn write)
  // in here is healed from the just-published images on the next open.
  CADDB_RETURN_IF_ERROR(heap_->CompleteBatch());

  // Phase 6 — truncate the log, but never past a record a spanning
  // transaction may still need replayed.
  uint64_t retain = lsn_cap + 1;
  if (undo.oldest_begin_lsn != 0) {
    retain = std::min(retain, undo.oldest_begin_lsn);
  }
  return wal_->RotateAndTruncate(retain);
}

Database::StorageStats Database::storage_stats() const {
  StorageStats out;
  if (files_ == nullptr) return out;
  out.paged = true;
  out.pool = pool_->stats();
  out.heap = heap_->stats();
  out.page_writes = files_->writes();
  std::lock_guard<std::mutex> gate(store_gate_);
  out.resident_objects = store_.resident_objects();
  out.dirty_objects = store_.dirty_objects();
  return out;
}

void Database::StartCheckpointer(uint64_t interval_ms) {
  checkpoint_interval_ms_ = interval_ms;
  stop_checkpointer_ = false;
  checkpointer_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(checkpointer_mu_);
    while (!stop_checkpointer_) {
      checkpointer_cv_.wait_for(
          lock, std::chrono::milliseconds(checkpoint_interval_ms_));
      if (stop_checkpointer_) break;
      lock.unlock();
      // A failed attempt restored the dirty set; the next tick retries.
      (void)Checkpoint();
      lock.lock();
    }
  });
}

void Database::StopCheckpointer() {
  if (!checkpointer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(checkpointer_mu_);
    stop_checkpointer_ = true;
  }
  checkpointer_cv_.notify_all();
  checkpointer_.join();
}

Status Database::Close() {
  StopCheckpointer();
  if (wal_ == nullptr) return OkStatus();
  transactions_.set_wal(nullptr);
  versions_.set_wal(nullptr);
  workspaces_.set_wal(nullptr);
  Status closed = wal_->Close();
  wal_.reset();
  return closed;
}

// ---- Schema ----

Status Database::ExecuteDdl(const std::string& source) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    result = ddl::Parser::ParseSchema(source, &catalog_, &ddl_warnings_);
    if (result.ok() && eager_ddl_validation_) {
      analysis::DiagnosticBag bag = CheckSchema();
      if (bag.HasErrors()) {
        result = FailedPrecondition("schema analysis found " + bag.Summary() +
                                    ":\n" + bag.RenderText());
      }
    }
    if (result.ok()) {
      result = LogOpLocked(Record::Ddl(kAutoCommitTxn, source), &appended);
    }
  }
  return FinishOp(std::move(result), appended);
}

analysis::DiagnosticBag Database::CheckSchema() const {
  const uint64_t epoch = catalog_.schema_epoch();
  if (schema_check_valid_ && schema_check_epoch_ == epoch) {
    ++schema_analyses_skipped_;
    return schema_check_cache_;
  }
  schema_check_cache_ = analysis::AnalyzeSchema(catalog_);
  schema_check_epoch_ = epoch;
  schema_check_valid_ = true;
  ++schema_analyses_run_;
  return schema_check_cache_;
}

analysis::DiagnosticBag Database::CheckStore() const {
  return analysis::AnalyzeStore(store_, &inheritance_);
}

analysis::DiagnosticBag Database::Check() const {
  return analysis::AnalyzeDatabase(store_, &inheritance_);
}

// ---- Convenience forwarding with redo logging ----
//
// Each mutating operation holds the store gate across {mutate, append redo
// record}: a checkpoint capture between the two would snapshot the mutation
// while replay — whose floor is the checkpoint lsn — re-applies the record,
// duplicating a create. The durability wait (FinishOp) runs after the gate
// falls, so a checkpoint capture never waits on an fsync.

Status Database::CreateClass(const std::string& name,
                             const std::string& type) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    result = store_.CreateClass(name, type);
    if (result.ok()) {
      result = LogOpLocked(Record::CreateClass(kAutoCommitTxn, name, type),
                           &appended);
    }
  }
  return FinishOp(std::move(result), appended);
}

Result<Surrogate> Database::CreateObject(const std::string& type,
                                         const std::string& class_name) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Surrogate created;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    Result<Surrogate> made = store_.CreateObject(type, class_name);
    result = made.status();
    if (result.ok()) {
      created = *made;
      result = LogOpLocked(
          Record::CreateObject(kAutoCommitTxn, created.id, type, class_name),
          &appended);
    }
  }
  CADDB_RETURN_IF_ERROR(FinishOp(std::move(result), appended));
  return created;
}

Result<Surrogate> Database::CreateSubobject(Surrogate parent,
                                            const std::string& subclass) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Surrogate created;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    Result<Surrogate> made = inheritance_.CreateSubobject(parent, subclass);
    result = made.status();
    if (result.ok()) {
      created = *made;
      result = LogOpLocked(Record::CreateSubobject(kAutoCommitTxn, created.id,
                                                   parent.id, subclass),
                           &appended);
    }
  }
  CADDB_RETURN_IF_ERROR(FinishOp(std::move(result), appended));
  return created;
}

namespace {

std::map<std::string, std::vector<uint64_t>> ParticipantIds(
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  std::map<std::string, std::vector<uint64_t>> out;
  for (const auto& [role, members] : participants) {
    std::vector<uint64_t>& ids = out[role];
    for (Surrogate m : members) ids.push_back(m.id);
  }
  return out;
}

}  // namespace

Result<Surrogate> Database::CreateRelationship(
    const std::string& rel_type,
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Surrogate created;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    Result<Surrogate> made = store_.CreateRelationship(rel_type, participants);
    result = made.status();
    if (result.ok()) {
      created = *made;
      result = LogOpLocked(
          Record::CreateRelationship(kAutoCommitTxn, created.id, rel_type,
                                     ParticipantIds(participants)),
          &appended);
    }
  }
  CADDB_RETURN_IF_ERROR(FinishOp(std::move(result), appended));
  return created;
}

Result<Surrogate> Database::CreateSubrel(
    Surrogate owner, const std::string& subrel,
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Surrogate created;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    Result<Surrogate> made = store_.CreateSubrel(owner, subrel, participants);
    result = made.status();
    if (result.ok()) {
      created = *made;
      result = LogOpLocked(
          Record::CreateSubrel(kAutoCommitTxn, created.id, owner.id, subrel,
                               ParticipantIds(participants)),
          &appended);
    }
  }
  CADDB_RETURN_IF_ERROR(FinishOp(std::move(result), appended));
  return created;
}

Result<Surrogate> Database::CreateCheckedSubrel(
    Surrogate owner, const std::string& subrel,
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Surrogate member;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    Result<Surrogate> made = store_.CreateSubrel(owner, subrel, participants);
    result = made.status();
    if (result.ok()) {
      member = *made;
      Status where = checker_.CheckSubrelMember(owner, subrel, member);
      if (!where.ok()) {
        // A rejected member nets out to nothing — including in the log.
        Status cleanup = inheritance_.DeleteObject(member);
        (void)cleanup;
        result = where;
      } else {
        result = LogOpLocked(
            Record::CreateSubrel(kAutoCommitTxn, member.id, owner.id, subrel,
                                 ParticipantIds(participants)),
            &appended);
      }
    }
  }
  CADDB_RETURN_IF_ERROR(FinishOp(std::move(result), appended));
  return member;
}

Result<Surrogate> Database::Bind(Surrogate inheritor, Surrogate transmitter,
                                 const std::string& inher_rel_type) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Surrogate created;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    Result<Surrogate> made =
        inheritance_.Bind(inheritor, transmitter, inher_rel_type);
    result = made.status();
    if (result.ok()) {
      created = *made;
      result = LogOpLocked(
          Record::Bind(kAutoCommitTxn, created.id, inheritor.id,
                       transmitter.id, inher_rel_type),
          &appended);
    }
  }
  CADDB_RETURN_IF_ERROR(FinishOp(std::move(result), appended));
  return created;
}

Status Database::Unbind(Surrogate inheritor) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    result = inheritance_.Unbind(inheritor);
    if (result.ok()) {
      result =
          LogOpLocked(Record::Unbind(kAutoCommitTxn, inheritor.id), &appended);
    }
  }
  return FinishOp(std::move(result), appended);
}

Status Database::Set(Surrogate s, const std::string& attr, Value v) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    Value logged = wal_ != nullptr ? v : Value();
    result = inheritance_.SetAttribute(s, attr, std::move(v));
    if (result.ok()) {
      result = LogOpLocked(Record::SetAttribute(kAutoCommitTxn, s.id, attr,
                                                std::move(logged)),
                           &appended);
    }
  }
  return FinishOp(std::move(result), appended);
}

Status Database::Delete(Surrogate s, ObjectStore::DeletePolicy policy) {
  CADDB_RETURN_IF_ERROR(CheckWritable());
  bool appended = false;
  Status result;
  {
    std::lock_guard<std::mutex> gate(store_gate_);
    result = inheritance_.DeleteObject(s, policy);
    if (result.ok()) {
      result = LogOpLocked(
          Record::Delete(
              kAutoCommitTxn, s.id,
              policy == ObjectStore::DeletePolicy::kDetachInheritors),
          &appended);
    }
  }
  return FinishOp(std::move(result), appended);
}

// ---- Gated reads ----

Result<Value> Database::Get(Surrogate s, const std::string& attr) const {
  std::lock_guard<std::mutex> gate(store_gate_);
  return inheritance_.GetAttribute(s, attr);
}

Result<std::vector<Surrogate>> Database::Subclass(
    Surrogate s, const std::string& name) const {
  std::lock_guard<std::mutex> gate(store_gate_);
  return inheritance_.GetSubclass(s, name);
}

Result<bool> Database::Holds(Surrogate s, const std::string& text) const {
  Result<expr::ExprPtr> e = ddl::Parser::ParseConstraintExpression(text);
  if (!e.ok()) return e.status();
  std::lock_guard<std::mutex> gate(store_gate_);
  return checker_.Evaluate(s, **e);
}

}  // namespace caddb

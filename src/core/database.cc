#include "core/database.h"

// Database is header-only glue over the subsystem libraries; this TU exists
// so the facade participates in the build (and catches ODR/include breaks
// early).

namespace caddb {}  // namespace caddb

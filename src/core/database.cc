#include "core/database.h"

#include "analysis/analyzer.h"

namespace caddb {

Status Database::ExecuteDdl(const std::string& source) {
  CADDB_RETURN_IF_ERROR(
      ddl::Parser::ParseSchema(source, &catalog_, &ddl_warnings_));
  if (!eager_ddl_validation_) return OkStatus();
  analysis::DiagnosticBag bag = CheckSchema();
  if (!bag.HasErrors()) return OkStatus();
  return FailedPrecondition("schema analysis found " + bag.Summary() + ":\n" +
                            bag.RenderText());
}

analysis::DiagnosticBag Database::CheckSchema() const {
  return analysis::AnalyzeSchema(catalog_);
}

analysis::DiagnosticBag Database::CheckStore() const {
  return analysis::AnalyzeStore(store_, &inheritance_);
}

analysis::DiagnosticBag Database::Check() const {
  return analysis::AnalyzeDatabase(store_, &inheritance_);
}

}  // namespace caddb

#include "store/store.h"

#include <algorithm>
#include <deque>

namespace caddb {

namespace {

std::string Describe(const DbObject& obj) {
  return std::string(ObjKindName(obj.kind())) + " @" +
         std::to_string(obj.surrogate().id) + " of type '" + obj.type_name() +
         "'";
}

}  // namespace

DbObject* ObjectStore::Find(Surrogate s) {
  auto it = objects_.find(s.id);
  if (it == objects_.end()) return nullptr;
  if (!it->second && !FaultIn(s.id)) return nullptr;
  hot_.insert(s.id);
  return it->second.get();
}

const DbObject* ObjectStore::Find(Surrogate s) const {
  return const_cast<ObjectStore*>(this)->Find(s);
}

bool ObjectStore::FaultIn(uint64_t id) const {
  if (pager_ == nullptr) {
    last_pager_error_ =
        InternalError("object " + std::to_string(id) +
                      " is paged out but no pager is attached");
    return false;
  }
  Result<std::unique_ptr<DbObject>> loaded = pager_->Fetch(id);
  if (!loaded.ok()) {
    last_pager_error_ = loaded.status();
    return false;
  }
  objects_[id] = std::move(loaded).value();
  paged_out_versions_.erase(id);
  return true;
}

void ObjectStore::EnsureAllResident() const {
  for (const auto& [id, obj] : objects_) {
    if (!obj) (void)FaultIn(id);  // failures surface via last_pager_error_
  }
}

void ObjectStore::Touch(DbObject* obj) {
  obj->BumpVersion();
  ++global_version_;
  MarkDirty(obj->surrogate().id);
}

Status ObjectStore::CreateClass(const std::string& class_name,
                                const std::string& object_type) {
  if (class_name.empty()) return InvalidArgument("empty class name");
  if (classes_.count(class_name) > 0) {
    return AlreadyExists("class '" + class_name + "' already exists");
  }
  if (catalog_->FindObjectType(object_type) == nullptr) {
    return NotFound("class '" + class_name + "' names unknown object type '" +
                    object_type + "'");
  }
  classes_[class_name] = ClassInfo{object_type, {}};
  return OkStatus();
}

Result<std::vector<Surrogate>> ObjectStore::ClassMembers(
    const std::string& class_name) const {
  auto it = classes_.find(class_name);
  if (it == classes_.end()) {
    return NotFound("class '" + class_name + "' does not exist");
  }
  return it->second.members;
}

Result<std::string> ObjectStore::ClassType(
    const std::string& class_name) const {
  auto it = classes_.find(class_name);
  if (it == classes_.end()) {
    return NotFound("class '" + class_name + "' does not exist");
  }
  return it->second.object_type;
}

std::vector<std::string> ObjectStore::ClassNames() const {
  std::vector<std::string> out;
  out.reserve(classes_.size());
  for (const auto& [name, info] : classes_) out.push_back(name);
  return out;
}

Result<Surrogate> ObjectStore::NewObjectInternal(const std::string& type_name,
                                                 ObjKind kind) {
  Surrogate s(next_surrogate_++);
  objects_[s.id] = std::make_unique<DbObject>(s, type_name, kind);
  extents_[type_name].push_back(s);
  ++global_version_;
  MarkDirty(s.id);
  return s;
}

Result<Surrogate> ObjectStore::CreateObject(const std::string& type_name,
                                            const std::string& class_name) {
  // Computing the effective schema both validates the type and catches
  // broken inheritor-in declarations before any instance exists.
  Result<const EffectiveSchema*> schema =
      catalog_->FindEffectiveSchema(type_name);
  if (!schema.ok()) return schema.status();

  std::string cls;
  if (!class_name.empty()) {
    auto it = classes_.find(class_name);
    if (it == classes_.end()) {
      return NotFound("class '" + class_name + "' does not exist");
    }
    if (it->second.object_type != type_name) {
      return TypeMismatch("class '" + class_name + "' holds objects of type '" +
                          it->second.object_type + "', not '" + type_name +
                          "'");
    }
    cls = class_name;
  }

  CADDB_ASSIGN_OR_RETURN(Surrogate s,
                         NewObjectInternal(type_name, ObjKind::kObject));
  if (!cls.empty()) {
    classes_[cls].members.push_back(s);
    Find(s)->set_class_name(cls);
  }
  return s;
}

Result<Surrogate> ObjectStore::CreateSubobject(
    Surrogate parent, const std::string& subclass_name) {
  DbObject* owner = Find(parent);
  if (owner == nullptr) {
    return NotFound("no object with surrogate @" + std::to_string(parent.id));
  }

  std::string element_type;
  switch (owner->kind()) {
    case ObjKind::kObject: {
      Result<const EffectiveSchema*> schema =
          catalog_->FindEffectiveSchema(owner->type_name());
      if (!schema.ok()) return schema.status();
      const SubclassDef* def = (*schema)->FindSubclass(subclass_name);
      if (def == nullptr) {
        return NotFound("type '" + owner->type_name() +
                        "' has no subclass '" + subclass_name + "'");
      }
      if ((*schema)->IsInherited(subclass_name)) {
        return InheritedReadOnly(
            "subclass '" + subclass_name + "' of " + Describe(*owner) +
            " is inherited; create the subobject in the transmitter instead");
      }
      element_type = def->element_type;
      break;
    }
    case ObjKind::kRelationship: {
      const RelTypeDef* def = catalog_->FindRelType(owner->type_name());
      if (def == nullptr) {
        return InternalError("relationship object of unregistered type '" +
                             owner->type_name() + "'");
      }
      const SubclassDef* sub = def->FindSubclass(subclass_name);
      if (sub == nullptr) {
        return NotFound("rel-type '" + owner->type_name() +
                        "' has no subclass '" + subclass_name + "'");
      }
      element_type = sub->element_type;
      break;
    }
    case ObjKind::kInherRel: {
      const InherRelTypeDef* def =
          catalog_->FindInherRelType(owner->type_name());
      if (def == nullptr) {
        return InternalError("inher-rel object of unregistered type '" +
                             owner->type_name() + "'");
      }
      const SubclassDef* sub = nullptr;
      for (const auto& s : def->subclasses) {
        if (s.name == subclass_name) {
          sub = &s;
          break;
        }
      }
      if (sub == nullptr) {
        return NotFound("inher-rel-type '" + owner->type_name() +
                        "' has no subclass '" + subclass_name + "'");
      }
      element_type = sub->element_type;
      break;
    }
  }

  Result<const EffectiveSchema*> element_schema =
      catalog_->FindEffectiveSchema(element_type);
  if (!element_schema.ok()) return element_schema.status();

  CADDB_ASSIGN_OR_RETURN(Surrogate s,
                         NewObjectInternal(element_type, ObjKind::kObject));
  DbObject* child = Find(s);
  child->SetParent(parent, subclass_name);
  // `owner` may have been invalidated by map rehash only if objects_ were an
  // unordered container of values; objects are held by unique_ptr, so the
  // pointer is stable. Re-find for clarity regardless.
  owner = Find(parent);
  owner->AddToSubclass(subclass_name, s);
  Touch(owner);
  return s;
}

Status ObjectStore::ValidateParticipants(
    const RelTypeDef& def,
    const std::map<std::string, std::vector<Surrogate>>& participants) const {
  for (const auto& [role, members] : participants) {
    if (def.FindParticipant(role) == nullptr) {
      return InvalidArgument("rel-type '" + def.name + "' has no role '" +
                             role + "'");
    }
  }
  for (const ParticipantDef& p : def.participants) {
    auto it = participants.find(p.role);
    size_t n = it == participants.end() ? 0 : it->second.size();
    if (!p.is_set && n != 1) {
      return InvalidArgument("role '" + def.name + "." + p.role +
                             "' requires exactly one participant, got " +
                             std::to_string(n));
    }
    if (it == participants.end()) continue;
    for (Surrogate m : it->second) {
      const DbObject* obj = Find(m);
      if (obj == nullptr) {
        return NotFound("participant @" + std::to_string(m.id) + " of role '" +
                        p.role + "' does not exist");
      }
      if (!p.object_type.empty() && obj->type_name() != p.object_type) {
        return TypeMismatch("role '" + def.name + "." + p.role +
                            "' requires objects of type '" + p.object_type +
                            "', got " + Describe(*obj));
      }
    }
  }
  return OkStatus();
}

Result<Surrogate> ObjectStore::CreateRelationship(
    const std::string& rel_type,
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  const RelTypeDef* def = catalog_->FindRelType(rel_type);
  if (def == nullptr) {
    return NotFound("rel-type '" + rel_type + "' is not registered");
  }
  CADDB_RETURN_IF_ERROR(ValidateParticipants(*def, participants));

  CADDB_ASSIGN_OR_RETURN(Surrogate s,
                         NewObjectInternal(rel_type, ObjKind::kRelationship));
  DbObject* rel = Find(s);
  for (const auto& [role, members] : participants) {
    rel->SetParticipants(role, members);
    for (Surrogate m : members) where_used_[m.id].insert(s.id);
  }
  return s;
}

Result<Surrogate> ObjectStore::CreateSubrel(
    Surrogate owner_s, const std::string& subrel_name,
    const std::map<std::string, std::vector<Surrogate>>& participants) {
  DbObject* owner = Find(owner_s);
  if (owner == nullptr) {
    return NotFound("no object with surrogate @" + std::to_string(owner_s.id));
  }
  if (owner->kind() != ObjKind::kObject) {
    return InvalidArgument("subrels can only be created in objects, not in " +
                           Describe(*owner));
  }
  Result<const EffectiveSchema*> schema =
      catalog_->FindEffectiveSchema(owner->type_name());
  if (!schema.ok()) return schema.status();
  const SubrelDef* def = (*schema)->FindSubrel(subrel_name);
  if (def == nullptr) {
    return NotFound("type '" + owner->type_name() + "' has no subrel '" +
                    subrel_name + "'");
  }
  CADDB_ASSIGN_OR_RETURN(Surrogate s,
                         CreateRelationship(def->rel_type, participants));
  DbObject* rel = Find(s);
  rel->SetParent(owner_s, subrel_name);
  owner = Find(owner_s);
  owner->AddToSubrel(subrel_name, s);
  Touch(owner);
  return s;
}

Result<Surrogate> ObjectStore::CreateInherRel(
    const std::string& inher_rel_type, Surrogate transmitter_s,
    Surrogate inheritor_s) {
  const InherRelTypeDef* def = catalog_->FindInherRelType(inher_rel_type);
  if (def == nullptr) {
    return NotFound("inher-rel-type '" + inher_rel_type +
                    "' is not registered");
  }
  DbObject* transmitter = Find(transmitter_s);
  if (transmitter == nullptr) {
    return NotFound("transmitter @" + std::to_string(transmitter_s.id) +
                    " does not exist");
  }
  DbObject* inheritor = Find(inheritor_s);
  if (inheritor == nullptr) {
    return NotFound("inheritor @" + std::to_string(inheritor_s.id) +
                    " does not exist");
  }
  if (transmitter->kind() != ObjKind::kObject ||
      inheritor->kind() != ObjKind::kObject) {
    return InvalidArgument(
        "inheritance relates objects; got " + Describe(*transmitter) +
        " and " + Describe(*inheritor));
  }
  if (transmitter->type_name() != def->transmitter_type) {
    return TypeMismatch("inher-rel-type '" + def->name +
                        "' requires transmitter of type '" +
                        def->transmitter_type + "', got " +
                        Describe(*transmitter));
  }
  if (!def->inheritor_type.empty() &&
      inheritor->type_name() != def->inheritor_type) {
    return TypeMismatch("inher-rel-type '" + def->name +
                        "' requires inheritor of type '" +
                        def->inheritor_type + "', got " + Describe(*inheritor));
  }
  // The inheritor's type must declare itself inheritor-in this relationship
  // (paper 4.1: "it must be explicitly stated that the type is an inheritor
  // type in an inheritance relationship").
  const ObjectTypeDef* inheritor_type =
      catalog_->FindObjectType(inheritor->type_name());
  if (inheritor_type == nullptr ||
      inheritor_type->inheritor_in != def->name) {
    return FailedPrecondition("type '" + inheritor->type_name() +
                              "' does not declare inheritor-in '" + def->name +
                              "'");
  }
  if (inheritor->bound_inher_rel().valid()) {
    return AlreadyExists(Describe(*inheritor) +
                         " is already bound to a transmitter");
  }
  // Object-level cycle check: walking transmitters from `transmitter` must
  // never reach `inheritor`.
  Surrogate walk = transmitter_s;
  while (walk.valid()) {
    if (walk == inheritor_s) {
      return CycleError("binding would create an inheritance cycle through @" +
                        std::to_string(inheritor_s.id));
    }
    const DbObject* node = Find(walk);
    if (node == nullptr || !node->bound_inher_rel().valid()) break;
    const DbObject* rel = Find(node->bound_inher_rel());
    if (rel == nullptr) break;
    walk = rel->Participant("transmitter");
  }

  CADDB_ASSIGN_OR_RETURN(Surrogate s,
                         NewObjectInternal(inher_rel_type, ObjKind::kInherRel));
  DbObject* rel = Find(s);
  rel->SetParticipants("transmitter", {transmitter_s});
  rel->SetParticipants("inheritor", {inheritor_s});
  where_used_[transmitter_s.id].insert(s.id);
  where_used_[inheritor_s.id].insert(s.id);
  inheritor = Find(inheritor_s);
  inheritor->set_bound_inher_rel(s);
  Touch(inheritor);
  return s;
}

Result<const DbObject*> ObjectStore::Get(Surrogate s) const {
  const DbObject* obj = Find(s);
  if (obj == nullptr) {
    return NotFound("no object with surrogate @" + std::to_string(s.id));
  }
  return obj;
}

DbObject* ObjectStore::GetMutable(Surrogate s) {
  DbObject* obj = Find(s);
  // The caller may mutate through this pointer; be conservative about what
  // the next checkpoint must re-capture.
  if (obj != nullptr) MarkDirty(s.id);
  return obj;
}

Status ObjectStore::ValidateRefTargets(const Value& v,
                                       const Domain& d) const {
  switch (d.kind()) {
    case Domain::Kind::kRef: {
      if (v.kind() != Value::Kind::kRef) return OkStatus();
      Surrogate target = v.AsRef();
      if (!target.valid()) return OkStatus();  // null reference
      const DbObject* obj = Find(target);
      if (obj == nullptr) {
        return NotFound("reference to nonexistent object @" +
                        std::to_string(target.id));
      }
      if (!d.name().empty() && obj->type_name() != d.name()) {
        return TypeMismatch("reference must target type '" + d.name() +
                            "', got " + Describe(*obj));
      }
      return OkStatus();
    }
    case Domain::Kind::kRecord: {
      if (v.kind() != Value::Kind::kRecord) return OkStatus();
      for (const auto& vf : v.fields()) {
        for (const auto& df : d.record_fields()) {
          if (df.first == vf.first) {
            CADDB_RETURN_IF_ERROR(ValidateRefTargets(vf.second, df.second));
            break;
          }
        }
      }
      return OkStatus();
    }
    case Domain::Kind::kListOf:
    case Domain::Kind::kSetOf:
    case Domain::Kind::kMatrixOf: {
      if (v.kind() != Value::Kind::kList && v.kind() != Value::Kind::kSet &&
          v.kind() != Value::Kind::kMatrix) {
        return OkStatus();
      }
      for (const Value& e : v.elements()) {
        CADDB_RETURN_IF_ERROR(ValidateRefTargets(e, d.element()));
      }
      return OkStatus();
    }
    case Domain::Kind::kNamed: {
      Result<Domain> resolved = catalog_->ResolveDomain(d.name());
      if (!resolved.ok()) return resolved.status();
      return ValidateRefTargets(v, *resolved);
    }
    default:
      return OkStatus();
  }
}

Status ObjectStore::SetAttribute(Surrogate s, const std::string& name,
                                 Value v) {
  DbObject* obj = Find(s);
  if (obj == nullptr) {
    return NotFound("no object with surrogate @" + std::to_string(s.id));
  }

  // Domain copies are cheap (nested structure is shared_ptr-shared); the
  // schema itself comes from the catalog cache and is not copied.
  Domain domain;
  switch (obj->kind()) {
    case ObjKind::kObject: {
      Result<const EffectiveSchema*> schema =
          catalog_->FindEffectiveSchema(obj->type_name());
      if (!schema.ok()) return schema.status();
      const AttributeDef* def = (*schema)->FindAttribute(name);
      if (def == nullptr) {
        return NotFound("type '" + obj->type_name() + "' has no attribute '" +
                        name + "'");
      }
      if ((*schema)->IsInherited(name)) {
        // "The inherited data must not be updated in the inheritor" (paper
        // section 2); updates go through the transmitter.
        return InheritedReadOnly("attribute '" + name + "' of " +
                                 Describe(*obj) +
                                 " is inherited and therefore read-only");
      }
      domain = def->domain;
      break;
    }
    case ObjKind::kRelationship: {
      const RelTypeDef* def = catalog_->FindRelType(obj->type_name());
      const AttributeDef* attr =
          def == nullptr ? nullptr : def->FindAttribute(name);
      if (attr == nullptr) {
        return NotFound("rel-type '" + obj->type_name() +
                        "' has no attribute '" + name + "'");
      }
      domain = attr->domain;
      break;
    }
    case ObjKind::kInherRel: {
      const InherRelTypeDef* def =
          catalog_->FindInherRelType(obj->type_name());
      const AttributeDef* attr =
          def == nullptr ? nullptr : def->FindAttribute(name);
      if (attr == nullptr) {
        return NotFound("inher-rel-type '" + obj->type_name() +
                        "' has no attribute '" + name + "'");
      }
      domain = attr->domain;
      break;
    }
  }

  CADDB_RETURN_IF_ERROR(domain.Validate(v, catalog_));
  CADDB_RETURN_IF_ERROR(ValidateRefTargets(v, domain));
  obj->SetLocalAttribute(name, std::move(v));
  Touch(obj);
  return OkStatus();
}

Result<Value> ObjectStore::GetLocalAttribute(Surrogate s,
                                             const std::string& name) const {
  const DbObject* obj = Find(s);
  if (obj == nullptr) {
    return NotFound("no object with surrogate @" + std::to_string(s.id));
  }
  switch (obj->kind()) {
    case ObjKind::kObject: {
      Result<const EffectiveSchema*> schema =
          catalog_->FindEffectiveSchema(obj->type_name());
      if (!schema.ok()) return schema.status();
      if ((*schema)->FindAttribute(name) == nullptr) {
        return NotFound("type '" + obj->type_name() + "' has no attribute '" +
                        name + "'");
      }
      break;
    }
    case ObjKind::kRelationship: {
      const RelTypeDef* def = catalog_->FindRelType(obj->type_name());
      if (def == nullptr || def->FindAttribute(name) == nullptr) {
        return NotFound("rel-type '" + obj->type_name() +
                        "' has no attribute '" + name + "'");
      }
      break;
    }
    case ObjKind::kInherRel: {
      const InherRelTypeDef* def =
          catalog_->FindInherRelType(obj->type_name());
      if (def == nullptr || def->FindAttribute(name) == nullptr) {
        return NotFound("inher-rel-type '" + obj->type_name() +
                        "' has no attribute '" + name + "'");
      }
      break;
    }
  }
  return obj->LocalAttribute(name);
}

std::vector<Surrogate> ObjectStore::Extent(
    const std::string& type_name) const {
  auto it = extents_.find(type_name);
  if (it == extents_.end()) return {};
  return it->second;
}

std::vector<Surrogate> ObjectStore::ReferencingRelationships(
    Surrogate s) const {
  auto it = where_used_.find(s.id);
  if (it == where_used_.end()) return {};
  std::vector<Surrogate> out;
  out.reserve(it->second.size());
  for (uint64_t id : it->second) out.push_back(Surrogate(id));
  return out;
}

std::vector<Surrogate> ObjectStore::AllObjects() const {
  std::vector<Surrogate> out;
  out.reserve(objects_.size());
  for (const auto& [id, obj] : objects_) out.push_back(Surrogate(id));
  return out;
}

std::vector<Surrogate> ObjectStore::InherRelsOfTransmitter(
    Surrogate s) const {
  std::vector<Surrogate> out;
  auto it = where_used_.find(s.id);
  if (it == where_used_.end()) return out;
  for (uint64_t id : it->second) {
    const DbObject* rel = Find(Surrogate(id));
    if (rel != nullptr && rel->kind() == ObjKind::kInherRel &&
        rel->Participant("transmitter") == s) {
      out.push_back(rel->surrogate());
    }
  }
  return out;
}

void ObjectStore::CollectCascade(Surrogate s, std::set<uint64_t>* out) const {
  std::deque<uint64_t> worklist{s.id};
  while (!worklist.empty()) {
    uint64_t id = worklist.front();
    worklist.pop_front();
    if (!out->insert(id).second) continue;
    const DbObject* obj = Find(Surrogate(id));
    if (obj == nullptr) continue;
    for (const auto& [name, members] : obj->subclasses()) {
      for (Surrogate m : members) worklist.push_back(m.id);
    }
    for (const auto& [name, members] : obj->subrels()) {
      for (Surrogate m : members) worklist.push_back(m.id);
    }
    auto used = where_used_.find(id);
    if (used != where_used_.end()) {
      for (uint64_t rel : used->second) worklist.push_back(rel);
    }
  }
}

std::vector<std::string> ObjectStore::AuditIndexes() const {
  std::vector<std::string> out;
  auto describe = [](uint64_t id) { return "@" + std::to_string(id); };

  // The audit walks the whole primary map; paged-out objects must be
  // resident for it.
  EnsureAllResident();
  for (const auto& [id, obj] : objects_) {
    if (!obj) {
      out.push_back("object " + describe(id) +
                    " is paged out and cannot be loaded (" +
                    last_pager_error_.ToString() + ")");
    }
  }

  // classes_: every listed member is live, of the class's type, claims the
  // class, and is listed once.
  for (const auto& [name, info] : classes_) {
    std::set<uint64_t> seen;
    for (Surrogate m : info.members) {
      const DbObject* obj = Find(m);
      if (obj == nullptr) {
        out.push_back("class '" + name + "' lists dead object " +
                      describe(m.id));
        continue;
      }
      if (!seen.insert(m.id).second) {
        out.push_back("class '" + name + "' lists " + describe(m.id) +
                      " more than once");
      }
      if (obj->type_name() != info.object_type) {
        out.push_back("class '" + name + "' (type '" + info.object_type +
                      "') lists " + describe(m.id) + " of type '" +
                      obj->type_name() + "'");
      }
      if (obj->class_name() != name) {
        out.push_back("class '" + name + "' lists " + describe(m.id) +
                      " which claims class '" + obj->class_name() + "'");
      }
    }
  }
  for (const auto& [id, obj] : objects_) {
    if (!obj || obj->class_name().empty()) continue;
    auto cls = classes_.find(obj->class_name());
    if (cls == classes_.end()) {
      out.push_back("object " + describe(id) + " claims unknown class '" +
                    obj->class_name() + "'");
    } else if (std::find(cls->second.members.begin(),
                         cls->second.members.end(),
                         obj->surrogate()) == cls->second.members.end()) {
      out.push_back("object " + describe(id) + " claims class '" +
                    obj->class_name() + "' but the class does not list it");
    }
  }

  // extents_: membership matches the primary map exactly.
  for (const auto& [type, members] : extents_) {
    std::set<uint64_t> seen;
    for (Surrogate m : members) {
      const DbObject* obj = Find(m);
      if (obj == nullptr) {
        out.push_back("extent of '" + type + "' lists dead object " +
                      describe(m.id));
        continue;
      }
      if (!seen.insert(m.id).second) {
        out.push_back("extent of '" + type + "' lists " + describe(m.id) +
                      " more than once");
      }
      if (obj->type_name() != type) {
        out.push_back("extent of '" + type + "' lists " + describe(m.id) +
                      " of type '" + obj->type_name() + "'");
      }
    }
  }
  for (const auto& [id, obj] : objects_) {
    if (!obj) continue;
    auto ext = extents_.find(obj->type_name());
    if (ext == extents_.end() ||
        std::find(ext->second.begin(), ext->second.end(), obj->surrogate()) ==
            ext->second.end()) {
      out.push_back("object " + describe(id) +
                    " is missing from the extent of '" + obj->type_name() +
                    "'");
    }
  }

  // where_used_: forward entries reference live relationship objects that
  // really have the key as a participant; reverse, every participant link of
  // every relationship object is indexed.
  for (const auto& [target, rels] : where_used_) {
    if (Find(Surrogate(target)) == nullptr) {
      out.push_back("where-used index has an entry for dead object " +
                    describe(target));
    }
    for (uint64_t rel_id : rels) {
      const DbObject* rel = Find(Surrogate(rel_id));
      if (rel == nullptr) {
        out.push_back("where-used entry of " + describe(target) +
                      " names dead relationship " + describe(rel_id));
        continue;
      }
      bool references = false;
      for (const auto& [role, members] : rel->participants()) {
        if (std::find(members.begin(), members.end(), Surrogate(target)) !=
            members.end()) {
          references = true;
          break;
        }
      }
      if (!references) {
        out.push_back("where-used entry of " + describe(target) + " names " +
                      describe(rel_id) +
                      " which has no such participant");
      }
    }
  }
  for (const auto& [id, obj] : objects_) {
    if (!obj || obj->kind() == ObjKind::kObject) continue;
    for (const auto& [role, members] : obj->participants()) {
      for (Surrogate m : members) {
        auto used = where_used_.find(m.id);
        if (used == where_used_.end() || used->second.count(id) == 0) {
          out.push_back("participant " + describe(m.id) +
                        " of relationship " + describe(id) +
                        " is missing from the where-used index");
        }
      }
    }
  }
  return out;
}

void ObjectStore::RepairIndexes() {
  // The membership lists are fully derivable from the primary map; class
  // registrations keep their declared type, and a class that exists only as
  // an object's claim is recreated from that object.
  EnsureAllResident();
  for (auto& [name, info] : classes_) info.members.clear();
  extents_.clear();
  where_used_.clear();
  for (const auto& [id, obj] : objects_) {  // ascending id = creation order
    if (!obj) continue;  // unloadable; AuditIndexes reports the cause
    extents_[obj->type_name()].push_back(obj->surrogate());
    if (!obj->class_name().empty()) {
      ClassInfo& info = classes_[obj->class_name()];
      if (info.object_type.empty()) info.object_type = obj->type_name();
      info.members.push_back(obj->surrogate());
    }
    if (obj->kind() != ObjKind::kObject) {
      for (const auto& [role, members] : obj->participants()) {
        for (Surrogate m : members) where_used_[m.id].insert(id);
      }
    }
  }
  ++global_version_;
}

Status ObjectStore::Delete(Surrogate s, DeletePolicy policy) {
  if (Find(s) == nullptr) {
    return NotFound("no object with surrogate @" + std::to_string(s.id));
  }
  std::set<uint64_t> doomed;
  CollectCascade(s, &doomed);

  // Pre-check before any mutation: a transmitter inside the doomed set must
  // not leave bound inheritors behind under kRestrict.
  std::vector<Surrogate> detach;  // inheritors to unbind under kDetach
  for (uint64_t id : doomed) {
    const DbObject* obj = Find(Surrogate(id));
    if (obj == nullptr || obj->kind() != ObjKind::kInherRel) continue;
    Surrogate transmitter = obj->Participant("transmitter");
    Surrogate inheritor = obj->Participant("inheritor");
    if (doomed.count(inheritor.id) > 0) continue;  // dies along with us
    if (doomed.count(transmitter.id) > 0 &&
        policy == DeletePolicy::kRestrict) {
      return FailedPrecondition(
          "cannot delete: transmitter @" + std::to_string(transmitter.id) +
          " still has bound inheritor @" + std::to_string(inheritor.id) +
          " (use kDetachInheritors to unbind)");
    }
    detach.push_back(inheritor);
  }

  for (Surrogate inheritor : detach) {
    DbObject* obj = Find(inheritor);
    if (obj != nullptr) {
      obj->set_bound_inher_rel(Surrogate::Invalid());
      Touch(obj);
    }
  }

  for (uint64_t id : doomed) {
    DbObject* obj = Find(Surrogate(id));
    if (obj == nullptr) continue;

    // Detach from a surviving parent's member list.
    if (obj->IsSubobject() && doomed.count(obj->parent().id) == 0) {
      DbObject* parent = Find(obj->parent());
      if (parent != nullptr) {
        if (!parent->RemoveFromSubclass(obj->parent_subclass(),
                                        obj->surrogate())) {
          parent->RemoveFromSubrel(obj->parent_subclass(), obj->surrogate());
        }
        Touch(parent);
      }
    }
    // Remove from class extent.
    if (!obj->class_name().empty()) {
      auto cls = classes_.find(obj->class_name());
      if (cls != classes_.end()) {
        auto& members = cls->second.members;
        members.erase(
            std::remove(members.begin(), members.end(), obj->surrogate()),
            members.end());
      }
    }
    // Remove from the per-type extent.
    auto ext = extents_.find(obj->type_name());
    if (ext != extents_.end()) {
      auto& members = ext->second;
      members.erase(
          std::remove(members.begin(), members.end(), obj->surrogate()),
          members.end());
    }
    // Unregister from the where-used index on surviving participants.
    for (const auto& [role, members] : obj->participants()) {
      for (Surrogate m : members) {
        if (doomed.count(m.id) > 0) continue;
        auto used = where_used_.find(m.id);
        if (used != where_used_.end()) used->second.erase(id);
      }
    }
    where_used_.erase(id);
  }

  for (uint64_t id : doomed) {
    objects_.erase(id);
    paged_out_versions_.erase(id);
    hot_.erase(id);
    dirty_.erase(id);
    if (track_dirty_) deleted_.insert(id);
  }
  ++global_version_;
  return OkStatus();
}

ObjectStore::CheckpointSet ObjectStore::TakeCheckpointSet() {
  CheckpointSet out;
  out.dirty.swap(dirty_);
  out.deleted.swap(deleted_);
  return out;
}

void ObjectStore::RestoreCheckpointSet(CheckpointSet set) {
  for (uint64_t id : set.dirty) {
    // An object deleted after the failed capture stays deleted-only.
    if (objects_.count(id) > 0) dirty_.insert(id);
  }
  deleted_.insert(set.deleted.begin(), set.deleted.end());
}

void ObjectStore::MarkAllDirty() {
  for (const auto& [id, obj] : objects_) dirty_.insert(id);
}

Status ObjectStore::AdoptLoadedObject(std::unique_ptr<DbObject> object) {
  uint64_t id = object->surrogate().id;
  if (id == 0) return InternalError("adopted object has no surrogate");
  if (objects_.count(id) > 0) {
    return InternalError("adopted object @" + std::to_string(id) +
                         " already exists");
  }
  objects_[id] = std::move(object);
  if (next_surrogate_ <= id) next_surrogate_ = id + 1;
  return OkStatus();
}

void ObjectStore::SetNextSurrogate(uint64_t next) {
  if (next > next_surrogate_) next_surrogate_ = next;
}

size_t ObjectStore::TrimResident(size_t budget) {
  if (pager_ == nullptr || objects_.empty()) return 0;
  size_t evicted = 0;
  // Second-chance sweep in surrogate order, resuming where the last sweep
  // stopped, bounded at two revolutions per call. Only clean, cold objects
  // whose page record exists may be evicted — a dirty object's only
  // up-to-date state is the in-memory copy.
  size_t steps = objects_.size() * 2;
  auto it = objects_.lower_bound(trim_cursor_);
  while (steps-- > 0 && resident_objects() > budget) {
    if (it == objects_.end()) it = objects_.begin();
    uint64_t id = it->first;
    std::unique_ptr<DbObject>& slot = it->second;
    ++it;
    trim_cursor_ = id + 1;
    if (!slot) continue;
    if (dirty_.count(id) > 0) continue;
    if (hot_.count(id) > 0) {
      hot_.erase(id);  // second chance spent
      continue;
    }
    if (!pager_->Contains(id)) continue;
    paged_out_versions_[id] = slot->version();
    slot.reset();
    ++evicted;
  }
  return evicted;
}

Status ObjectStore::Unbind(Surrogate inheritor_s) {
  DbObject* inheritor = Find(inheritor_s);
  if (inheritor == nullptr) {
    return NotFound("no object with surrogate @" +
                    std::to_string(inheritor_s.id));
  }
  Surrogate rel = inheritor->bound_inher_rel();
  if (!rel.valid()) {
    return FailedPrecondition(Describe(*inheritor) +
                              " is not bound to a transmitter");
  }
  inheritor->set_bound_inher_rel(Surrogate::Invalid());
  Touch(inheritor);
  return Delete(rel, DeletePolicy::kRestrict);
}

}  // namespace caddb

#ifndef CADDB_STORE_OBJECT_H_
#define CADDB_STORE_OBJECT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "values/value.h"

namespace caddb {

/// What a stored object represents. Relationships "are represented by
/// relationship objects" (paper section 3), so all three kinds live uniformly
/// in the store and carry surrogates, attributes and subclasses.
enum class ObjKind {
  kObject,
  kRelationship,
  kInherRel,  // an inheritance-relationship object (transmitter->inheritor)
};

const char* ObjKindName(ObjKind kind);

/// A stored instance: object, relationship object, or inheritance
/// relationship object. Pure data holder; all invariants (domains, schema
/// membership, read-only inherited attributes, cascade rules) are enforced by
/// ObjectStore and the inheritance manager.
class DbObject {
 public:
  DbObject(Surrogate surrogate, std::string type_name, ObjKind kind)
      : surrogate_(surrogate), type_name_(std::move(type_name)), kind_(kind) {}

  DbObject(const DbObject&) = delete;
  DbObject& operator=(const DbObject&) = delete;

  Surrogate surrogate() const { return surrogate_; }
  const std::string& type_name() const { return type_name_; }
  ObjKind kind() const { return kind_; }

  // ---- Containment (subobjects depend on the complex object) ----
  Surrogate parent() const { return parent_; }
  const std::string& parent_subclass() const { return parent_subclass_; }
  bool IsSubobject() const { return parent_.valid(); }
  void SetParent(Surrogate parent, std::string subclass) {
    parent_ = parent;
    parent_subclass_ = std::move(subclass);
  }

  // ---- Top-level class membership ----
  const std::string& class_name() const { return class_name_; }
  void set_class_name(std::string name) { class_name_ = std::move(name); }

  // ---- Attributes (local values only; inherited values are resolved by the
  //      inheritance manager, never stored here) ----
  const std::map<std::string, Value>& attributes() const { return attrs_; }
  /// Null if unset.
  Value LocalAttribute(const std::string& name) const;
  void SetLocalAttribute(const std::string& name, Value v);
  bool HasLocalAttribute(const std::string& name) const;

  // ---- Local subclasses (object subclasses and relationship subclasses) ----
  const std::map<std::string, std::vector<Surrogate>>& subclasses() const {
    return subclasses_;
  }
  const std::map<std::string, std::vector<Surrogate>>& subrels() const {
    return subrels_;
  }
  const std::vector<Surrogate>* Subclass(const std::string& name) const;
  const std::vector<Surrogate>* Subrel(const std::string& name) const;
  void AddToSubclass(const std::string& name, Surrogate member);
  void AddToSubrel(const std::string& name, Surrogate member);
  bool RemoveFromSubclass(const std::string& name, Surrogate member);
  bool RemoveFromSubrel(const std::string& name, Surrogate member);

  // ---- Relationship participants (kRelationship / kInherRel) ----
  const std::map<std::string, std::vector<Surrogate>>& participants() const {
    return participants_;
  }
  const std::vector<Surrogate>* Participants(const std::string& role) const;
  /// First participant of `role`; Invalid if none.
  Surrogate Participant(const std::string& role) const;
  void SetParticipants(const std::string& role, std::vector<Surrogate> ss);

  // ---- Inheritance binding (inheritor side) ----
  /// Surrogate of the inher-rel object binding this object to its
  /// transmitter; Invalid when unbound (type-level inheritance only).
  Surrogate bound_inher_rel() const { return bound_inher_rel_; }
  void set_bound_inher_rel(Surrogate s) { bound_inher_rel_ = s; }

  /// Local-update counter; bumped by the store on every mutation. Used for
  /// inherited-value cache invalidation and for checkin conflict detection.
  uint64_t version() const { return version_; }
  void BumpVersion() { ++version_; }
  /// Restores a persisted counter; only the page codec may call this.
  void set_version(uint64_t v) { version_ = v; }

 private:
  Surrogate surrogate_;
  std::string type_name_;
  ObjKind kind_;

  Surrogate parent_;
  std::string parent_subclass_;
  std::string class_name_;

  std::map<std::string, Value> attrs_;
  std::map<std::string, std::vector<Surrogate>> subclasses_;
  std::map<std::string, std::vector<Surrogate>> subrels_;
  std::map<std::string, std::vector<Surrogate>> participants_;

  Surrogate bound_inher_rel_;
  uint64_t version_ = 0;
};

}  // namespace caddb

#endif  // CADDB_STORE_OBJECT_H_

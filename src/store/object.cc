#include "store/object.h"

#include <algorithm>

namespace caddb {

const char* ObjKindName(ObjKind kind) {
  switch (kind) {
    case ObjKind::kObject:
      return "object";
    case ObjKind::kRelationship:
      return "relationship";
    case ObjKind::kInherRel:
      return "inheritance-relationship";
  }
  return "?";
}

Value DbObject::LocalAttribute(const std::string& name) const {
  auto it = attrs_.find(name);
  return it == attrs_.end() ? Value::Null() : it->second;
}

void DbObject::SetLocalAttribute(const std::string& name, Value v) {
  attrs_[name] = std::move(v);
}

bool DbObject::HasLocalAttribute(const std::string& name) const {
  return attrs_.count(name) > 0;
}

const std::vector<Surrogate>* DbObject::Subclass(
    const std::string& name) const {
  auto it = subclasses_.find(name);
  return it == subclasses_.end() ? nullptr : &it->second;
}

const std::vector<Surrogate>* DbObject::Subrel(const std::string& name) const {
  auto it = subrels_.find(name);
  return it == subrels_.end() ? nullptr : &it->second;
}

void DbObject::AddToSubclass(const std::string& name, Surrogate member) {
  subclasses_[name].push_back(member);
}

void DbObject::AddToSubrel(const std::string& name, Surrogate member) {
  subrels_[name].push_back(member);
}

namespace {

bool RemoveFrom(std::map<std::string, std::vector<Surrogate>>& m,
                const std::string& name, Surrogate member) {
  auto it = m.find(name);
  if (it == m.end()) return false;
  auto& v = it->second;
  auto pos = std::find(v.begin(), v.end(), member);
  if (pos == v.end()) return false;
  v.erase(pos);
  return true;
}

}  // namespace

bool DbObject::RemoveFromSubclass(const std::string& name, Surrogate member) {
  return RemoveFrom(subclasses_, name, member);
}

bool DbObject::RemoveFromSubrel(const std::string& name, Surrogate member) {
  return RemoveFrom(subrels_, name, member);
}

const std::vector<Surrogate>* DbObject::Participants(
    const std::string& role) const {
  auto it = participants_.find(role);
  return it == participants_.end() ? nullptr : &it->second;
}

Surrogate DbObject::Participant(const std::string& role) const {
  const std::vector<Surrogate>* ps = Participants(role);
  if (ps == nullptr || ps->empty()) return Surrogate::Invalid();
  return (*ps)[0];
}

void DbObject::SetParticipants(const std::string& role,
                               std::vector<Surrogate> ss) {
  participants_[role] = std::move(ss);
}

}  // namespace caddb

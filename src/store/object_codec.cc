#include "store/object_codec.h"

#include <sstream>
#include <vector>

#include "persist/value_codec.h"

namespace caddb {
namespace store_codec {

namespace {

void AppendIdList(std::ostringstream* out, const char* tag,
                  const std::map<std::string, std::vector<Surrogate>>& lists) {
  for (const auto& [name, members] : lists) {
    *out << tag << ' ' << name;
    for (Surrogate s : members) *out << ' ' << s.id;
    *out << '\n';
  }
}

Result<std::vector<Surrogate>> ParseIdList(std::istringstream* in) {
  std::vector<Surrogate> out;
  uint64_t id = 0;
  while (*in >> id) out.push_back(Surrogate(id));
  if (!in->eof()) return ParseError("object payload: bad surrogate list");
  return out;
}

}  // namespace

std::string EncodeObjectPayload(
    const DbObject& object,
    const std::map<std::string, Value>* attr_overrides) {
  std::ostringstream out;
  out << "obj " << object.surrogate().id << ' '
      << static_cast<int>(object.kind()) << ' ' << object.type_name() << ' '
      << object.version() << '\n';
  if (!object.class_name().empty()) {
    out << "class " << object.class_name() << '\n';
  }
  if (object.parent().valid()) {
    out << "parent " << object.parent().id << ' ' << object.parent_subclass()
        << '\n';
  }
  if (object.bound_inher_rel().valid()) {
    out << "bound " << object.bound_inher_rel().id << '\n';
  }
  for (const auto& [name, value] : object.attributes()) {
    const Value* effective = &value;
    if (attr_overrides) {
      auto it = attr_overrides->find(name);
      if (it != attr_overrides->end()) effective = &it->second;
    }
    if (effective->is_null()) continue;
    out << "a " << name << ' ' << persist::EncodeValue(*effective) << '\n';
  }
  if (attr_overrides) {
    // Overrides for attributes the object does not hold yet (the transaction
    // wrote a brand-new attribute; its before-image is the absence restored
    // by the null skip above — nothing to add for those, but an override of
    // an existing null-valued map entry was already handled).
    for (const auto& [name, value] : *attr_overrides) {
      if (value.is_null()) continue;
      if (object.attributes().count(name)) continue;
      out << "a " << name << ' ' << persist::EncodeValue(value) << '\n';
    }
  }
  AppendIdList(&out, "sub", object.subclasses());
  AppendIdList(&out, "srel", object.subrels());
  AppendIdList(&out, "part", object.participants());
  out << "end\n";
  return out.str();
}

Result<std::unique_ptr<DbObject>> DecodeObjectPayload(
    const std::string& payload) {
  std::istringstream lines(payload);
  std::string line;
  if (!std::getline(lines, line)) {
    return ParseError("object payload: empty");
  }
  std::istringstream header(line);
  std::string tag;
  uint64_t surrogate = 0;
  int kind_raw = -1;
  std::string type_name;
  uint64_t version = 0;
  header >> tag >> surrogate >> kind_raw >> type_name >> version;
  if (tag != "obj" || header.fail() || surrogate == 0 || kind_raw < 0 ||
      kind_raw > static_cast<int>(ObjKind::kInherRel)) {
    return ParseError("object payload: bad obj header '" + line + "'");
  }
  auto object = std::make_unique<DbObject>(Surrogate(surrogate), type_name,
                                           static_cast<ObjKind>(kind_raw));
  object->set_version(version);
  bool ended = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (ended) return ParseError("object payload: content after end");
    std::istringstream in(line);
    in >> tag;
    if (tag == "end") {
      ended = true;
    } else if (tag == "class") {
      std::string name;
      in >> name;
      if (in.fail()) return ParseError("object payload: bad class line");
      object->set_class_name(name);
    } else if (tag == "parent") {
      uint64_t parent = 0;
      std::string subclass;
      in >> parent >> subclass;
      if (in.fail() || parent == 0) {
        return ParseError("object payload: bad parent line");
      }
      object->SetParent(Surrogate(parent), subclass);
    } else if (tag == "bound") {
      uint64_t bound = 0;
      in >> bound;
      if (in.fail() || bound == 0) {
        return ParseError("object payload: bad bound line");
      }
      object->set_bound_inher_rel(Surrogate(bound));
    } else if (tag == "a") {
      std::string name;
      in >> name;
      if (in.fail()) return ParseError("object payload: bad attribute line");
      std::string rest;
      std::getline(in, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      CADDB_ASSIGN_OR_RETURN(Value value, persist::DecodeValue(rest));
      object->SetLocalAttribute(name, std::move(value));
    } else if (tag == "sub" || tag == "srel" || tag == "part") {
      std::string name;
      in >> name;
      if (in.fail()) return ParseError("object payload: bad list line");
      CADDB_ASSIGN_OR_RETURN(std::vector<Surrogate> members, ParseIdList(&in));
      if (tag == "sub") {
        for (Surrogate s : members) object->AddToSubclass(name, s);
      } else if (tag == "srel") {
        for (Surrogate s : members) object->AddToSubrel(name, s);
      } else {
        object->SetParticipants(name, std::move(members));
      }
    } else {
      return ParseError("object payload: unknown tag '" + tag + "'");
    }
  }
  if (!ended) return ParseError("object payload: missing end line");
  return object;
}

}  // namespace store_codec
}  // namespace caddb

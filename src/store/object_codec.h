#ifndef CADDB_STORE_OBJECT_CODEC_H_
#define CADDB_STORE_OBJECT_CODEC_H_

#include <map>
#include <memory>
#include <string>

#include "store/object.h"
#include "util/result.h"
#include "values/value.h"

namespace caddb {
namespace store_codec {

/// Serializes one DbObject into the line-oriented text payload stored on
/// pages:
///
///   obj <surrogate> <kind> <type> <version>
///   class <name>                 (top-level class membership, if any)
///   parent <surrogate> <subclass>
///   bound <surrogate>
///   a <name> <encoded value>     (persist::EncodeValue)
///   sub <name> <surrogate...>
///   srel <name> <surrogate...>
///   part <role> <surrogate...>
///   end
///
/// Surrogates are stored raw — a page payload is identity-preserving, unlike
/// a portable dump. `attr_overrides` substitutes before-images for attributes
/// a live transaction has uncommitted writes on (checkpoint undo masking);
/// an override mapping a name to a null Value removes the attribute.
std::string EncodeObjectPayload(
    const DbObject& object,
    const std::map<std::string, Value>* attr_overrides = nullptr);

/// Inverse of EncodeObjectPayload.
Result<std::unique_ptr<DbObject>> DecodeObjectPayload(
    const std::string& payload);

}  // namespace store_codec
}  // namespace caddb

#endif  // CADDB_STORE_OBJECT_CODEC_H_

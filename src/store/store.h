#ifndef CADDB_STORE_STORE_H_
#define CADDB_STORE_STORE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "store/object.h"
#include "util/result.h"
#include "util/status.h"

namespace caddb {

/// Demand-paging backend of the ObjectStore. The database wires an adapter
/// over the storage::PagedHeap in here; the store itself stays ignorant of
/// pages, it only knows that a clean object it evicted can be fetched back.
class ObjectPager {
 public:
  virtual ~ObjectPager() = default;
  /// True when `id` has a persisted record (safe to evict a clean copy).
  virtual bool Contains(uint64_t id) const = 0;
  /// Materializes the persisted state of `id`.
  virtual Result<std::unique_ptr<DbObject>> Fetch(uint64_t id) const = 0;
};

/// In-memory object store: owns every object, relationship object and
/// inheritance-relationship object; allocates surrogates; maintains classes,
/// per-type extents and the where-used index; enforces schema/domain rules,
/// the read-only nature of inherited data, and the subobject lifetime rule
/// ("all subobjects depend on the complex object, they are deleted with the
/// complex object", paper section 3).
///
/// Single-writer: the store is not internally synchronized. Concurrency is
/// mediated above it by the transaction manager (locks) and workspaces.
class ObjectStore {
 public:
  /// `catalog` must outlive the store.
  explicit ObjectStore(const Catalog* catalog) : catalog_(catalog) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  const Catalog& catalog() const { return *catalog_; }

  // ---- Classes ("sets of objects belonging to the same object type;
  //      several classes may have objects of the same type") ----
  Status CreateClass(const std::string& class_name,
                     const std::string& object_type);
  Result<std::vector<Surrogate>> ClassMembers(
      const std::string& class_name) const;
  Result<std::string> ClassType(const std::string& class_name) const;
  std::vector<std::string> ClassNames() const;

  // ---- Creation ----
  /// Creates a top-level object of `type_name`, optionally into a class.
  Result<Surrogate> CreateObject(const std::string& type_name,
                                 const std::string& class_name = "");
  /// Creates a subobject in `subclass_name` of `parent` (element type taken
  /// from the owner's schema). Fails with kInheritedReadOnly when the
  /// subclass is inherited — inherited subobjects are created in the
  /// transmitter, never in the inheritor.
  Result<Surrogate> CreateSubobject(Surrogate parent,
                                    const std::string& subclass_name);
  /// Creates a free-standing relationship object relating `participants`
  /// (role -> members). Every declared role must be present; single-valued
  /// roles take exactly one member.
  Result<Surrogate> CreateRelationship(
      const std::string& rel_type,
      const std::map<std::string, std::vector<Surrogate>>& participants);
  /// Creates a relationship object in local relationship subclass
  /// `subrel_name` of `owner`. The subrel's where-clause is checked by the
  /// constraint checker, not here.
  Result<Surrogate> CreateSubrel(
      Surrogate owner, const std::string& subrel_name,
      const std::map<std::string, std::vector<Surrogate>>& participants);
  /// Creates an inheritance-relationship object binding `inheritor` to
  /// `transmitter`. Checks: type compatibility on both ends, the inheritor's
  /// type declares `inheritor-in` this relationship type, the inheritor is
  /// not yet bound, and the binding creates no object-level cycle.
  Result<Surrogate> CreateInherRel(const std::string& inher_rel_type,
                                   Surrogate transmitter, Surrogate inheritor);

  // ---- Deletion ----
  enum class DeletePolicy {
    /// Refuse to delete a transmitter that still has bound inheritors
    /// outside the deleted subtree.
    kRestrict,
    /// Unbind such inheritors (they keep only type-level inheritance).
    kDetachInheritors,
  };
  /// Deletes `s`, cascading to all subobjects/subrels and to every
  /// relationship object referencing anything deleted.
  Status Delete(Surrogate s, DeletePolicy policy = DeletePolicy::kRestrict);
  /// Removes an inheritance binding (the inheritor becomes unbound).
  Status Unbind(Surrogate inheritor);

  // ---- Lookup ----
  Result<const DbObject*> Get(Surrogate s) const;
  DbObject* GetMutable(Surrogate s);
  bool Exists(Surrogate s) const { return objects_.count(s.id) > 0; }
  size_t size() const { return objects_.size(); }

  // ---- Paging & incremental-checkpoint plumbing (driven by Database) ----
  /// Attaches the demand-paging backend. A null entry in the object map is a
  /// paged-out object; lookups fault it back in through the pager. Clean
  /// objects may only be evicted while a pager is attached and already
  /// holds their record.
  void set_pager(const ObjectPager* pager) { pager_ = pager; }
  /// Enables dirty/deleted tracking for incremental checkpoints. Off by
  /// default so purely in-memory stores pay nothing.
  void set_dirty_tracking(bool on) { track_dirty_ = on; }

  struct CheckpointSet {
    std::set<uint64_t> dirty;
    std::set<uint64_t> deleted;
  };
  /// Claims the accumulated dirty/deleted sets for a checkpoint attempt,
  /// resetting the accumulators (mutations from here on count toward the
  /// next checkpoint).
  CheckpointSet TakeCheckpointSet();
  /// Failed-checkpoint path: folds a claimed set back into the accumulators
  /// so the next attempt re-captures it.
  void RestoreCheckpointSet(CheckpointSet set);
  /// Queues every live object as dirty. Migration path: a database restored
  /// from a full-dump (v1/v2) checkpoint has nothing on pages yet; marking
  /// everything dirty makes the first incremental checkpoint write the
  /// whole store out.
  void MarkAllDirty();

  /// Recovery: installs an object decoded from a page with its exact
  /// surrogate, clean (the page still holds it), indexes left to
  /// RepairIndexes. Bumps the surrogate allocator past it.
  Status AdoptLoadedObject(std::unique_ptr<DbObject> object);
  /// Recovery: restores the persisted surrogate allocator position.
  void SetNextSurrogate(uint64_t next);
  uint64_t next_surrogate() const { return next_surrogate_; }

  /// Evicts clean, cold, pager-backed objects until at most `budget` remain
  /// resident (second-chance sweep). Returns how many were paged out.
  size_t TrimResident(size_t budget);
  size_t resident_objects() const {
    return objects_.size() - paged_out_versions_.size();
  }
  size_t dirty_objects() const { return dirty_.size(); }
  size_t deleted_since_checkpoint() const { return deleted_.size(); }
  /// Last demand-paging failure, for diagnostics: a fault-in that fails
  /// surfaces as NotFound to the caller, with the real cause kept here.
  const Status& last_pager_error() const { return last_pager_error_; }

  // ---- Attributes ----
  /// Validates the name against the (effective) schema, rejects writes to
  /// inherited attributes, validates `v` against the attribute domain
  /// including referenced-object type restrictions, then stores locally.
  Status SetAttribute(Surrogate s, const std::string& name, Value v);
  /// Local value only (null when unset); use the inheritance manager for
  /// inheritance-aware reads. NotFound when the schema has no such attribute.
  Result<Value> GetLocalAttribute(Surrogate s, const std::string& name) const;

  // ---- Extents & indexes ----
  /// All live instances of a type (including subobjects).
  std::vector<Surrogate> Extent(const std::string& type_name) const;
  /// Relationship objects (incl. inher-rels) having `s` as a participant.
  std::vector<Surrogate> ReferencingRelationships(Surrogate s) const;
  /// Every live object in ascending surrogate order (creation order).
  std::vector<Surrogate> AllObjects() const;
  /// Inher-rel objects in which `s` is the transmitter.
  std::vector<Surrogate> InherRelsOfTransmitter(Surrogate s) const;

  /// Consistency audit of the secondary indexes (classes, per-type extents,
  /// where-used) against the primary object map, in both directions. Returns
  /// one human-readable description per inconsistency; empty means the
  /// indexes are sound. Read-only — used by the static analyzer (CAD106),
  /// never repairs.
  std::vector<std::string> AuditIndexes() const;

  /// Destructive counterpart of AuditIndexes: rebuilds the class-membership,
  /// per-type-extent and where-used indexes from the primary object map,
  /// which is authoritative (every object carries its type, class claim and
  /// participant links). Classes claimed by an object but missing from the
  /// registry are recreated with the claiming object's type; stale and
  /// duplicate index entries are dropped. `check store --repair` and the
  /// crash-recovery fsck use this as the last resort for CAD101/CAD106
  /// findings.
  void RepairIndexes();

  /// Monotone counter bumped on every mutation; used as a cheap
  /// whole-store invalidation stamp by resolution caches.
  uint64_t global_version() const { return global_version_; }

  /// Sentinel returned by ObjectVersion for objects that are not live.
  static constexpr uint64_t kDeadVersion = ~uint64_t{0};
  /// Per-object mutation counter of `s` — bumped on every attribute,
  /// subclass/subrel and binding mutation of that object — or kDeadVersion
  /// when `s` is not live. Surrogates are never reused, so a
  /// (surrogate, version) pair identifies one observed object state; the
  /// inheritance manager's fine-grained resolution cache validates entries
  /// against these pairs.
  uint64_t ObjectVersion(Surrogate s) const {
    auto it = objects_.find(s.id);
    if (it == objects_.end()) return kDeadVersion;
    if (!it->second) return paged_out_versions_.at(s.id);
    return it->second->version();
  }

 private:
  struct ClassInfo {
    std::string object_type;
    std::vector<Surrogate> members;
  };

  DbObject* Find(Surrogate s);
  const DbObject* Find(Surrogate s) const;
  /// Materializes a paged-out object through the pager. False on failure
  /// (pager missing or I/O error — recorded in last_pager_error_).
  bool FaultIn(uint64_t id) const;
  /// Faults every paged-out object back in (index audit/rebuild walks the
  /// whole primary map).
  void EnsureAllResident() const;
  void MarkDirty(uint64_t id) {
    if (track_dirty_) dirty_.insert(id);
  }
  Result<Surrogate> NewObjectInternal(const std::string& type_name,
                                      ObjKind kind);
  Status ValidateParticipants(
      const RelTypeDef& def,
      const std::map<std::string, std::vector<Surrogate>>& participants) const;
  /// Checks kRef values (recursively) against the domain's object-type
  /// restriction using the live objects' types.
  Status ValidateRefTargets(const Value& v, const Domain& d) const;
  /// Collects `s` plus all transitively contained subobjects/subrels plus
  /// all relationship objects referencing anything collected.
  void CollectCascade(Surrogate s, std::set<uint64_t>* out) const;
  void Touch(DbObject* obj);

  const Catalog* catalog_;
  /// Primary map. A null unique_ptr is a paged-out object: live (surrogate
  /// reserved, indexed, versioned via paged_out_versions_) but resident
  /// only on its page until a lookup faults it in. Mutable because const
  /// lookups fault in.
  mutable std::map<uint64_t, std::unique_ptr<DbObject>> objects_;
  std::map<std::string, ClassInfo> classes_;
  std::map<std::string, std::vector<Surrogate>> extents_;
  std::map<uint64_t, std::set<uint64_t>> where_used_;  // target -> rel objects
  uint64_t next_surrogate_ = 1;
  uint64_t global_version_ = 0;

  // ---- Paging state ----
  const ObjectPager* pager_ = nullptr;
  bool track_dirty_ = false;
  /// Version counters of paged-out objects (exactly the null slots above),
  /// so ObjectVersion answers without a fault-in.
  mutable std::map<uint64_t, uint64_t> paged_out_versions_;
  /// Recently-looked-up ids: one sweep of second chance against trimming.
  mutable std::set<uint64_t> hot_;
  std::set<uint64_t> dirty_;    // mutated since the last checkpoint capture
  std::set<uint64_t> deleted_;  // deleted since the last checkpoint capture
  uint64_t trim_cursor_ = 0;
  mutable Status last_pager_error_;
};

}  // namespace caddb

#endif  // CADDB_STORE_STORE_H_

#include "replication/daemon.h"

#include <chrono>
#include <memory>
#include <random>

namespace caddb {
namespace replication {

namespace {

void EnsureJitterSource(DaemonOptions* options) {
  if (!options->jitter_source) {
    options->jitter_source = [rng = std::make_shared<std::mt19937>(
                                  std::random_device{}())]() mutable {
      return std::uniform_real_distribution<double>(0.0, 1.0)(*rng);
    };
  }
}

uint64_t JitteredIntervalMs(const DaemonOptions& options) {
  uint64_t interval = options.interval_ms;
  if (options.jitter > 0 && interval > 0) {
    const double shave = options.jitter_source() * options.jitter *
                         static_cast<double>(interval);
    interval -= static_cast<uint64_t>(shave);
  }
  return interval;
}

}  // namespace

AutoShipper::AutoShipper(Shipper* shipper, DaemonOptions options)
    : shipper_(shipper), options_(std::move(options)) {
  EnsureJitterSource(&options_);
  thread_ = std::thread([this] { Loop(); });
}

AutoShipper::~AutoShipper() { Stop(); }

void AutoShipper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

AutoShipperStats AutoShipper::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AutoShipper::Loop() {
  while (true) {
    Result<ShipmentReport> report = shipper_->ShipNow();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (report.ok()) {
        ++stats_.ships;
        stats_.last_seq = report->seq;
        stats_.last_shipped_lsn = report->shipped_lsn;
      } else {
        ++stats_.failures;
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t wait_ms = JitteredIntervalMs(options_);
    cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                 [this] { return stop_; });
    if (stop_) return;
  }
}

AutoPoller::AutoPoller(
    Follower* follower, DaemonOptions options,
    std::function<std::unique_lock<std::mutex>()> pause_execution)
    : follower_(follower),
      options_(std::move(options)),
      pause_execution_(std::move(pause_execution)) {
  EnsureJitterSource(&options_);
  thread_ = std::thread([this] { Loop(); });
}

AutoPoller::~AutoPoller() { Stop(); }

void AutoPoller::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

AutoPollerStats AutoPoller::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AutoPoller::Loop() {
  while (true) {
    Result<PollResult> polled = [this] {
      // The swap barrier: while execution is paused no server worker holds
      // a pointer into the database an applying poll is about to replace.
      if (pause_execution_) {
        std::unique_lock<std::mutex> exec = pause_execution_();
        return follower_->Poll();
      }
      return follower_->Poll();
    }();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.polls;
      if (polled.ok()) {
        if (polled->advanced) ++stats_.advances;
      } else {
        ++stats_.failures;
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t wait_ms = JitteredIntervalMs(options_);
    cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                 [this] { return stop_; });
    if (stop_) return;
  }
}

}  // namespace replication
}  // namespace caddb

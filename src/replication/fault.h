#ifndef CADDB_REPLICATION_FAULT_H_
#define CADDB_REPLICATION_FAULT_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/result.h"

namespace caddb {
namespace replication {

/// Shipment-level fault injection: what the transport "does" to one whole
/// shipment attempt. Where wal::FailpointFile cuts a single file at a byte
/// offset, these model the failure modes of copying a *set* of files plus
/// a manifest to another machine. The Shipper applies them; the follower
/// fault-plan matrix in tests/replication_test.cc asserts that every one of
/// them either heals (follower converges to the oracle) or quarantines —
/// never silently diverges.
enum class FaultKind {
  kNone,
  /// Nothing reaches the replica; the attempt vanishes.
  kDrop,
  /// The last shipped file is cut mid-way, but the manifest claims the
  /// full length (a torn transfer the manifest CRCs catch).
  kTruncate,
  /// The manifest is published twice.
  kDuplicate,
  /// This shipment's manifest is withheld and re-published *after* the
  /// next one, so an older seq overwrites a newer (out-of-order delivery).
  kReorder,
  /// One byte of one shipped file is flipped after the copy.
  kCorrupt,
  /// The shipper hangs: the attempt does nothing and publishes nothing.
  kStall,
};

const char* FaultKindName(FaultKind kind);
Result<FaultKind> FaultKindFromName(const std::string& name);

/// Which fault hits which shipment attempt (1-based attempt numbers, as
/// counted by Shipper::attempts()). Attempts without an entry ship clean.
struct FaultPlan {
  std::map<uint64_t, FaultKind> by_attempt;

  FaultKind For(uint64_t attempt) const {
    auto it = by_attempt.find(attempt);
    return it == by_attempt.end() ? FaultKind::kNone : it->second;
  }
  bool empty() const { return by_attempt.empty(); }
};

/// Parses "3:drop,5:corrupt" into a plan (attempt:kind pairs).
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

}  // namespace replication
}  // namespace caddb

#endif  // CADDB_REPLICATION_FAULT_H_

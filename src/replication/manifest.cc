#include "replication/manifest.h"

#include <sstream>

#include "util/string_util.h"
#include "wal/crc32c.h"

namespace caddb {
namespace replication {

namespace {

std::string CrcHex(uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

Result<uint32_t> ParseCrcHex(const std::string& hex) {
  if (hex.size() != 8) return ParseError("bad crc field '" + hex + "'");
  uint32_t crc = 0;
  for (char c : hex) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return ParseError("bad crc field '" + hex + "'");
    }
    crc = (crc << 4) | digit;
  }
  return crc;
}

}  // namespace

std::string Manifest::Encode() const {
  std::string out = "caddb-replica 1 " + std::to_string(seq) + " " +
                    std::to_string(generation) + "\n";
  if (trace.valid()) {
    out += "trace " + std::to_string(trace.trace_id) + " " +
           std::to_string(trace.parent_span_id) + "\n";
  }
  if (!checkpoint.file.empty()) {
    out += "checkpoint " + checkpoint.file + " " +
           std::to_string(checkpoint.lsn) + " " +
           std::to_string(checkpoint.bytes) + " " + CrcHex(checkpoint.crc) +
           "\n";
  }
  if (pagefile.present) {
    out += "pagefile " + pagefile.file + " " + std::to_string(pagefile.bytes) +
           " " + CrcHex(pagefile.crc) + "\n";
  }
  for (const ManifestSegment& seg : segments) {
    out += "segment " + seg.file + " " + std::to_string(seg.start_lsn) + " " +
           std::to_string(seg.last_lsn) + " " + std::to_string(seg.bytes) +
           " " + CrcHex(seg.crc) + (seg.tail ? " tail" : " closed") + "\n";
  }
  out += "end " + CrcHex(wal::Crc32c(out.data(), out.size())) + "\n";
  return out;
}

Result<Manifest> Manifest::Decode(const std::string& text) {
  Manifest manifest;
  std::istringstream in(text);
  std::string line;
  size_t consumed = 0;  // bytes before the current line (for the end CRC)
  bool saw_header = false, saw_end = false;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (!saw_header) {
      uint64_t version = 0;
      if (tag != "caddb-replica" || !(fields >> version >> manifest.seq >>
                                      manifest.generation)) {
        return ParseError("manifest: bad header '" + line + "'");
      }
      if (version != 1) {
        return ParseError("manifest: unsupported version " +
                          std::to_string(version));
      }
      saw_header = true;
    } else if (tag == "trace") {
      if (!(fields >> manifest.trace.trace_id >>
            manifest.trace.parent_span_id)) {
        return ParseError("manifest: bad trace line '" + line + "'");
      }
    } else if (tag == "checkpoint") {
      std::string crc_hex;
      if (!(fields >> manifest.checkpoint.file >> manifest.checkpoint.lsn >>
            manifest.checkpoint.bytes >> crc_hex)) {
        return ParseError("manifest: bad checkpoint line '" + line + "'");
      }
      CADDB_ASSIGN_OR_RETURN(manifest.checkpoint.crc, ParseCrcHex(crc_hex));
    } else if (tag == "pagefile") {
      std::string crc_hex;
      if (!(fields >> manifest.pagefile.file >> manifest.pagefile.bytes >>
            crc_hex)) {
        return ParseError("manifest: bad pagefile line '" + line + "'");
      }
      CADDB_ASSIGN_OR_RETURN(manifest.pagefile.crc, ParseCrcHex(crc_hex));
      manifest.pagefile.present = true;
    } else if (tag == "segment") {
      ManifestSegment seg;
      std::string crc_hex, kind;
      if (!(fields >> seg.file >> seg.start_lsn >> seg.last_lsn >>
            seg.bytes >> crc_hex >> kind) ||
          (kind != "tail" && kind != "closed")) {
        return ParseError("manifest: bad segment line '" + line + "'");
      }
      CADDB_ASSIGN_OR_RETURN(seg.crc, ParseCrcHex(crc_hex));
      seg.tail = kind == "tail";
      manifest.segments.push_back(std::move(seg));
    } else if (tag == "end") {
      std::string crc_hex;
      if (!(fields >> crc_hex)) {
        return ParseError("manifest: bad end line '" + line + "'");
      }
      CADDB_ASSIGN_OR_RETURN(uint32_t expected, ParseCrcHex(crc_hex));
      uint32_t actual = wal::Crc32c(text.data(), consumed);
      if (actual != expected) {
        return ParseError("manifest: end crc mismatch (partial transfer?)");
      }
      saw_end = true;
      break;
    } else {
      return ParseError("manifest: unknown record '" + tag + "'");
    }
    consumed += line.size() + 1;
  }
  if (!saw_header) return ParseError("manifest: empty");
  if (!saw_end) return ParseError("manifest: truncated (no end record)");
  return manifest;
}

Status Manifest::Validate() const {
  for (size_t i = 0; i < segments.size(); ++i) {
    const ManifestSegment& seg = segments[i];
    if (seg.last_lsn < seg.start_lsn) {
      return InternalError("manifest: segment " + seg.file +
                           " ends before it starts");
    }
    if (i == 0) {
      if (checkpoint.lsn != 0 && seg.start_lsn > checkpoint.lsn + 1) {
        return InternalError(
            "manifest: first segment " + seg.file + " starts at lsn " +
            std::to_string(seg.start_lsn) + " but the checkpoint covers " +
            std::to_string(checkpoint.lsn) + " — lsns between are missing");
      }
    } else {
      const ManifestSegment& prev = segments[i - 1];
      if (seg.start_lsn != prev.last_lsn + 1) {
        return InternalError("manifest: seam break between " + prev.file +
                             " (ends " + std::to_string(prev.last_lsn) +
                             ") and " + seg.file + " (starts " +
                             std::to_string(seg.start_lsn) + ")");
      }
    }
    if (seg.tail && i + 1 != segments.size()) {
      return InternalError("manifest: tail segment " + seg.file +
                           " is not the last segment");
    }
  }
  return OkStatus();
}

}  // namespace replication
}  // namespace caddb

#ifndef CADDB_REPLICATION_FOLLOWER_H_
#define CADDB_REPLICATION_FOLLOWER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/database.h"
#include "replication/manifest.h"
#include "util/result.h"
#include "wal/recovery.h"

namespace caddb {
namespace replication {

struct FollowerOptions {
  /// Per-file read attempts before a Poll gives up with kUnavailable.
  uint64_t max_attempts = 5;
  /// Exponential backoff between attempts: initial doubles up to max.
  uint64_t initial_backoff_us = 1000;
  uint64_t max_backoff_us = 64000;
  /// Jitter fraction (0..1) subtracted uniformly from each backoff delay:
  /// an attempt sleeps in [backoff*(1-jitter), backoff]. A fleet of
  /// followers that all lost the same shipment would otherwise retry in
  /// lockstep against the same transport. 0 restores the exact schedule
  /// (tests that assert precise delays pin it).
  double backoff_jitter = 0.5;
  /// Uniform [0,1) source for the jitter; defaults to a per-follower
  /// mt19937. Injectable so tests can pin the draw.
  std::function<double()> jitter_source;
  /// Staging directory for rebuilds; empty means `<replica_dir>/.staged`.
  /// Multiple followers fanning out from one published replica tree must
  /// each stage somewhere distinct — two rebuilds sharing a staging
  /// directory would tear each other's files mid-replay.
  std::string staged_dir;
  /// When non-zero, a read whose wall time exceeds this counts as a failed
  /// attempt even if it eventually returned bytes (a response that arrives
  /// after the deadline is as good as lost).
  uint64_t attempt_timeout_us = 0;
  /// Injectable I/O for tests: file reads (default wal::ReadFileToString),
  /// backoff sleeps (default actually sleeping) and the clock behind the
  /// per-attempt timeout (default steady_clock microseconds).
  std::function<Result<std::string>(const std::string&)> file_reader;
  std::function<void(uint64_t)> sleeper;
  std::function<uint64_t()> clock_us;
  /// Recovery options for each rebuild and for promotion (fsck on by
  /// default — a replica that replays into an inconsistent store must not
  /// serve it).
  wal::DurabilityOptions durability;
  /// Metrics/trace bundle for the follower AND every database it rebuilds
  /// (not owned; must outlive the follower). Null falls back to
  /// durability.wal.obs, then to the process-global obs::Default().
  obs::Observability* obs = nullptr;
};

enum class FollowerState {
  kNeverSynced,  // no manifest applied yet
  kFollowing,    // applying shipped state as it arrives
  kQuarantined,  // divergence detected; refuses to apply anything further
  kPromoted,     // Promote() succeeded; this follower is finished
};

const char* FollowerStateName(FollowerState state);

/// What one Poll did.
struct PollResult {
  bool advanced = false;      // a new manifest was applied
  uint64_t manifest_seq = 0;  // last applied manifest seq
  uint64_t replay_lsn = 0;    // last lsn replayed into db()
  uint64_t read_attempts = 0; // file-read attempts this poll spent
};

/// Replica-side log shipping: tails the replica directory's MANIFEST and
/// materializes each new shipment as a read-only Database.
///
/// Each applied manifest is a *full rebuild*: the follower copies the
/// CRC-validated byte prefixes into `<replica>/.staged/` and replays them
/// with wal::Recover from scratch. Incremental replay on top of the
/// previous state would be unsound — the previous rebuild discarded
/// transactions that were uncommitted at its cut point, and their commit
/// markers may arrive in the next shipment. Rebuilds are what make
/// catch-up after falling behind a checkpoint truncation automatic: the
/// new checkpoint is simply the next manifest's anchor.
///
/// Failure handling, in increasing severity:
///  - Transient: unreadable/torn/CRC-mismatched files (a shipment still in
///    flight, a dropped or corrupted transfer). Retried with capped
///    exponential backoff and per-attempt timeouts; a poll that exhausts
///    its attempts returns kUnavailable and the *previous* database stays
///    served. Never quarantines.
///  - Stale: a manifest whose seq is not beyond the last applied one
///    (duplicate or reordered publication). Ignored.
///  - Divergence: the primary's history is no longer the history this
///    follower applied. Detected by generation regression (CAD201),
///    checkpoint-anchor regression within a generation (CAD202), a
///    replayed-prefix fingerprint mismatch or shrinking prefix (CAD203),
///    a structurally inconsistent manifest (CAD204), or CRC-valid state
///    that fails replay/fsck (CAD205). The follower quarantines itself:
///    the diagnostic is persisted to `<replica>/QUARANTINE`, every later
///    Poll/Promote refuses, and the divergent data is never applied.
class Follower {
 public:
  explicit Follower(std::string replica_dir, FollowerOptions options = {});

  /// One catch-up cycle: read the manifest, fetch + validate what it
  /// references, rebuild. No new manifest is not an error (advanced stays
  /// false).
  Result<PollResult> Poll();

  /// Turns a caught-up replica into a writable primary: a final Poll
  /// (transient failures ignored — the old primary is typically dead), then
  /// a full Database::Open over the staged state, which replays, runs
  /// fsck, publishes a fresh checkpoint and starts a new log generation.
  /// The returned database's durability directory is `<replica>/.staged`.
  /// Refuses for a quarantined or never-synced replica. The follower is
  /// finished afterwards (state kPromoted).
  Result<std::unique_ptr<Database>> Promote();

  /// The read-only database of the last applied manifest (null before the
  /// first successful Poll and after Promote). Replaced wholesale by every
  /// applying Poll — callers must re-fetch after each Poll, not cache.
  Database* db() { return db_.get(); }

  /// Operator workflow for a quarantined replica (`replica reseed` in the
  /// shell): accepts the primary's *current* history as the new truth and
  /// re-stages from scratch. Forgets the divergence baseline (seq,
  /// generation, anchor, fingerprint), clears the in-memory quarantine and
  /// runs one full Poll; only a successful rebuild deletes the persisted
  /// QUARANTINE verdict. If the rebuild does not complete (transport down,
  /// no manifest, or a fresh divergence), the original verdict is restored
  /// — a reseed that went nowhere must not silently unlock the replica.
  /// Fails with kFailedPrecondition when the replica is not quarantined.
  Result<PollResult> Reseed();

  FollowerState state() const { return state_; }
  /// "CAD201".."CAD205" once quarantined, empty otherwise.
  const std::string& quarantine_code() const { return quarantine_code_; }
  const std::string& quarantine_reason() const { return quarantine_reason_; }
  ReplicaInfo replica_info() const;
  const std::string& replica_dir() const { return replica_dir_; }
  const std::string& staged_dir() const { return staged_dir_; }

 private:
  /// Reads `path`, retrying transient failures (including `validate`
  /// rejections and over-deadline responses) with capped exponential
  /// backoff. Accumulates attempts into `result->read_attempts`.
  Result<std::string> ReadWithRetry(
      const std::string& path,
      const std::function<Status(const std::string&)>& validate,
      PollResult* result);

  /// Enters quarantine: persists the diagnostic, flips the state, and
  /// returns the kFailedPrecondition every later call reports.
  Status Quarantine(const std::string& code, const std::string& reason);

  const std::string replica_dir_;
  const std::string staged_dir_;
  FollowerOptions options_;

  obs::Observability* obs_;
  obs::Counter* m_polls_;
  obs::Counter* m_rebuilds_;
  obs::Counter* m_retries_;
  obs::Counter* m_quarantines_;
  obs::Counter* m_reseeds_;
  obs::Gauge* m_lag_;
  obs::Histogram* m_poll_us_;
  obs::Histogram* m_rebuild_us_;

  std::unique_ptr<Database> db_;
  FollowerState state_ = FollowerState::kNeverSynced;
  std::string quarantine_code_;
  std::string quarantine_reason_;

  // Applied-manifest bookkeeping (the divergence baseline).
  uint64_t last_seq_ = 0;
  uint64_t generation_ = 0;
  uint64_t anchor_lsn_ = 0;    // checkpoint lsn of the applied manifest
  uint64_t replay_lsn_ = 0;    // recovery_report().last_lsn of the rebuild
  uint32_t fingerprint_ = 0;   // applied_fingerprint of the rebuild
  uint64_t shipped_lsn_ = 0;
};

}  // namespace replication
}  // namespace caddb

#endif  // CADDB_REPLICATION_FOLLOWER_H_

#ifndef CADDB_REPLICATION_MANIFEST_H_
#define CADDB_REPLICATION_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/result.h"

namespace caddb {
namespace replication {

/// The replica directory's table of contents, published atomically by the
/// Shipper after every shipment (temp + rename, like a checkpoint). Text
/// format, one record per line:
///
///   caddb-replica 1 <seq> <generation>
///   trace <trace-id> <span-id>
///   checkpoint <file> <lsn> <bytes> <crc32c-hex>
///   pagefile <file> <bytes> <crc32c-hex>
///   segment <file> <start-lsn> <last-lsn> <bytes> <crc32c-hex> <closed|tail>
///   end <crc32c-hex>
///
/// The optional `trace` record is the distributed-trace link: the context
/// of the last commit the shipment covers (captured by the Wal, stamped by
/// the Shipper). A follower parents its rebuild span on it, so a trace
/// tree started in a client spans primary commit → ship → rebuild.
/// Old manifests simply omit the line; the end CRC covers it when present.
///
/// `seq` increases with every publication — a follower that has applied
/// seq S ignores any manifest with seq <= S, which is what makes reordered
/// or duplicated publications harmless. `generation` is the primary's log
/// generation (see wal/checkpoint.h). Segment `bytes`/`crc` describe the
/// *shipped* byte prefix, which for the live tail segment is its valid
/// frame prefix at shipping time, not the whole file. The `end` line's CRC
/// covers every preceding byte of the manifest, so a partially transferred
/// manifest is detected even on transports without atomic rename.
constexpr char kManifestFileName[] = "MANIFEST";

struct ManifestCheckpoint {
  std::string file;
  uint64_t lsn = 0;
  uint64_t bytes = 0;
  uint32_t crc = 0;
};

/// The primary's page file (pages.db), shipped whole. Present only when the
/// primary runs the paged store (incremental v3 checkpoints) — its object
/// payloads live here, not in the checkpoint file, so a follower cannot
/// replay without it. The shipper snapshots it under the primary's
/// checkpoint pause so the (checkpoint, pagefile) pair is mutually
/// consistent.
struct ManifestPageFile {
  std::string file;
  uint64_t bytes = 0;
  uint32_t crc = 0;
  bool present = false;
};

struct ManifestSegment {
  std::string file;
  uint64_t start_lsn = 0;
  uint64_t last_lsn = 0;  // last lsn within the shipped prefix
  uint64_t bytes = 0;     // shipped prefix length, not on-primary file size
  uint32_t crc = 0;       // over the shipped prefix
  bool tail = false;      // still the primary's live segment when shipped
};

struct Manifest {
  uint64_t seq = 0;
  uint64_t generation = 0;
  /// Originating-commit trace context (invalid when the primary traced
  /// nothing — the line is omitted from the encoding).
  obs::TraceContext trace;
  ManifestCheckpoint checkpoint;
  ManifestPageFile pagefile;
  std::vector<ManifestSegment> segments;

  /// Newest lsn this manifest makes reachable.
  uint64_t shipped_lsn() const {
    return segments.empty() ? checkpoint.lsn : segments.back().last_lsn;
  }

  std::string Encode() const;
  /// Rejects bad magic/version, malformed lines and a mismatched end CRC
  /// (all kParseError — the follower treats that as a transient transfer
  /// problem, not divergence).
  static Result<Manifest> Decode(const std::string& text);

  /// Structural soundness of a decoded manifest: segments ordered and
  /// seam-continuous, first segment anchored at most one lsn past the
  /// checkpoint, only the final segment marked tail. A violation is real
  /// divergence territory (CAD204) — the primary published nonsense — so
  /// it is separate from Decode's transient errors.
  Status Validate() const;
};

}  // namespace replication
}  // namespace caddb

#endif  // CADDB_REPLICATION_MANIFEST_H_

#include "replication/shipper.h"

#include <filesystem>
#include <vector>

#include "core/database.h"
#include "fault/failpoint.h"
#include "storage/file_manager.h"
#include "wal/checkpoint.h"
#include "wal/crc32c.h"
#include "wal/log_io.h"

namespace caddb {
namespace replication {

namespace fs = std::filesystem;

Shipper::Shipper(Database* db, std::string replica_dir,
                 ShipperOptions options)
    : db_(db), replica_dir_(std::move(replica_dir)),
      options_(std::move(options)),
      obs_(db != nullptr ? db->observability() : obs::Default()) {
  m_attempts_ = obs_->metrics.GetCounter(
      "caddb_replication_ship_attempts_total",
      "Shipment attempts (including ones a fault plan swallowed)");
  m_files_ = obs_->metrics.GetCounter(
      "caddb_replication_ship_files_total",
      "Files copied into the replica directory");
  m_bytes_ = obs_->metrics.GetCounter("caddb_replication_ship_bytes_total",
                                      "Bytes copied into the replica "
                                      "directory");
  m_ship_us_ = obs_->metrics.GetHistogram(
      "caddb_replication_ship_us", "One shipment attempt, end to end");
}

Result<ShipmentReport> Shipper::ShipNow() {
  // A fresh Shipper (primary restart) must not restart the manifest seq:
  // a follower that already applied a higher seq would ignore every new
  // shipment as stale. Continue from whatever the replica last saw.
  if (!seq_seeded_) {
    seq_seeded_ = true;
    Result<std::string> existing = wal::ReadFileToString(
        (fs::path(replica_dir_) / kManifestFileName).string());
    if (existing.ok()) {
      Result<Manifest> decoded = Manifest::Decode(*existing);
      if (decoded.ok() && decoded->seq > attempts_) attempts_ = decoded->seq;
    }
  }
  ShipmentReport report;
  ++attempts_;
  obs::Span span(&obs_->trace, "replication.ship", m_ship_us_,
                 /*always_time=*/true);
  m_attempts_->Increment();
  report.fault = options_.faults.For(attempts_);
  // The registry site is the runtime-armable face of the same per-attempt
  // matrix: an armed `replication.ship` action maps onto the FaultKind the
  // static plan would have carried (the plan, when both are set, wins).
  fault::FiredAction shipfault;
  if (report.fault == FaultKind::kNone &&
      fault::Hit(fault::sites::kReplicationShip, &shipfault)) {
    switch (shipfault.kind) {
      case fault::ActionKind::kDrop:
        report.fault = FaultKind::kDrop;
        break;
      case fault::ActionKind::kTruncate:
        report.fault = FaultKind::kTruncate;
        break;
      case fault::ActionKind::kDuplicate:
        report.fault = FaultKind::kDuplicate;
        break;
      case fault::ActionKind::kReorder:
        report.fault = FaultKind::kReorder;
        break;
      case fault::ActionKind::kCorrupt:
        report.fault = FaultKind::kCorrupt;
        break;
      case fault::ActionKind::kStall:
        report.fault = FaultKind::kStall;
        break;
      case fault::ActionKind::kDelay:
        fault::FailpointRegistry::Global().SleepFor(shipfault.delay_us);
        break;
      default:
        return Unavailable("failpoint replication.ship: injected failure" +
                           (shipfault.message.empty()
                                ? std::string()
                                : ": " + shipfault.message));
    }
  }
  if (report.fault == FaultKind::kStall) {
    return report;  // the transport hung; nothing reaches the replica
  }
  if (db_ == nullptr || !db_->durable()) {
    return FailedPrecondition("shipper needs a durably opened primary");
  }
  if (options_.sync_before_ship) {
    CADDB_RETURN_IF_ERROR(db_->wal()->Sync());
  }
  const std::string& wal_dir = db_->wal()->dir();

  // Assemble the shipment in memory first: the newest checkpoint plus the
  // valid frame prefix of every segment. Reading the live tail mid-append
  // is safe — DecodeFrames stops at the first incomplete frame, and the
  // prefix before it is immutable (the log is append-only).
  Manifest manifest;
  manifest.seq = attempts_;
  manifest.generation = db_->generation();
  // The distributed-trace link: the last commit's context, so a follower's
  // rebuild span joins the tree of the client request that caused it.
  manifest.trace = db_->wal()->last_commit_context();

  struct ShipFile {
    std::string name;
    std::string bytes;
  };
  std::vector<ShipFile> files;
  {
    // A checkpoint rewrites pages.db in place (phase two) and truncates
    // segments; snapshotting the whole shipment under the checkpoint pause
    // keeps the (checkpoint, pagefile, segments) triple mutually
    // consistent. Appends to the live tail continue — DecodeFrames stops
    // at the first incomplete frame, and the prefix before it is
    // immutable (the log is append-only).
    std::unique_lock<std::mutex> pause = db_->PauseCheckpoints();

    std::vector<wal::CheckpointFileInfo> checkpoints =
        wal::ListCheckpoints(wal_dir);
    if (checkpoints.empty()) {
      return FailedPrecondition("primary has no checkpoint to ship");
    }
    const wal::CheckpointFileInfo& newest = checkpoints.back();
    CADDB_ASSIGN_OR_RETURN(std::string checkpoint_bytes,
                           wal::ReadFileToString(newest.path));
    manifest.checkpoint.file = fs::path(newest.path).filename().string();
    manifest.checkpoint.lsn = newest.lsn;
    manifest.checkpoint.bytes = checkpoint_bytes.size();
    manifest.checkpoint.crc =
        wal::Crc32c(checkpoint_bytes.data(), checkpoint_bytes.size());
    files.push_back({manifest.checkpoint.file, std::move(checkpoint_bytes)});

    // The page file carries the object payloads an incremental checkpoint
    // does not: without it the shipped state cannot replay.
    const std::string pagefile_path =
        (fs::path(wal_dir) / storage::kPageFileName).string();
    Result<std::string> page_bytes = wal::ReadFileToString(pagefile_path);
    if (page_bytes.ok()) {
      manifest.pagefile.file = storage::kPageFileName;
      manifest.pagefile.bytes = page_bytes->size();
      manifest.pagefile.crc =
          wal::Crc32c(page_bytes->data(), page_bytes->size());
      manifest.pagefile.present = true;
      files.push_back({manifest.pagefile.file, std::move(*page_bytes)});
    } else if (page_bytes.status().code() != Code::kNotFound) {
      return page_bytes.status();
    }

    const uint64_t live_start = db_->wal()->stats().segment_start_lsn;
    for (const wal::SegmentFileInfo& segment : wal::ListSegments(wal_dir)) {
      CADDB_ASSIGN_OR_RETURN(std::string bytes,
                             wal::ReadFileToString(segment.path));
      wal::SegmentContents contents = wal::DecodeFrames(bytes);
      if (contents.frames.empty()) continue;  // nothing durable to ship yet
      bytes.resize(contents.frames.back().end_offset);
      ManifestSegment seg;
      seg.file = fs::path(segment.path).filename().string();
      seg.start_lsn = segment.start_lsn;
      seg.last_lsn = contents.frames.back().lsn;
      seg.bytes = bytes.size();
      seg.crc = wal::Crc32c(bytes.data(), bytes.size());
      seg.tail = segment.start_lsn == live_start;
      manifest.segments.push_back(seg);
      files.push_back({seg.file, std::move(bytes)});
    }
  }

  report.seq = manifest.seq;
  report.shipped_lsn = manifest.shipped_lsn();
  if (report.fault == FaultKind::kDrop) {
    return report;  // the whole attempt vanished in transit
  }

  std::error_code ec;
  fs::create_directories(replica_dir_, ec);
  if (ec) {
    return InternalError("cannot create replica dir " + replica_dir_ + ": " +
                         ec.message());
  }

  // Copy with self-healing: a replica file already holding the intended
  // bytes is skipped; anything else (missing, torn by a previous kTruncate,
  // flipped by a previous kCorrupt) is atomically replaced.
  const size_t fault_file = files.size() - 1;  // newest data takes the hit
  for (size_t i = 0; i < files.size(); ++i) {
    std::string to_write = files[i].bytes;
    if (report.fault == FaultKind::kTruncate && i == fault_file) {
      to_write.resize(to_write.size() / 2);
    } else if (report.fault == FaultKind::kCorrupt && i == fault_file &&
               !to_write.empty()) {
      to_write[to_write.size() / 2] ^= 0x40;
    }
    const std::string target =
        (fs::path(replica_dir_) / files[i].name).string();
    Result<std::string> existing = wal::ReadFileToString(target);
    if (existing.ok() && *existing == to_write) continue;
    if (existing.ok()) ++report.files_healed;
    CADDB_RETURN_IF_ERROR(wal::AtomicWriteFile(target, to_write));
    ++report.files_copied;
    report.bytes_copied += to_write.size();
  }
  m_files_->Increment(report.files_copied);
  m_bytes_->Increment(report.bytes_copied);
  span.AddAttribute("seq", report.seq);
  span.AddAttribute("shipped_lsn", report.shipped_lsn);
  CADDB_LOG(&obs_->log, obs::LogLevel::kInfo, "replication",
            "shipped seq " + std::to_string(report.seq) + " through lsn " +
                std::to_string(report.shipped_lsn) + " (" +
                std::to_string(report.files_copied) + " file(s), " +
                std::to_string(report.bytes_copied) + " bytes)");

  // Publish. kReorder withholds this manifest and lets the *next* attempt
  // re-publish it after its own — the classic late datagram.
  const std::string encoded = manifest.Encode();
  const std::string manifest_path =
      (fs::path(replica_dir_) / kManifestFileName).string();
  if (report.fault == FaultKind::kReorder) {
    reorder_stash_ = encoded;
    return report;
  }
  CADDB_RETURN_IF_ERROR(
      fault::Inject(fault::sites::kReplicationShipManifest));
  CADDB_RETURN_IF_ERROR(wal::AtomicWriteFile(manifest_path, encoded));
  if (report.fault == FaultKind::kDuplicate) {
    CADDB_RETURN_IF_ERROR(wal::AtomicWriteFile(manifest_path, encoded));
  }
  if (!reorder_stash_.empty()) {
    CADDB_RETURN_IF_ERROR(
        wal::AtomicWriteFile(manifest_path, reorder_stash_));
    reorder_stash_.clear();
  }

  // Garbage-collect replica files the manifest no longer references
  // (segments truncated away, superseded checkpoints) — but only after a
  // clean publish, so a follower mid-catch-up on the previous manifest
  // never races a deletion of files it was promised.
  if (report.fault == FaultKind::kNone ||
      report.fault == FaultKind::kDuplicate) {
    for (const fs::directory_entry& entry :
         fs::directory_iterator(replica_dir_, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      const std::string name = entry.path().filename().string();
      const bool shippable =
          (name.rfind("wal-", 0) == 0 &&
           name.size() > 4 && name.substr(name.size() - 4) == ".log") ||
          (name.rfind("checkpoint-", 0) == 0 &&
           name.size() > 3 && name.substr(name.size() - 3) == ".db");
      if (!shippable) continue;
      bool referenced = name == manifest.checkpoint.file;
      for (const ManifestSegment& seg : manifest.segments) {
        referenced = referenced || name == seg.file;
      }
      if (referenced) continue;
      if (fs::remove(entry.path(), ec)) ++report.files_deleted;
    }
  }
  return report;
}

wal::SegmentCloseHook Shipper::MakeCloseHook() {
  return [this](const wal::ClosedSegment&) {
    // Shipment failures are self-healing on the next attempt; rotation on
    // the primary must not fail because the replica directory hiccuped.
    (void)ShipNow();
  };
}

}  // namespace replication
}  // namespace caddb

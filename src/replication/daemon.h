#ifndef CADDB_REPLICATION_DAEMON_H_
#define CADDB_REPLICATION_DAEMON_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "replication/follower.h"
#include "replication/shipper.h"

namespace caddb {
namespace replication {

/// Cadence for a replication daemon thread.
struct DaemonOptions {
  uint64_t interval_ms = 200;
  /// Jitter fraction (0..1) of the interval, subtracted uniformly: each
  /// sleep lands in [interval*(1-jitter), interval], so a fleet of
  /// followers started together does not poll the primary in lockstep.
  double jitter = 0.25;
  /// Uniform [0,1) source behind the jitter; injectable for tests.
  std::function<double()> jitter_source;
};

struct AutoShipperStats {
  uint64_t ships = 0;     // successful ShipNow calls
  uint64_t failures = 0;  // ShipNow errors (retried next tick)
  uint64_t last_seq = 0;
  uint64_t last_shipped_lsn = 0;
};

/// Background shipping on the primary: calls Shipper::ShipNow on a jittered
/// interval, replacing the shell's manual `ship`. Safe alongside commits —
/// ShipNow pauses checkpoints while snapshotting and reads only the
/// append-only valid prefix of the live segment. Errors are counted and
/// retried on the next tick; shipping is idempotent and self-healing.
class AutoShipper {
 public:
  /// `shipper` is not owned and must outlive the daemon. The thread starts
  /// immediately and ships once right away (a follower waiting on the first
  /// manifest should not wait a full interval).
  AutoShipper(Shipper* shipper, DaemonOptions options = {});
  ~AutoShipper();

  AutoShipper(const AutoShipper&) = delete;
  AutoShipper& operator=(const AutoShipper&) = delete;

  /// Stops and joins the thread. Idempotent; the destructor calls it.
  void Stop();

  AutoShipperStats stats() const;

 private:
  void Loop();

  Shipper* shipper_;
  DaemonOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  AutoShipperStats stats_;
  std::thread thread_;
};

struct AutoPollerStats {
  uint64_t polls = 0;     // Poll calls made
  uint64_t advances = 0;  // polls that applied a new manifest
  uint64_t failures = 0;  // polls that errored (transient or quarantine)
};

/// Background catch-up on a follower: calls Follower::Poll on a jittered
/// interval, replacing the shell's manual `replica poll`. When the follower
/// is served by a net::Server, wire the server's PauseExecution through
/// `pause_execution` — every applying poll replaces the follower's Database
/// wholesale, and the swap must not free an instance a server worker is
/// reading. A quarantined follower keeps ticking (and counting failures)
/// so an operator reseed resumes automatically.
class AutoPoller {
 public:
  /// `follower` is not owned and must outlive the daemon. Polls once
  /// immediately.
  AutoPoller(Follower* follower, DaemonOptions options = {},
             std::function<std::unique_lock<std::mutex>()> pause_execution =
                 nullptr);
  ~AutoPoller();

  AutoPoller(const AutoPoller&) = delete;
  AutoPoller& operator=(const AutoPoller&) = delete;

  /// Stops and joins the thread. Idempotent; the destructor calls it.
  void Stop();

  AutoPollerStats stats() const;

 private:
  void Loop();

  Follower* follower_;
  DaemonOptions options_;
  std::function<std::unique_lock<std::mutex>()> pause_execution_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  AutoPollerStats stats_;
  std::thread thread_;
};

}  // namespace replication
}  // namespace caddb

#endif  // CADDB_REPLICATION_DAEMON_H_

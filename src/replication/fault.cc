#include "replication/fault.h"

#include <sstream>

#include "util/string_util.h"

namespace caddb {
namespace replication {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kStall:
      return "stall";
  }
  return "unknown";
}

Result<FaultKind> FaultKindFromName(const std::string& name) {
  if (name == "none") return FaultKind::kNone;
  if (name == "drop") return FaultKind::kDrop;
  if (name == "truncate") return FaultKind::kTruncate;
  if (name == "duplicate") return FaultKind::kDuplicate;
  if (name == "reorder") return FaultKind::kReorder;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "stall") return FaultKind::kStall;
  return InvalidArgument("unknown fault kind '" + name +
                         "' (want drop|truncate|duplicate|reorder|corrupt|"
                         "stall|none)");
}

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return InvalidArgument("fault plan entry '" + entry +
                             "' is not <attempt>:<kind>");
    }
    uint64_t attempt = 0;
    std::istringstream num(entry.substr(0, colon));
    if (!(num >> attempt) || attempt == 0) {
      return InvalidArgument("fault plan entry '" + entry +
                             "' has a bad attempt number");
    }
    CADDB_ASSIGN_OR_RETURN(FaultKind kind,
                           FaultKindFromName(entry.substr(colon + 1)));
    plan.by_attempt[attempt] = kind;
  }
  return plan;
}

}  // namespace replication
}  // namespace caddb

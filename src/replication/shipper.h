#ifndef CADDB_REPLICATION_SHIPPER_H_
#define CADDB_REPLICATION_SHIPPER_H_

#include <cstdint>
#include <string>

#include "obs/observability.h"
#include "replication/fault.h"
#include "replication/manifest.h"
#include "util/result.h"
#include "wal/wal.h"

namespace caddb {

class Database;

namespace replication {

struct ShipperOptions {
  /// fsync the primary's log before reading it, so the shipped bytes are
  /// the durable bytes (a follower never learns of records the primary
  /// itself could lose in a crash).
  bool sync_before_ship = true;
  /// Fault injection for the robustness matrix; empty ships clean.
  FaultPlan faults;
};

/// What one ShipNow did.
struct ShipmentReport {
  uint64_t seq = 0;          // manifest seq published (0 when none was)
  uint64_t shipped_lsn = 0;  // newest lsn the manifest makes reachable
  uint64_t files_copied = 0;
  uint64_t bytes_copied = 0;
  uint64_t files_healed = 0;   // replica copies that differed and were redone
  uint64_t files_deleted = 0;  // stale replica files garbage-collected
  FaultKind fault = FaultKind::kNone;  // what the plan injected
};

/// Primary-side log shipping: copies the newest checkpoint, every closed
/// segment, and the live tail segment's valid frame prefix into a replica
/// directory, then atomically publishes a Manifest describing them. Every
/// copy is idempotent and self-healing — a file already present with the
/// right size and CRC is skipped, a wrong one (previous torn/corrupted
/// shipment) is re-copied — so a clean ShipNow converges the replica
/// directory no matter what earlier attempts did to it. Files no longer
/// referenced (truncated segments, superseded checkpoints) are deleted
/// after the new manifest is durable.
///
/// Wire `MakeCloseHook()` into WalOptions::segment_close_hook to ship
/// whenever size rotation closes a segment; call ShipNow() directly for
/// time-based or manual shipping (`ship` in the shell). Single-threaded
/// like the Database it serves.
class Shipper {
 public:
  /// `db` must outlive the Shipper and have been opened durably.
  Shipper(Database* db, std::string replica_dir, ShipperOptions options = {});

  /// One shipment attempt. Fault injection consults the plan with the
  /// attempt number (1-based); an injected fault is reported in the
  /// ShipmentReport, not as an error — the transport losing a shipment is
  /// not the shipper failing.
  Result<ShipmentReport> ShipNow();

  /// A WalOptions::segment_close_hook that ships on every size rotation
  /// (shipment errors are swallowed there — the next attempt self-heals;
  /// rotation must not fail because the replica directory hiccuped).
  wal::SegmentCloseHook MakeCloseHook();

  uint64_t attempts() const { return attempts_; }
  const std::string& replica_dir() const { return replica_dir_; }

 private:
  Database* db_;
  const std::string replica_dir_;
  const ShipperOptions options_;
  /// The primary database's bundle (obs::Default() when db is null).
  obs::Observability* obs_;
  obs::Counter* m_attempts_;
  obs::Counter* m_files_;
  obs::Counter* m_bytes_;
  obs::Histogram* m_ship_us_;
  uint64_t attempts_ = 0;
  /// First ShipNow seeds attempts_ from the replica's existing manifest so
  /// a restarted primary's seq keeps ascending past the old one's.
  bool seq_seeded_ = false;
  /// A kReorder fault stashes the withheld manifest here; the next attempt
  /// re-publishes it after its own, simulating out-of-order delivery.
  std::string reorder_stash_;
};

}  // namespace replication
}  // namespace caddb

#endif  // CADDB_REPLICATION_SHIPPER_H_

#include "replication/follower.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "wal/crc32c.h"
#include "wal/log_io.h"

namespace caddb {
namespace replication {

namespace fs = std::filesystem;

namespace {
constexpr char kQuarantineFileName[] = "QUARANTINE";
}  // namespace

const char* FollowerStateName(FollowerState state) {
  switch (state) {
    case FollowerState::kNeverSynced:
      return "never-synced";
    case FollowerState::kFollowing:
      return "following";
    case FollowerState::kQuarantined:
      return "quarantined";
    case FollowerState::kPromoted:
      return "promoted";
  }
  return "unknown";
}

Follower::Follower(std::string replica_dir, FollowerOptions options)
    : replica_dir_(std::move(replica_dir)),
      staged_dir_(options.staged_dir.empty()
                      ? (fs::path(replica_dir_) / ".staged").string()
                      : options.staged_dir),
      options_(std::move(options)) {
  obs_ = options_.obs != nullptr ? options_.obs
         : options_.durability.wal.obs != nullptr ? options_.durability.wal.obs
                                                  : obs::Default();
  // Rebuilt read-only databases (and the promotion open) report into the
  // follower's bundle rather than each rebuild getting a fresh one.
  if (options_.durability.wal.obs == nullptr) {
    options_.durability.wal.obs = obs_;
  }
  m_polls_ = obs_->metrics.GetCounter("caddb_replication_polls_total",
                                      "Catch-up cycles started");
  m_rebuilds_ = obs_->metrics.GetCounter(
      "caddb_replication_rebuilds_total",
      "Full rebuilds from staged shipments (applied manifests)");
  m_retries_ = obs_->metrics.GetCounter(
      "caddb_replication_read_retries_total",
      "File-read attempts beyond the first (backoff retries)");
  m_quarantines_ = obs_->metrics.GetCounter(
      "caddb_replication_quarantines_total",
      "Divergence verdicts (CAD201-205) entered");
  m_reseeds_ = obs_->metrics.GetCounter(
      "caddb_replication_reseeds_total",
      "Reseed attempts on a quarantined replica");
  m_lag_ = obs_->metrics.GetGauge(
      "caddb_replication_replica_lag",
      "shipped_lsn - replay_lsn after the last applied manifest");
  m_poll_us_ = obs_->metrics.GetHistogram("caddb_replication_poll_us",
                                          "One catch-up cycle, end to end");
  m_rebuild_us_ = obs_->metrics.GetHistogram(
      "caddb_replication_rebuild_us",
      "Replay of a staged shipment into a fresh read-only database");
  if (!options_.file_reader) {
    options_.file_reader = [](const std::string& path) {
      return wal::ReadFileToString(path);
    };
  }
  if (!options_.sleeper) {
    options_.sleeper = [](uint64_t us) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    };
  }
  if (!options_.jitter_source) {
    options_.jitter_source = [rng = std::make_shared<std::mt19937>(
                                  std::random_device{}())]() mutable {
      return std::uniform_real_distribution<double>(0.0, 1.0)(*rng);
    };
  }
  if (!options_.clock_us) {
    options_.clock_us = [] {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
  }
  // A quarantine survives restarts: re-applying divergent data after a
  // follower bounce would defeat the whole point of detecting it.
  Result<std::string> persisted = wal::ReadFileToString(
      (fs::path(replica_dir_) / kQuarantineFileName).string());
  if (persisted.ok()) {
    const std::string& text = *persisted;
    size_t newline = text.find('\n');
    quarantine_code_ = text.substr(0, newline);
    if (newline != std::string::npos) {
      quarantine_reason_ = text.substr(newline + 1);
      while (!quarantine_reason_.empty() &&
             quarantine_reason_.back() == '\n') {
        quarantine_reason_.pop_back();
      }
    }
    state_ = FollowerState::kQuarantined;
  }
}

Status Follower::Quarantine(const std::string& code,
                            const std::string& reason) {
  m_quarantines_->Increment();
  state_ = FollowerState::kQuarantined;
  quarantine_code_ = code;
  quarantine_reason_ = reason;
  CADDB_LOG(&obs_->log, obs::LogLevel::kError, "replication",
            "quarantined (" + code + "): " + reason);
  // Best effort: losing the persisted diagnostic must not mask the
  // in-memory refusal.
  (void)wal::AtomicWriteFile(
      (fs::path(replica_dir_) / kQuarantineFileName).string(),
      code + "\n" + reason + "\n");
  return FailedPrecondition(code + ": " + reason +
                            " — replica quarantined; rebuild it from a "
                            "fresh shipment after resolving the divergence");
}

Result<std::string> Follower::ReadWithRetry(
    const std::string& path,
    const std::function<Status(const std::string&)>& validate,
    PollResult* result) {
  Status last_error = OkStatus();
  uint64_t backoff = options_.initial_backoff_us;
  for (uint64_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    ++result->read_attempts;
    const uint64_t started = options_.clock_us();
    Result<std::string> bytes = options_.file_reader(path);
    const uint64_t elapsed = options_.clock_us() - started;
    if (bytes.ok() && options_.attempt_timeout_us != 0 &&
        elapsed > options_.attempt_timeout_us) {
      // The answer came, but after the deadline: as good as lost.
      last_error = Unavailable("read of " + path + " took " +
                               std::to_string(elapsed) + "us (deadline " +
                               std::to_string(options_.attempt_timeout_us) +
                               "us)");
    } else if (!bytes.ok()) {
      last_error = bytes.status();
    } else {
      Status valid = validate(*bytes);
      if (valid.ok()) return std::move(*bytes);
      last_error = valid;
    }
    if (attempt < options_.max_attempts) {
      m_retries_->Increment();
      // Jittered delay in [backoff*(1-jitter), backoff]; the *schedule*
      // (what doubles) is unjittered so the envelope stays predictable.
      uint64_t delay = backoff;
      if (options_.backoff_jitter > 0) {
        const double shave = options_.jitter_source() *
                             options_.backoff_jitter *
                             static_cast<double>(backoff);
        delay = backoff - static_cast<uint64_t>(shave);
      }
      options_.sleeper(delay);
      backoff = std::min(backoff * 2, options_.max_backoff_us);
    }
  }
  if (last_error.code() == Code::kNotFound) return last_error;
  return Unavailable("giving up on " + path + " after " +
                     std::to_string(options_.max_attempts) +
                     " attempt(s): " + last_error.ToString());
}

Result<PollResult> Follower::Poll() {
  if (state_ == FollowerState::kQuarantined) {
    return FailedPrecondition(quarantine_code_ + ": " + quarantine_reason_ +
                              " — replica is quarantined");
  }
  if (state_ == FollowerState::kPromoted) {
    return FailedPrecondition("replica was promoted; following has ended");
  }
  obs::Span poll_span(&obs_->trace, "replication.poll", m_poll_us_,
                      /*always_time=*/true);
  m_polls_->Increment();
  PollResult result;
  result.manifest_seq = last_seq_;
  result.replay_lsn = replay_lsn_;

  // 1. The manifest. A missing one means nothing was shipped yet; a torn
  // or garbled one means a transfer is in flight — both leave the current
  // database serving.
  Manifest manifest;
  Result<std::string> manifest_bytes = ReadWithRetry(
      (fs::path(replica_dir_) / kManifestFileName).string(),
      [&](const std::string& bytes) -> Status {
        Result<Manifest> decoded = Manifest::Decode(bytes);
        if (!decoded.ok()) return decoded.status();
        manifest = std::move(*decoded);
        return OkStatus();
      },
      &result);
  if (!manifest_bytes.ok()) {
    if (manifest_bytes.status().code() == Code::kNotFound) return result;
    return manifest_bytes.status();
  }

  // 2. Stale manifests (duplicate or reordered publication) are ignored.
  if (manifest.seq <= last_seq_) return result;

  // 3. Divergence checks that need no file fetches. Structural nonsense
  // and backwards movement are the primary's history changing under us —
  // quarantine before touching any data.
  Status structural = manifest.Validate();
  if (!structural.ok()) return Quarantine("CAD204", structural.message());
  if (manifest.generation < generation_) {
    return Quarantine(
        "CAD201", "primary log generation moved backwards (" +
                      std::to_string(generation_) + " -> " +
                      std::to_string(manifest.generation) +
                      "): the shipped history is not the one applied");
  }
  if (manifest.generation == generation_ &&
      manifest.checkpoint.lsn < anchor_lsn_) {
    return Quarantine(
        "CAD202", "checkpoint anchor moved backwards within generation " +
                      std::to_string(generation_) + " (lsn " +
                      std::to_string(anchor_lsn_) + " -> " +
                      std::to_string(manifest.checkpoint.lsn) + ")");
  }

  // 4. Fetch everything the manifest references into the staging area,
  // re-validating size and CRC against the manifest. A mismatch is a
  // transfer problem (torn, corrupted, or racing the next shipment), so
  // it retries and at worst reports kUnavailable — CRC failures here are
  // never divergence.
  std::error_code ec;
  fs::create_directories(staged_dir_, ec);
  if (ec) {
    return InternalError("cannot create staging dir " + staged_dir_ + ": " +
                         ec.message());
  }
  struct Wanted {
    std::string file;
    uint64_t bytes;
    uint32_t crc;
  };
  std::vector<Wanted> wanted;
  wanted.push_back({manifest.checkpoint.file, manifest.checkpoint.bytes,
                    manifest.checkpoint.crc});
  if (manifest.pagefile.present) {
    wanted.push_back({manifest.pagefile.file, manifest.pagefile.bytes,
                      manifest.pagefile.crc});
  }
  for (const ManifestSegment& seg : manifest.segments) {
    wanted.push_back({seg.file, seg.bytes, seg.crc});
  }
  for (const Wanted& want : wanted) {
    Result<std::string> fetched = ReadWithRetry(
        (fs::path(replica_dir_) / want.file).string(),
        [&](const std::string& bytes) -> Status {
          // The shipped prefix may have grown (tail segment re-shipped by
          // a newer in-flight shipment): a longer file whose prefix still
          // matches is fine, a shorter or differing one is not yet the
          // promised shipment.
          if (bytes.size() < want.bytes) {
            return Unavailable(want.file + ": " +
                               std::to_string(bytes.size()) + " bytes, " +
                               "manifest promises " +
                               std::to_string(want.bytes));
          }
          uint32_t crc = wal::Crc32c(bytes.data(), want.bytes);
          if (crc != want.crc) {
            return Unavailable(want.file + ": crc mismatch against manifest");
          }
          return OkStatus();
        },
        &result);
    if (!fetched.ok()) {
      if (fetched.status().code() == Code::kNotFound) {
        return Unavailable("replica file " + want.file +
                           " named by the manifest is missing");
      }
      return fetched.status();
    }
    std::string validated = std::move(*fetched);
    validated.resize(want.bytes);  // stage exactly the promised prefix
    const std::string target = (fs::path(staged_dir_) / want.file).string();
    Result<std::string> existing = wal::ReadFileToString(target);
    if (!existing.ok() || *existing != validated) {
      CADDB_RETURN_IF_ERROR(wal::AtomicWriteFile(target, validated));
    }
  }
  // Stale staged files from older manifests would confuse the rebuild
  // (recovery scans the whole directory).
  for (const fs::directory_entry& entry :
       fs::directory_iterator(staged_dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    bool referenced = false;
    for (const Wanted& want : wanted) {
      referenced = referenced || want.file == name;
    }
    if (!referenced) fs::remove(entry.path(), ec);
  }

  // 5. Full rebuild from the staged, validated bytes.
  wal::DurabilityOptions durability = options_.durability;
  durability.fingerprint_lsn = replay_lsn_;
  // The manifest's trace stamp (the originating commit's context) parents
  // the rebuild span: one tree from client command to follower catch-up.
  // Unstamped manifests (old primary, tracing off) root a local span.
  obs::Span rebuild_span(&obs_->trace, "replication.rebuild", manifest.trace,
                         m_rebuild_us_, /*always_time=*/true);
  rebuild_span.AddAttribute("manifest_seq", manifest.seq);
  Result<std::unique_ptr<Database>> rebuilt =
      Database::OpenReadOnly(staged_dir_, durability);
  m_rebuilds_->Increment();
  if (!rebuilt.ok()) {
    // Checksums matched what the primary shipped, yet it does not replay:
    // the primary shipped a broken history. That is divergence, not a
    // transfer hiccup.
    return Quarantine("CAD205", "shipped state fails replay: " +
                                    rebuilt.status().ToString());
  }
  const wal::RecoveryReport& report = (*rebuilt)->recovery_report();

  // 6. Replayed-prefix continuity: within one generation and one
  // checkpoint anchor, the records this follower already applied must
  // still be exactly what replays up to the old watermark. (An advanced
  // anchor folds records into the checkpoint body and resets the
  // comparison baseline; the generation rules cover the rest.)
  if (last_seq_ != 0 && manifest.generation == generation_ &&
      manifest.checkpoint.lsn == anchor_lsn_) {
    if (report.last_lsn < replay_lsn_) {
      return Quarantine(
          "CAD203", "replayed prefix shrank (lsn " +
                        std::to_string(replay_lsn_) + " -> " +
                        std::to_string(report.last_lsn) +
                        ") within one generation and checkpoint anchor");
    }
    if (report.fingerprint_at != fingerprint_) {
      return Quarantine(
          "CAD203",
          "replayed prefix through lsn " + std::to_string(replay_lsn_) +
              " no longer matches what this replica applied "
              "(fingerprint " + std::to_string(fingerprint_) + " -> " +
              std::to_string(report.fingerprint_at) +
              "): history was rewritten under the follower");
    }
  }

  // 7. Serve it.
  db_ = std::move(*rebuilt);
  last_seq_ = manifest.seq;
  generation_ = manifest.generation;
  anchor_lsn_ = manifest.checkpoint.lsn;
  replay_lsn_ = report.last_lsn;
  fingerprint_ = report.applied_fingerprint;
  shipped_lsn_ = manifest.shipped_lsn();
  state_ = FollowerState::kFollowing;
  db_->set_replica_info(replica_info());
  m_lag_->Set(static_cast<int64_t>(replica_info().lag()));
  result.advanced = true;
  result.manifest_seq = last_seq_;
  result.replay_lsn = replay_lsn_;
  CADDB_LOG(&obs_->log, obs::LogLevel::kInfo, "replication",
            "applied manifest seq " + std::to_string(last_seq_) +
                ", replayed through lsn " + std::to_string(replay_lsn_) +
                " (lag " + std::to_string(replica_info().lag()) + ")");
  return result;
}

Result<PollResult> Follower::Reseed() {
  if (state_ != FollowerState::kQuarantined) {
    return FailedPrecondition(
        std::string("replica is not quarantined (state: ") +
        FollowerStateName(state_) + "); nothing to reseed");
  }
  m_reseeds_->Increment();
  const std::string saved_code = quarantine_code_;
  const std::string saved_reason = quarantine_reason_;
  // Forget the divergence baseline: the operator accepts the primary's
  // current history as the new truth, so the poll below re-stages from the
  // manifest checkpoint with nothing to compare against.
  state_ = FollowerState::kNeverSynced;
  quarantine_code_.clear();
  quarantine_reason_.clear();
  db_.reset();
  last_seq_ = 0;
  generation_ = 0;
  anchor_lsn_ = 0;
  replay_lsn_ = 0;
  fingerprint_ = 0;
  shipped_lsn_ = 0;
  Result<PollResult> polled = Poll();
  if (polled.ok() && polled->advanced) {
    // Only a completed rebuild clears the persisted verdict.
    std::error_code ec;
    fs::remove(fs::path(replica_dir_) / kQuarantineFileName, ec);
    return polled;
  }
  // The rebuild did not complete. Unless the poll raised a *new* verdict,
  // the original one stands — a reseed that went nowhere must not silently
  // unlock the replica.
  if (state_ != FollowerState::kQuarantined) {
    state_ = FollowerState::kQuarantined;
    quarantine_code_ = saved_code;
    quarantine_reason_ = saved_reason;
  }
  if (!polled.ok()) return polled.status();
  return FailedPrecondition(
      "reseed found no applicable shipment; replica stays quarantined (" +
      quarantine_code_ + ": " + quarantine_reason_ + ")");
}

ReplicaInfo Follower::replica_info() const {
  ReplicaInfo info;
  info.is_replica = true;
  if (state_ == FollowerState::kQuarantined) {
    info.state = std::string("quarantined (") + quarantine_code_ + ")";
  } else if (state_ == FollowerState::kFollowing &&
             replay_lsn_ >= shipped_lsn_) {
    info.state = "caught-up";
  } else {
    info.state = FollowerStateName(state_);
  }
  info.manifest_seq = last_seq_;
  info.generation = generation_;
  info.replay_lsn = replay_lsn_;
  info.shipped_lsn = shipped_lsn_;
  return info;
}

Result<std::unique_ptr<Database>> Follower::Promote() {
  if (state_ == FollowerState::kQuarantined) {
    return FailedPrecondition(
        "refusing to promote a quarantined replica (" + quarantine_code_ +
        ": " + quarantine_reason_ + ")");
  }
  if (state_ == FollowerState::kPromoted) {
    return FailedPrecondition("replica was already promoted");
  }
  // Final catch-up. Transient unavailability is expected — the primary is
  // typically dead, that is why we are promoting — but a divergence
  // detected here still refuses.
  Result<PollResult> last = Poll();
  if (!last.ok() && state_ == FollowerState::kQuarantined) {
    return last.status();
  }
  if (last_seq_ == 0) {
    return FailedPrecondition(
        "replica never applied a shipment; nothing to promote");
  }
  db_.reset();  // release the read-only view of the staged directory
  wal::DurabilityOptions durability = options_.durability;
  durability.fingerprint_lsn = 0;
  // The full open: final replay, fsck, a fresh checkpoint in a new log
  // generation, truncation — after this the staged directory is a
  // first-class primary durability directory.
  Result<std::unique_ptr<Database>> promoted =
      Database::Open(staged_dir_, durability);
  if (!promoted.ok()) {
    return Annotate("promotion of " + replica_dir_, promoted.status());
  }
  state_ = FollowerState::kPromoted;
  return promoted;
}

}  // namespace replication
}  // namespace caddb

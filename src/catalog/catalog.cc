#include "catalog/catalog.h"

#include <algorithm>

namespace caddb {

bool EffectiveSchema::IsInherited(const std::string& name) const {
  auto it = provenance.find(name);
  return it != provenance.end() && it->second.inherited;
}

const AttributeDef* EffectiveSchema::FindAttribute(
    const std::string& name) const {
  for (const auto& a : attributes) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const SubclassDef* EffectiveSchema::FindSubclass(
    const std::string& name) const {
  for (const auto& s : subclasses) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const SubrelDef* EffectiveSchema::FindSubrel(const std::string& name) const {
  for (const auto& s : subrels) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Catalog::Catalog(obs::Observability* obs)
    : obs_(obs != nullptr ? obs : obs::Default()) {
  m_cache_hits_ = obs_->metrics.GetCounter(
      "caddb_catalog_schema_cache_hits_total",
      "Effective-schema cache probes that found a cached schema");
  m_cache_misses_ = obs_->metrics.GetCounter(
      "caddb_catalog_schema_cache_misses_total",
      "Effective-schema cache probes that had to compute the schema");
  m_compute_us_ = obs_->metrics.GetHistogram(
      "caddb_catalog_compute_schema_us",
      "Time to compute one effective schema (cache miss path)");
  // Built-in simple domains, addressable by name from DDL text.
  domains_["integer"] = Domain::Int();
  domains_["real"] = Domain::Real();
  domains_["boolean"] = Domain::Bool();
  domains_["string"] = Domain::String();
  domains_["char"] = Domain::String();  // the paper's `char` attributes
  domains_["Point"] = Domain::Point();
}

Status Catalog::RegisterDomain(const std::string& name, Domain domain) {
  if (HasName(name)) {
    return AlreadyExists("name '" + name + "' is already registered");
  }
  domains_[name] = std::move(domain);
  InvalidateSchemaCache();
  return OkStatus();
}

Status Catalog::RegisterObjectType(ObjectTypeDef def) {
  if (def.name.empty()) return InvalidArgument("object type without a name");
  if (HasName(def.name)) {
    return AlreadyExists("name '" + def.name + "' is already registered");
  }
  // Reject duplicate member names within the definition.
  std::set<std::string> seen;
  for (const auto& a : def.attributes) {
    if (!seen.insert(a.name).second) {
      return InvalidArgument("duplicate member '" + a.name + "' in type '" +
                             def.name + "'");
    }
  }
  for (const auto& s : def.subclasses) {
    if (!seen.insert(s.name).second) {
      return InvalidArgument("duplicate member '" + s.name + "' in type '" +
                             def.name + "'");
    }
  }
  for (const auto& s : def.subrels) {
    if (!seen.insert(s.name).second) {
      return InvalidArgument("duplicate member '" + s.name + "' in type '" +
                             def.name + "'");
    }
  }
  object_types_[def.name] = std::move(def);
  InvalidateSchemaCache();
  return OkStatus();
}

Status Catalog::RegisterRelType(RelTypeDef def) {
  if (def.name.empty()) {
    return InvalidArgument("relationship type without a name");
  }
  if (HasName(def.name)) {
    return AlreadyExists("name '" + def.name + "' is already registered");
  }
  std::set<std::string> seen;
  for (const auto& p : def.participants) {
    if (!seen.insert(p.role).second) {
      return InvalidArgument("duplicate role '" + p.role + "' in rel-type '" +
                             def.name + "'");
    }
  }
  for (const auto& a : def.attributes) {
    if (!seen.insert(a.name).second) {
      return InvalidArgument("duplicate member '" + a.name +
                             "' in rel-type '" + def.name + "'");
    }
  }
  for (const auto& s : def.subclasses) {
    if (!seen.insert(s.name).second) {
      return InvalidArgument("duplicate member '" + s.name +
                             "' in rel-type '" + def.name + "'");
    }
  }
  rel_types_[def.name] = std::move(def);
  InvalidateSchemaCache();
  return OkStatus();
}

Status Catalog::RegisterInherRelType(InherRelTypeDef def) {
  if (def.name.empty()) {
    return InvalidArgument("inheritance relationship type without a name");
  }
  if (HasName(def.name)) {
    return AlreadyExists("name '" + def.name + "' is already registered");
  }
  if (def.transmitter_type.empty()) {
    return InvalidArgument("inher-rel-type '" + def.name +
                           "' lacks a transmitter type");
  }
  if (def.inheriting.empty()) {
    return InvalidArgument("inher-rel-type '" + def.name +
                           "' has an empty inheriting clause");
  }
  std::set<std::string> seen;
  for (const auto& item : def.inheriting) {
    if (!seen.insert(item).second) {
      return InvalidArgument("duplicate inheriting item '" + item +
                             "' in inher-rel-type '" + def.name + "'");
    }
  }
  inher_rel_types_[def.name] = std::move(def);
  InvalidateSchemaCache();
  return OkStatus();
}

Result<Domain> Catalog::ResolveDomain(const std::string& name) const {
  auto it = domains_.find(name);
  if (it == domains_.end()) {
    return NotFound("domain '" + name + "' is not registered");
  }
  return it->second;
}

const ObjectTypeDef* Catalog::FindObjectType(const std::string& name) const {
  auto it = object_types_.find(name);
  return it == object_types_.end() ? nullptr : &it->second;
}

const RelTypeDef* Catalog::FindRelType(const std::string& name) const {
  auto it = rel_types_.find(name);
  return it == rel_types_.end() ? nullptr : &it->second;
}

const InherRelTypeDef* Catalog::FindInherRelType(
    const std::string& name) const {
  auto it = inher_rel_types_.find(name);
  return it == inher_rel_types_.end() ? nullptr : &it->second;
}

bool Catalog::HasName(const std::string& name) const {
  return domains_.count(name) > 0 || object_types_.count(name) > 0 ||
         rel_types_.count(name) > 0 || inher_rel_types_.count(name) > 0;
}

std::vector<std::string> Catalog::ObjectTypeNames() const {
  std::vector<std::string> out;
  out.reserve(object_types_.size());
  for (const auto& [name, def] : object_types_) out.push_back(name);
  return out;
}

std::vector<std::string> Catalog::RelTypeNames() const {
  std::vector<std::string> out;
  out.reserve(rel_types_.size());
  for (const auto& [name, def] : rel_types_) out.push_back(name);
  return out;
}

std::vector<std::string> Catalog::InherRelTypeNames() const {
  std::vector<std::string> out;
  out.reserve(inher_rel_types_.size());
  for (const auto& [name, def] : inher_rel_types_) out.push_back(name);
  return out;
}

std::vector<std::string> Catalog::DomainNames() const {
  std::vector<std::string> out;
  out.reserve(domains_.size());
  for (const auto& [name, def] : domains_) out.push_back(name);
  return out;
}

void Catalog::InvalidateSchemaCache() {
  std::lock_guard<std::mutex> lock(schema_cache_mu_);
  schema_cache_.clear();
  ++schema_epoch_;
}

Result<EffectiveSchema> Catalog::EffectiveSchemaFor(
    const std::string& type_name) const {
  CADDB_ASSIGN_OR_RETURN(const EffectiveSchema* schema,
                         FindEffectiveSchema(type_name));
  return *schema;
}

Result<const EffectiveSchema*> Catalog::FindEffectiveSchema(
    const std::string& type_name) const {
  // Held across the compute: ComputeEffectiveSchema never re-enters the
  // cache, and serializing concurrent misses avoids duplicate work.
  std::lock_guard<std::mutex> lock(schema_cache_mu_);
  auto it = schema_cache_.find(type_name);
  if (it != schema_cache_.end()) {
    ++schema_cache_hits_;
    m_cache_hits_->Increment();
    return &it->second;
  }
  ++schema_cache_misses_;
  m_cache_misses_->Increment();
  std::set<std::string> in_progress;
  obs::Span span(&obs_->trace, "catalog.compute_schema", m_compute_us_,
                 /*always_time=*/true);
  span.AddAttribute("type", type_name);
  Result<EffectiveSchema> schema =
      ComputeEffectiveSchema(type_name, &in_progress);
  if (!schema.ok()) return schema.status();
  const EffectiveSchema* cached =
      &(schema_cache_[type_name] = *std::move(schema));
  return cached;
}

Result<EffectiveSchema> Catalog::ComputeEffectiveSchema(
    const std::string& type_name, std::set<std::string>* in_progress) const {
  const ObjectTypeDef* def = FindObjectType(type_name);
  if (def == nullptr) {
    return NotFound("object type '" + type_name + "' is not registered");
  }
  if (!in_progress->insert(type_name).second) {
    return CycleError("type-level inheritance cycle through '" + type_name +
                      "'");
  }

  EffectiveSchema schema;
  if (!def->inheritor_in.empty()) {
    const InherRelTypeDef* rel = FindInherRelType(def->inheritor_in);
    if (rel == nullptr) {
      return NotFound("type '" + type_name +
                      "' is inheritor-in unknown inher-rel-type '" +
                      def->inheritor_in + "'");
    }
    if (!rel->inheritor_type.empty() && rel->inheritor_type != type_name) {
      return TypeMismatch("type '" + type_name + "' declares inheritor-in '" +
                          rel->name + "' which requires inheritor type '" +
                          rel->inheritor_type + "'");
    }
    Result<EffectiveSchema> transmitter =
        ComputeEffectiveSchema(rel->transmitter_type, in_progress);
    if (!transmitter.ok()) return transmitter.status();

    schema.inheritor_in = rel->name;
    schema.transmitter_type = rel->transmitter_type;

    // Only items named in the inheriting clause pass through (selectivity /
    // permeability, paper section 4.1). Each must exist in the transmitter's
    // effective schema, so chained hierarchies compose.
    for (const std::string& item : rel->inheriting) {
      if (const AttributeDef* a = transmitter->FindAttribute(item)) {
        schema.attributes.push_back(*a);
        schema.provenance[item] = {
            /*inherited=*/true,
            transmitter->IsInherited(item)
                ? transmitter->provenance.at(item).origin_type
                : rel->transmitter_type};
      } else if (const SubclassDef* s = transmitter->FindSubclass(item)) {
        schema.subclasses.push_back(*s);
        schema.provenance[item] = {
            /*inherited=*/true,
            transmitter->IsInherited(item)
                ? transmitter->provenance.at(item).origin_type
                : rel->transmitter_type};
      } else {
        return InvalidArgument(
            "inher-rel-type '" + rel->name + "' inherits '" + item +
            "' which is neither an attribute nor a subclass of transmitter "
            "type '" +
            rel->transmitter_type + "'");
      }
    }
  }

  // Local items; collisions with inherited names are rejected (the paper
  // gives no shadowing semantics, so we forbid shadowing outright).
  for (const auto& a : def->attributes) {
    if (schema.provenance.count(a.name) > 0) {
      return InvalidArgument("type '" + type_name + "' redeclares inherited '" +
                             a.name + "'");
    }
    schema.attributes.push_back(a);
    schema.provenance[a.name] = {/*inherited=*/false, type_name};
  }
  for (const auto& s : def->subclasses) {
    if (schema.provenance.count(s.name) > 0) {
      return InvalidArgument("type '" + type_name + "' redeclares inherited '" +
                             s.name + "'");
    }
    schema.subclasses.push_back(s);
    schema.provenance[s.name] = {/*inherited=*/false, type_name};
  }
  for (const auto& s : def->subrels) {
    if (schema.provenance.count(s.name) > 0) {
      return InvalidArgument("type '" + type_name + "' redeclares inherited '" +
                             s.name + "'");
    }
    schema.subrels.push_back(s);
    schema.provenance[s.name] = {/*inherited=*/false, type_name};
  }

  in_progress->erase(type_name);
  return schema;
}

Status Catalog::ValidateDomainTree(const Domain& d,
                                   const std::string& where) const {
  switch (d.kind()) {
    case Domain::Kind::kNamed: {
      Result<Domain> resolved = ResolveDomain(d.name());
      if (!resolved.ok()) {
        return NotFound("unresolved domain '" + d.name() + "' in " + where);
      }
      return OkStatus();
    }
    case Domain::Kind::kRecord:
      for (const auto& f : d.record_fields()) {
        CADDB_RETURN_IF_ERROR(ValidateDomainTree(f.second, where));
      }
      return OkStatus();
    case Domain::Kind::kListOf:
    case Domain::Kind::kSetOf:
    case Domain::Kind::kMatrixOf:
      return ValidateDomainTree(d.element(), where);
    case Domain::Kind::kRef:
      if (!d.name().empty() && FindObjectType(d.name()) == nullptr &&
          FindRelType(d.name()) == nullptr) {
        return NotFound("unresolved object type '" + d.name() + "' in " +
                        where);
      }
      return OkStatus();
    default:
      return OkStatus();
  }
}

Status Catalog::Validate() const {
  for (const auto& [name, d] : domains_) {
    CADDB_RETURN_IF_ERROR(ValidateDomainTree(d, "domain '" + name + "'"));
  }
  for (const auto& [name, def] : object_types_) {
    for (const auto& a : def.attributes) {
      CADDB_RETURN_IF_ERROR(ValidateDomainTree(
          a.domain, "attribute '" + name + "." + a.name + "'"));
    }
    for (const auto& s : def.subclasses) {
      if (FindObjectType(s.element_type) == nullptr) {
        return NotFound("subclass '" + name + "." + s.name +
                        "' has unknown element type '" + s.element_type + "'");
      }
    }
    for (const auto& s : def.subrels) {
      if (FindRelType(s.rel_type) == nullptr) {
        return NotFound("subrel '" + name + "." + s.name +
                        "' has unknown rel-type '" + s.rel_type + "'");
      }
    }
    // Forces cycle detection and inheriting-clause resolution.
    Result<EffectiveSchema> schema = EffectiveSchemaFor(name);
    if (!schema.ok()) return schema.status();
  }
  for (const auto& [name, def] : rel_types_) {
    for (const auto& p : def.participants) {
      if (!p.object_type.empty() && FindObjectType(p.object_type) == nullptr) {
        return NotFound("role '" + name + "." + p.role +
                        "' has unknown object type '" + p.object_type + "'");
      }
    }
    for (const auto& a : def.attributes) {
      CADDB_RETURN_IF_ERROR(ValidateDomainTree(
          a.domain, "attribute '" + name + "." + a.name + "'"));
    }
    for (const auto& s : def.subclasses) {
      if (FindObjectType(s.element_type) == nullptr) {
        return NotFound("subclass '" + name + "." + s.name +
                        "' has unknown element type '" + s.element_type + "'");
      }
    }
  }
  for (const auto& [name, def] : inher_rel_types_) {
    if (FindObjectType(def.transmitter_type) == nullptr) {
      return NotFound("inher-rel-type '" + name +
                      "' has unknown transmitter type '" +
                      def.transmitter_type + "'");
    }
    if (!def.inheritor_type.empty() &&
        FindObjectType(def.inheritor_type) == nullptr) {
      return NotFound("inher-rel-type '" + name +
                      "' has unknown inheritor type '" + def.inheritor_type +
                      "'");
    }
    Result<EffectiveSchema> transmitter =
        EffectiveSchemaFor(def.transmitter_type);
    if (!transmitter.ok()) return transmitter.status();
    for (const std::string& item : def.inheriting) {
      if (transmitter->FindAttribute(item) == nullptr &&
          transmitter->FindSubclass(item) == nullptr) {
        return InvalidArgument("inher-rel-type '" + name + "' inherits '" +
                               item + "' which transmitter type '" +
                               def.transmitter_type + "' does not provide");
      }
    }
    for (const auto& a : def.attributes) {
      CADDB_RETURN_IF_ERROR(ValidateDomainTree(
          a.domain, "attribute '" + name + "." + a.name + "'"));
    }
    for (const auto& s : def.subclasses) {
      if (FindObjectType(s.element_type) == nullptr) {
        return NotFound("subclass '" + name + "." + s.name +
                        "' has unknown element type '" + s.element_type + "'");
      }
    }
  }
  return OkStatus();
}

}  // namespace caddb

#ifndef CADDB_CATALOG_CATALOG_H_
#define CADDB_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "obs/observability.h"
#include "util/result.h"
#include "util/status.h"
#include "values/domain.h"

namespace caddb {

/// The *effective* schema of an object type: its own attributes/subclasses
/// plus everything it inherits through its `inheritor-in` relationship,
/// transitively up the abstraction hierarchy. Inherited items are read-only
/// in instances.
struct EffectiveSchema {
  struct Item {
    bool inherited = false;
    /// Object type where the item is locally declared.
    std::string origin_type;
  };

  std::vector<AttributeDef> attributes;
  std::vector<SubclassDef> subclasses;
  std::vector<SubrelDef> subrels;
  /// Per attribute/subclass name: provenance. Subrels are never inherited
  /// (the paper only lists attributes and subclasses as inheritable).
  std::map<std::string, Item> provenance;

  /// Direct inheritance context (empty strings when the type is no
  /// inheritor).
  std::string inheritor_in;
  std::string transmitter_type;

  bool IsInherited(const std::string& name) const;
  const AttributeDef* FindAttribute(const std::string& name) const;
  const SubclassDef* FindSubclass(const std::string& name) const;
  const SubrelDef* FindSubrel(const std::string& name) const;
};

/// Registry of domains, object types, relationship types and inheritance
/// relationship types. Names share one namespace (a type may not collide with
/// a domain). References between definitions are resolved lazily so the DDL
/// may declare them in any order (the paper's steel example references
/// `Girder` from `AllOf_GirderIf` before defining it); `Validate()` performs
/// the whole-catalog consistency check.
class Catalog : public Domain::Resolver {
 public:
  /// `obs` (not owned) receives schema-cache counters and compute timings;
  /// null falls back to the process-global obs::Default() bundle.
  explicit Catalog(obs::Observability* obs = nullptr);

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // ---- Registration ----
  Status RegisterDomain(const std::string& name, Domain domain);
  Status RegisterObjectType(ObjectTypeDef def);
  Status RegisterRelType(RelTypeDef def);
  Status RegisterInherRelType(InherRelTypeDef def);

  // ---- Lookup ----
  Result<Domain> ResolveDomain(const std::string& name) const override;
  const ObjectTypeDef* FindObjectType(const std::string& name) const;
  const RelTypeDef* FindRelType(const std::string& name) const;
  const InherRelTypeDef* FindInherRelType(const std::string& name) const;
  bool HasName(const std::string& name) const;

  std::vector<std::string> ObjectTypeNames() const;
  std::vector<std::string> RelTypeNames() const;
  std::vector<std::string> InherRelTypeNames() const;
  std::vector<std::string> DomainNames() const;

  /// Effective schema of an object type, following `inheritor-in` up the
  /// abstraction hierarchy with permeability applied at every level.
  /// Detects type-level inheritance cycles. Results are cached; any
  /// registration invalidates the cache. Returns a copy of the cached
  /// schema; prefer FindEffectiveSchema on hot paths.
  Result<EffectiveSchema> EffectiveSchemaFor(const std::string& type_name) const;

  /// Copy-free variant: a pointer into the schema cache, valid until the
  /// next registration (which clears the cache and bumps schema_epoch()).
  /// Hot paths (attribute/subclass resolution, store-side validation) use
  /// this to avoid re-copying attribute and domain vectors per lookup.
  Result<const EffectiveSchema*> FindEffectiveSchema(
      const std::string& type_name) const;

  /// Monotone counter bumped whenever a registration invalidates the schema
  /// cache. Resolution caches built on top of effective schemas record the
  /// epoch at fill time and treat an epoch change as invalidation.
  uint64_t schema_epoch() const { return schema_epoch_; }

  /// Schema-cache telemetry (FindEffectiveSchema/EffectiveSchemaFor probes).
  uint64_t schema_cache_hits() const { return schema_cache_hits_; }
  uint64_t schema_cache_misses() const { return schema_cache_misses_; }

  /// Whole-catalog validation: every referenced domain/type/inher-rel
  /// resolves, `inheriting` lists name real (effective) items of the
  /// transmitter type, no inheritance cycles, participant types resolve.
  Status Validate() const;

 private:
  Result<EffectiveSchema> ComputeEffectiveSchema(
      const std::string& type_name, std::set<std::string>* in_progress) const;
  Status ValidateDomainTree(const Domain& d, const std::string& where) const;

  std::map<std::string, Domain> domains_;
  std::map<std::string, ObjectTypeDef> object_types_;
  std::map<std::string, RelTypeDef> rel_types_;
  std::map<std::string, InherRelTypeDef> inher_rel_types_;

  /// Bumps schema_epoch_ and drops all cached effective schemas (and the
  /// pointers FindEffectiveSchema handed out).
  void InvalidateSchemaCache();

  /// Guards schema_cache_ and its counters: resolution runs concurrently
  /// from transaction threads (LockInheritanceChain), so the lazy fill in
  /// the const FindEffectiveSchema must be synchronized. Handed-out
  /// pointers stay valid without the lock — std::map nodes are stable and
  /// only DDL registration (single-threaded by contract) clears the map.
  mutable std::mutex schema_cache_mu_;
  mutable std::map<std::string, EffectiveSchema> schema_cache_;
  mutable uint64_t schema_cache_hits_ = 0;
  mutable uint64_t schema_cache_misses_ = 0;
  uint64_t schema_epoch_ = 0;

  /// Registry mirrors of the per-instance telemetry above, plus the
  /// compute-effective-schema timing (rare: once per type per epoch).
  obs::Observability* obs_;
  obs::Counter* m_cache_hits_;
  obs::Counter* m_cache_misses_;
  obs::Histogram* m_compute_us_;
};

}  // namespace caddb

#endif  // CADDB_CATALOG_CATALOG_H_

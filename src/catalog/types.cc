#include "catalog/types.h"

#include <algorithm>

namespace caddb {

const AttributeDef* ObjectTypeDef::FindAttribute(
    const std::string& attr) const {
  for (const auto& a : attributes) {
    if (a.name == attr) return &a;
  }
  return nullptr;
}

const SubclassDef* ObjectTypeDef::FindSubclass(
    const std::string& subclass) const {
  for (const auto& s : subclasses) {
    if (s.name == subclass) return &s;
  }
  return nullptr;
}

const SubrelDef* ObjectTypeDef::FindSubrel(const std::string& subrel) const {
  for (const auto& s : subrels) {
    if (s.name == subrel) return &s;
  }
  return nullptr;
}

const ParticipantDef* RelTypeDef::FindParticipant(
    const std::string& role) const {
  for (const auto& p : participants) {
    if (p.role == role) return &p;
  }
  return nullptr;
}

const AttributeDef* RelTypeDef::FindAttribute(const std::string& attr) const {
  for (const auto& a : attributes) {
    if (a.name == attr) return &a;
  }
  return nullptr;
}

const SubclassDef* RelTypeDef::FindSubclass(
    const std::string& subclass) const {
  for (const auto& s : subclasses) {
    if (s.name == subclass) return &s;
  }
  return nullptr;
}

bool InherRelTypeDef::Permeable(const std::string& item_name) const {
  return std::find(inheriting.begin(), inheriting.end(), item_name) !=
         inheriting.end();
}

const AttributeDef* InherRelTypeDef::FindAttribute(
    const std::string& attr) const {
  for (const auto& a : attributes) {
    if (a.name == attr) return &a;
  }
  return nullptr;
}

}  // namespace caddb

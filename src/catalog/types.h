#ifndef CADDB_CATALOG_TYPES_H_
#define CADDB_CATALOG_TYPES_H_

#include <string>
#include <vector>

#include "expr/ast.h"
#include "util/source_loc.h"
#include "values/domain.h"

namespace caddb {

/// One attribute of an object/relationship type.
struct AttributeDef {
  std::string name;
  Domain domain;
  SourceLoc loc;  // of the attribute name in DDL; invalid if programmatic
};

/// A named integrity constraint (local to its type, paper section 3).
struct ConstraintDef {
  std::string label;         // diagnostic label; often the source text
  expr::ExprPtr predicate;   // must evaluate to bool against an instance
  SourceLoc loc;             // of the constraint's first token in DDL
};

/// Declaration of a local object subclass of a complex object type
/// ("types-of-subclasses"). Elements are subobjects: they live and die with
/// the owning complex object.
struct SubclassDef {
  std::string name;
  /// Object type of the elements. For inline declarations (paper 4.3:
  /// "the type of subclass SubGates has been declared implicitly") the DDL
  /// layer registers a generated type named "<Owner>.<Subclass>".
  std::string element_type;
  SourceLoc loc;  // of the subclass name in DDL
};

/// Declaration of a local relationship subclass ("types-of-subrels"), e.g.
/// `Wires: WireType where (Wire.Pin1 in Pins or ...)`. The where-clause
/// restricts which objects the local relationship instances may relate.
struct SubrelDef {
  std::string name;
  std::string rel_type;
  expr::ExprPtr where;     // may be null
  std::string where_text;  // original text for diagnostics; may be empty
  SourceLoc loc;           // of the subrel name in DDL
};

/// An object type (paper section 3). Complex object types additionally carry
/// subclasses/subrels. `inheritor_in` names the inheritance relationship the
/// type participates in as inheritor (paper section 4.1, `inheritor-in:`).
struct ObjectTypeDef {
  std::string name;
  std::string inheritor_in;  // inher-rel type name; empty if none
  SourceLoc loc;              // of the type name in DDL
  SourceLoc inheritor_in_loc;  // of the inheritor-in reference
  std::vector<AttributeDef> attributes;
  std::vector<SubclassDef> subclasses;
  std::vector<SubrelDef> subrels;
  std::vector<ConstraintDef> constraints;

  const AttributeDef* FindAttribute(const std::string& attr) const;
  const SubclassDef* FindSubclass(const std::string& subclass) const;
  const SubrelDef* FindSubrel(const std::string& subrel) const;
};

/// One participant role of a relationship type (`relates:` section).
struct ParticipantDef {
  std::string role;
  /// Required object type of the participant; empty = any object
  /// (`<name>: object`).
  std::string object_type;
  /// True for set-valued roles, e.g. `Bores: set-of object-of-type BoreType`.
  bool is_set = false;
  SourceLoc loc;  // of the role name in DDL
};

/// A relationship type. Relationships are represented by objects and may
/// themselves have attributes, subclasses (ScrewingType's embedded Bolt/Nut)
/// and constraints (paper sections 3 and 5).
struct RelTypeDef {
  std::string name;
  SourceLoc loc;  // of the type name in DDL
  std::vector<ParticipantDef> participants;
  std::vector<AttributeDef> attributes;
  std::vector<SubclassDef> subclasses;
  std::vector<ConstraintDef> constraints;

  const ParticipantDef* FindParticipant(const std::string& role) const;
  const AttributeDef* FindAttribute(const std::string& attr) const;
  const SubclassDef* FindSubclass(const std::string& subclass) const;
};

/// An inheritance relationship type (paper section 4.1). The transmitter
/// transfers the data named in `inheriting` (attributes or subclasses of the
/// transmitter's *effective* type) to its inheritors; that list is the
/// relationship's "permeability".
struct InherRelTypeDef {
  std::string name;
  std::string transmitter_type;
  /// Required inheritor type; empty = `inheritor: object` (any type may
  /// inherit through this relationship).
  std::string inheritor_type;
  SourceLoc loc;              // of the type name in DDL
  SourceLoc transmitter_loc;  // of the transmitter type reference
  SourceLoc inheritor_loc;    // of the inheritor type reference
  std::vector<std::string> inheriting;
  /// Parallel to `inheriting`: DDL position of each item. Empty when the
  /// definition was registered programmatically.
  std::vector<SourceLoc> inheriting_locs;
  // An inheritance relationship "may possess attributes, subobjects and
  // constraints" like any other relationship (used e.g. for consistency
  // control bookkeeping).
  std::vector<AttributeDef> attributes;
  std::vector<SubclassDef> subclasses;
  std::vector<ConstraintDef> constraints;

  bool Permeable(const std::string& item_name) const;
  const AttributeDef* FindAttribute(const std::string& attr) const;
};

}  // namespace caddb

#endif  // CADDB_CATALOG_TYPES_H_

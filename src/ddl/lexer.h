#ifndef CADDB_DDL_LEXER_H_
#define CADDB_DDL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace caddb {
namespace ddl {

/// Lexical token of the paper's schema language.
struct Token {
  enum class Kind {
    kIdent,      // identifiers and (merged) hyphenated keywords; '/' allowed
                 // inside names, so the paper's domain `I/O` is one token
    kNumber,     // unsigned integer literal
    kSymbol,     // one of ; : , ( ) . # = <> < <= > >= + - * /
    kEndOfFile,
  };

  Kind kind = Kind::kEndOfFile;
  std::string text;
  int64_t number = 0;
  int line = 0;
  int column = 0;

  bool Is(Kind k) const { return kind == k; }
  bool IsSymbol(const std::string& s) const {
    return kind == Kind::kSymbol && text == s;
  }
  bool IsIdent(const std::string& s) const {
    return kind == Kind::kIdent && text == s;
  }
  std::string Describe() const;
};

/// Tokenizes schema text. `/* ... */` comments are skipped. Hyphenated
/// keywords of the paper's grammar (`obj-type`, `types-of-subclasses`,
/// `object-of-type`, `set-of`, ...) are merged into single kIdent tokens;
/// outside those, `-` is the minus symbol, so `a-b` still lexes as
/// subtraction.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace ddl
}  // namespace caddb

#endif  // CADDB_DDL_LEXER_H_

#ifndef CADDB_DDL_PRINTER_H_
#define CADDB_DDL_PRINTER_H_

#include <string>

#include "catalog/catalog.h"

namespace caddb {
namespace ddl {

/// Renders catalog definitions back into the schema language, such that
/// Parser::ParseSchema(Print(catalog)) reconstructs an equivalent catalog
/// (round-trip property, verified by printer_test). Inline-generated
/// subclass element types (named "<Owner>.<Subclass>") are folded back into
/// their owner's `types-of-subclasses:` section and never printed
/// standalone.
class SchemaPrinter {
 public:
  /// Every user-defined domain, object type, relationship type and
  /// inheritance relationship type (built-ins and generated types omitted).
  static std::string Print(const Catalog& catalog);

  static std::string PrintDomainDef(const std::string& name, const Domain& d);
  static std::string PrintObjectType(const Catalog& catalog,
                                     const ObjectTypeDef& def);
  static std::string PrintRelType(const Catalog& catalog,
                                  const RelTypeDef& def);
  static std::string PrintInherRelType(const InherRelTypeDef& def);

  /// A domain in parseable DDL notation (records in parenthesized form).
  static std::string DomainToDdl(const Domain& d);
};

}  // namespace ddl
}  // namespace caddb

#endif  // CADDB_DDL_PRINTER_H_

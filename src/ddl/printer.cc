#include "ddl/printer.h"

namespace caddb {
namespace ddl {

namespace {

/// Built-in names never printed as definitions.
bool IsBuiltinDomain(const std::string& name) {
  return name == "integer" || name == "real" || name == "boolean" ||
         name == "string" || name == "char" || name == "Point";
}

bool IsGeneratedTypeName(const std::string& name) {
  return name.find('.') != std::string::npos;
}

void AppendAttributes(const std::vector<AttributeDef>& attrs,
                      const std::string& indent, std::string* out) {
  if (attrs.empty()) return;
  *out += indent + "attributes:\n";
  for (const AttributeDef& a : attrs) {
    *out += indent + "  " + a.name + ": " + SchemaPrinter::DomainToDdl(a.domain) +
            ";\n";
  }
}

void AppendConstraints(const std::vector<ConstraintDef>& constraints,
                       const std::string& indent, std::string* out) {
  if (constraints.empty()) return;
  *out += indent + "constraints:\n";
  for (const ConstraintDef& c : constraints) {
    if (c.predicate == nullptr) continue;
    *out += indent + "  " + c.predicate->ToString() + ";\n";
  }
}

void AppendSubclasses(const Catalog& catalog,
                      const std::vector<SubclassDef>& subclasses,
                      const std::string& indent, std::string* out) {
  if (subclasses.empty()) return;
  *out += indent + "types-of-subclasses:\n";
  for (const SubclassDef& s : subclasses) {
    if (IsGeneratedTypeName(s.element_type)) {
      // Fold the generated type back into an inline body.
      const ObjectTypeDef* inline_type =
          catalog.FindObjectType(s.element_type);
      *out += indent + "  " + s.name + ":\n";
      if (inline_type != nullptr) {
        if (!inline_type->inheritor_in.empty()) {
          *out += indent + "    inheritor-in: " + inline_type->inheritor_in +
                  ";\n";
        }
        AppendAttributes(inline_type->attributes, indent + "    ", out);
      }
    } else {
      *out += indent + "  " + s.name + ": " + s.element_type + ";\n";
    }
  }
}

void AppendSubrels(const std::vector<SubrelDef>& subrels,
                   const std::string& indent, std::string* out) {
  if (subrels.empty()) return;
  *out += indent + "types-of-subrels:\n";
  for (const SubrelDef& s : subrels) {
    *out += indent + "  " + s.name + ": " + s.rel_type;
    if (s.where != nullptr) {
      *out += "\n" + indent + "    where " + s.where->ToString();
    }
    *out += ";\n";
  }
}

}  // namespace

std::string SchemaPrinter::DomainToDdl(const Domain& d) {
  switch (d.kind()) {
    case Domain::Kind::kInt:
      return "integer";
    case Domain::Kind::kReal:
      return "real";
    case Domain::Kind::kBool:
      return "boolean";
    case Domain::Kind::kString:
      return "char";
    case Domain::Kind::kEnum: {
      std::string out = "(";
      for (size_t i = 0; i < d.symbols().size(); ++i) {
        if (i > 0) out += ", ";
        out += d.symbols()[i];
      }
      return out + ")";
    }
    case Domain::Kind::kRecord: {
      // Parenthesized record form: ( X: integer; Y: integer; ).
      std::string out = "( ";
      for (const auto& f : d.record_fields()) {
        out += f.first + ": " + DomainToDdl(f.second) + "; ";
      }
      return out + ")";
    }
    case Domain::Kind::kListOf:
      return "list-of " + DomainToDdl(d.element());
    case Domain::Kind::kSetOf:
      return "set-of " + DomainToDdl(d.element());
    case Domain::Kind::kMatrixOf:
      return "matrix-of " + DomainToDdl(d.element());
    case Domain::Kind::kRef:
      return d.name().empty() ? "object" : ("object-of-type " + d.name());
    case Domain::Kind::kNamed:
      return d.name();
  }
  return "integer";
}

std::string SchemaPrinter::PrintDomainDef(const std::string& name,
                                          const Domain& d) {
  return "domain " + name + " = " + DomainToDdl(d) + ";\n";
}

std::string SchemaPrinter::PrintObjectType(const Catalog& catalog,
                                           const ObjectTypeDef& def) {
  std::string out = "obj-type " + def.name + " =\n";
  if (!def.inheritor_in.empty()) {
    out += "  inheritor-in: " + def.inheritor_in + ";\n";
  }
  AppendAttributes(def.attributes, "  ", &out);
  AppendSubclasses(catalog, def.subclasses, "  ", &out);
  AppendSubrels(def.subrels, "  ", &out);
  AppendConstraints(def.constraints, "  ", &out);
  out += "end " + def.name + ";\n";
  return out;
}

std::string SchemaPrinter::PrintRelType(const Catalog& catalog,
                                        const RelTypeDef& def) {
  std::string out = "rel-type " + def.name + " =\n";
  if (!def.participants.empty()) {
    out += "  relates:\n";
    for (const ParticipantDef& p : def.participants) {
      out += "    " + p.role + ": ";
      if (p.is_set) out += "set-of ";
      out += p.object_type.empty() ? "object"
                                   : ("object-of-type " + p.object_type);
      out += ";\n";
    }
  }
  AppendAttributes(def.attributes, "  ", &out);
  AppendSubclasses(catalog, def.subclasses, "  ", &out);
  AppendConstraints(def.constraints, "  ", &out);
  out += "end " + def.name + ";\n";
  return out;
}

std::string SchemaPrinter::PrintInherRelType(const InherRelTypeDef& def) {
  std::string out = "inher-rel-type " + def.name + " =\n";
  out += "  transmitter: object-of-type " + def.transmitter_type + ";\n";
  out += "  inheritor: ";
  out += def.inheritor_type.empty() ? "object"
                                    : ("object-of-type " + def.inheritor_type);
  out += ";\n  inheriting: ";
  for (size_t i = 0; i < def.inheriting.size(); ++i) {
    if (i > 0) out += ", ";
    out += def.inheriting[i];
  }
  out += ";\n";
  AppendAttributes(def.attributes, "  ", &out);
  AppendConstraints(def.constraints, "  ", &out);
  out += "end " + def.name + ";\n";
  return out;
}

std::string SchemaPrinter::Print(const Catalog& catalog) {
  std::string out;
  for (const std::string& name : catalog.DomainNames()) {
    if (IsBuiltinDomain(name)) continue;
    Result<Domain> d = catalog.ResolveDomain(name);
    if (d.ok()) out += PrintDomainDef(name, *d) + "\n";
  }
  for (const std::string& name : catalog.ObjectTypeNames()) {
    if (IsGeneratedTypeName(name)) continue;  // folded into the owner
    const ObjectTypeDef* def = catalog.FindObjectType(name);
    if (def != nullptr) out += PrintObjectType(catalog, *def) + "\n";
  }
  for (const std::string& name : catalog.RelTypeNames()) {
    const RelTypeDef* def = catalog.FindRelType(name);
    if (def != nullptr) out += PrintRelType(catalog, *def) + "\n";
  }
  for (const std::string& name : catalog.InherRelTypeNames()) {
    const InherRelTypeDef* def = catalog.FindInherRelType(name);
    if (def != nullptr) out += PrintInherRelType(*def) + "\n";
  }
  return out;
}

}  // namespace ddl
}  // namespace caddb

#ifndef CADDB_DDL_PARSER_H_
#define CADDB_DDL_PARSER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/ast.h"
#include "util/result.h"

namespace caddb {
namespace ddl {

/// Recursive-descent parser for the paper's schema language. Accepts the
/// schemas of sections 3-5 verbatim (modulo the report's OCR typos):
///
///   domain I/O = (IN, OUT);
///   domain Point = (X, Y: integer);
///   domain AreaDom = record: Length, Width: integer; end-domain AreaDom;
///
///   obj-type SimpleGate =
///     attributes: ...   types-of-subclasses: ...
///     types-of-subrels: ...  (alias: connections:)
///     constraints: ...
///   end SimpleGate;
///
///   rel-type WireType = relates: ... attributes: ... end WireType;
///
///   inher-rel-type AllOf_GateInterface =
///     transmitter: object-of-type GateInterface;
///     inheritor: object;
///     inheriting: Length, Width, Pins;
///   end AllOf_GateInterface;
///
/// Notable semantics:
///  - Inline subclass types (`SubGates: inheritor-in: ...; attributes: ...`)
///    register a generated object type named "<Owner>.<Subclass>".
///  - Within one constraints: section, `for`-bindings accumulate: later
///    constraints may reference variables bound by earlier `for`s (the paper
///    relies on this in ScrewingType).
///  - `count(Pins) = 2 where Pins.InOut = IN` attaches the where-filter to
///    the aggregate; inside the filter the element is addressed by the
///    collection's last path segment (`Pins`).
///  - `end <name>;` accepts a mismatched or missing name with a warning (the
///    paper itself closes NutType with `end AllOf_BoltType;`).
class Parser {
 public:
  /// Parses and registers every definition in `source` into `catalog`.
  /// Registration is two-phase: nothing is registered unless the whole
  /// source parses. Non-fatal oddities are appended to `warnings` when
  /// provided. Call catalog->Validate() afterwards to resolve forward
  /// references.
  static Status ParseSchema(const std::string& source, Catalog* catalog,
                            std::vector<std::string>* warnings = nullptr);

  /// Parses a stand-alone constraint expression (same grammar as the
  /// constraints: section, including `for` and postfix `where`).
  static Result<expr::ExprPtr> ParseConstraintExpression(
      const std::string& text);
};

}  // namespace ddl
}  // namespace caddb

#endif  // CADDB_DDL_PARSER_H_

#include "ddl/lexer.h"

#include <array>
#include <cctype>

namespace caddb {
namespace ddl {

namespace {

/// Hyphenated multi-word keywords of the schema language. An identifier
/// followed by '-' is extended greedily while the result remains a prefix of
/// one of these; the extension is kept only when it lands exactly on one.
constexpr std::array<const char*, 12> kHyphenKeywords = {
    "obj-type",
    "rel-type",
    "inher-rel-type",
    "inher-rel-typ",  // the paper itself uses this spelling once
    "types-of-subclasses",
    "types-of-subrels",
    "inheritor-in",
    "object-of-type",
    "set-of",
    "list-of",
    "matrix-of",
    "end-domain",
};

bool IsPrefixOfAnyKeyword(const std::string& s) {
  for (const char* kw : kHyphenKeywords) {
    std::string keyword(kw);
    if (keyword.size() >= s.size() && keyword.compare(0, s.size(), s) == 0) {
      return true;
    }
  }
  return false;
}

bool IsExactKeyword(const std::string& s) {
  for (const char* kw : kHyphenKeywords) {
    if (s == kw) return true;
  }
  return false;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& source) : src_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      CADDB_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      if (AtEnd()) break;
      Result<Token> token = Next();
      if (!token.ok()) return token.status();
      out.push_back(std::move(*token));
    }
    Token eof;
    eof.kind = Token::Kind::kEndOfFile;
    eof.line = line_;
    eof.column = col_;
    out.push_back(eof);
    return out;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        Advance();
      } else if (c == '/' && Peek(1) == '*') {
        int start_line = line_, start_col = col_;
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) {
          return ParseError("unterminated comment starting at line " +
                            std::to_string(start_line) + ", column " +
                            std::to_string(start_col));
        }
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return OkStatus();
  }

  /// Stamps the token with the position where it *started* (captured at the
  /// top of Next()), not the current cursor — diagnostics must point at the
  /// first character of the offending construct.
  Token Make(Token::Kind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = start_line_;
    t.column = start_col_;
    return t;
  }

  /// Reads one identifier segment; '/' is an identifier character when it
  /// sits between two identifier characters (the paper's domain `I/O`).
  std::string ReadIdentSegment() {
    std::string out;
    out.push_back(Advance());
    while (!AtEnd()) {
      char c = Peek();
      if (IsIdentChar(c)) {
        out.push_back(Advance());
      } else if (c == '/' && IsIdentChar(Peek(1))) {
        out.push_back(Advance());
        out.push_back(Advance());
      } else {
        break;
      }
    }
    return out;
  }

  Result<Token> Next() {
    start_line_ = line_;
    start_col_ = col_;
    char c = Peek();
    if (IsIdentStart(c)) {
      std::string ident = ReadIdentSegment();
      // Greedy hyphen-keyword merge with positional backtracking.
      while (Peek() == '-' && IsIdentStart(Peek(1))) {
        size_t saved_pos = pos_;
        int saved_line = line_, saved_col = col_;
        Advance();  // '-'
        std::string segment = ReadIdentSegment();
        std::string candidate = ident + "-" + segment;
        if (IsPrefixOfAnyKeyword(candidate)) {
          ident = std::move(candidate);
        } else {
          pos_ = saved_pos;
          line_ = saved_line;
          col_ = saved_col;
          break;
        }
      }
      if (ident.find('-') != std::string::npos && !IsExactKeyword(ident)) {
        return ParseError("incomplete hyphenated keyword '" + ident +
                          "' at line " + std::to_string(line_));
      }
      return Make(Token::Kind::kIdent, std::move(ident));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::string digits;
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        digits.push_back(Advance());
      }
      Token t = Make(Token::Kind::kNumber, digits);
      t.number = std::stoll(digits);
      return t;
    }
    // Two-character comparison symbols first.
    if (c == '<') {
      Advance();
      if (Peek() == '=') {
        Advance();
        return Make(Token::Kind::kSymbol, "<=");
      }
      if (Peek() == '>') {
        Advance();
        return Make(Token::Kind::kSymbol, "<>");
      }
      return Make(Token::Kind::kSymbol, "<");
    }
    if (c == '>') {
      Advance();
      if (Peek() == '=') {
        Advance();
        return Make(Token::Kind::kSymbol, ">=");
      }
      return Make(Token::Kind::kSymbol, ">");
    }
    static const std::string kSingles = ";:,().#=+-*/";
    if (kSingles.find(c) != std::string::npos) {
      Advance();
      return Make(Token::Kind::kSymbol, std::string(1, c));
    }
    return ParseError("unexpected character '" + std::string(1, c) +
                      "' at line " + std::to_string(line_) + ", column " +
                      std::to_string(col_));
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int start_line_ = 1;  // position of the token being lexed (set by Next)
  int start_col_ = 1;
};

}  // namespace

std::string Token::Describe() const {
  switch (kind) {
    case Kind::kIdent:
      return "identifier '" + text + "'";
    case Kind::kNumber:
      return "number " + text;
    case Kind::kSymbol:
      return "'" + text + "'";
    case Kind::kEndOfFile:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Lex(const std::string& source) {
  return LexerImpl(source).Run();
}

}  // namespace ddl
}  // namespace caddb

#include "ddl/parser.h"

#include <set>

#include "ddl/lexer.h"

namespace caddb {
namespace ddl {

namespace {

using expr::Expr;
using expr::ExprPtr;

/// Keywords that terminate entry lists (attributes, subclasses, ...).
const std::set<std::string>& SectionKeywords() {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "inheritor-in", "attributes",     "types-of-subclasses",
      "types-of-subrels", "connections", "constraints",
      "relates",      "transmitter",    "inheritor",
      "inheriting",   "end",            "end-domain",
      "domain",       "obj-type",       "rel-type",
      "inher-rel-type", "inher-rel-typ",
  };
  return *kKeywords;
}

struct ParsedSchema {
  std::vector<std::pair<std::string, Domain>> domains;
  std::vector<ObjectTypeDef> object_types;
  std::vector<RelTypeDef> rel_types;
  std::vector<InherRelTypeDef> inher_rel_types;
};

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, std::vector<std::string>* warnings)
      : tokens_(std::move(tokens)), warnings_(warnings) {}

  Status ParseScript(ParsedSchema* out) {
    out_ = out;
    while (!Peek().Is(Token::Kind::kEndOfFile)) {
      const Token& t = Peek();
      if (t.IsIdent("domain")) {
        CADDB_RETURN_IF_ERROR(ParseDomainDef());
      } else if (t.IsIdent("obj-type")) {
        CADDB_RETURN_IF_ERROR(ParseObjTypeDef());
      } else if (t.IsIdent("rel-type")) {
        CADDB_RETURN_IF_ERROR(ParseRelTypeDef());
      } else if (t.IsIdent("inher-rel-type") || t.IsIdent("inher-rel-typ")) {
        CADDB_RETURN_IF_ERROR(ParseInherRelTypeDef());
      } else {
        return Error("expected a definition (domain / obj-type / rel-type / "
                     "inher-rel-type), got " +
                     t.Describe());
      }
    }
    return OkStatus();
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    ConstraintScope scope;
    CADDB_ASSIGN_OR_RETURN(ExprPtr e, ParseConstraint(&scope));
    if (!Peek().Is(Token::Kind::kEndOfFile) && !Peek().IsSymbol(";")) {
      return Error("unexpected trailing " + Peek().Describe());
    }
    return e;
  }

 private:
  // ---- Token plumbing ----
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool ConsumeSymbol(const std::string& s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeIdent(const std::string& s) {
    if (Peek().IsIdent(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& s) {
    if (!ConsumeSymbol(s)) {
      return Error("expected '" + s + "', got " + Peek().Describe());
    }
    return OkStatus();
  }
  Result<std::string> ExpectIdent() {
    if (!Peek().Is(Token::Kind::kIdent)) {
      return Error("expected an identifier, got " + Peek().Describe());
    }
    return Advance().text;
  }
  /// Position of the token about to be consumed — recorded into definitions
  /// so analyzer diagnostics can point back at the DDL source.
  SourceLoc Loc() const { return {Peek().line, Peek().column}; }
  Status Error(const std::string& message) const {
    return ParseError(message + " (line " + std::to_string(Peek().line) +
                      ", column " + std::to_string(Peek().column) + ")");
  }
  void Warn(const std::string& message) {
    if (warnings_ != nullptr) warnings_->push_back(message);
  }

  bool AtSectionKeyword() const {
    return Peek().Is(Token::Kind::kIdent) &&
           SectionKeywords().count(Peek().text) > 0;
  }

  /// `end <name>? ;` with warning on name mismatch (paper typo tolerance).
  Status ParseEnd(const std::string& defined_name) {
    if (!ConsumeIdent("end")) {
      return Error("expected 'end' closing '" + defined_name + "', got " +
                   Peek().Describe());
    }
    if (Peek().Is(Token::Kind::kIdent)) {
      std::string closing = Advance().text;
      if (closing != defined_name) {
        Warn("definition '" + defined_name + "' closed with 'end " + closing +
             "'");
      }
    }
    return ExpectSymbol(";");
  }

  // ---- Domains ----
  Status ParseDomainDef() {
    Advance();  // domain
    CADDB_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    CADDB_RETURN_IF_ERROR(ExpectSymbol("="));
    CADDB_ASSIGN_OR_RETURN(Domain d, ParseDomainExpr());
    ConsumeSymbol(";");
    out_->domains.emplace_back(std::move(name), std::move(d));
    return OkStatus();
  }

  Result<Domain> ParseDomainExpr() {
    const Token& t = Peek();
    if (t.IsIdent("set-of")) {
      Advance();
      CADDB_ASSIGN_OR_RETURN(Domain e, ParseDomainExpr());
      return Domain::SetOf(std::move(e));
    }
    if (t.IsIdent("list-of")) {
      Advance();
      CADDB_ASSIGN_OR_RETURN(Domain e, ParseDomainExpr());
      return Domain::ListOf(std::move(e));
    }
    if (t.IsIdent("matrix-of")) {
      Advance();
      CADDB_ASSIGN_OR_RETURN(Domain e, ParseDomainExpr());
      return Domain::MatrixOf(std::move(e));
    }
    if (t.IsIdent("record")) {
      Advance();
      CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
      CADDB_ASSIGN_OR_RETURN(auto fields, ParseRecordFields());
      if (!ConsumeIdent("end-domain")) {
        return Error("expected 'end-domain' closing record domain");
      }
      if (Peek().Is(Token::Kind::kIdent) && !AtSectionKeyword()) {
        Advance();  // optional trailing name
      }
      return Domain::Record(std::move(fields));
    }
    if (t.IsIdent("object-of-type")) {
      Advance();
      CADDB_ASSIGN_OR_RETURN(std::string type, ExpectIdent());
      return Domain::Ref(std::move(type));
    }
    if (t.IsIdent("object")) {
      Advance();
      return Domain::Ref();
    }
    if (t.IsSymbol("(")) {
      return ParseParenDomain();
    }
    if (t.Is(Token::Kind::kIdent)) {
      std::string name = Advance().text;
      if (name == "integer") return Domain::Int();
      if (name == "real") return Domain::Real();
      if (name == "boolean") return Domain::Bool();
      if (name == "string" || name == "char") return Domain::String();
      return Domain::Named(std::move(name));
    }
    return Error("expected a domain, got " + t.Describe());
  }

  /// `( IN, OUT )` enumeration or `( X, Y: integer; ... )` record.
  Result<Domain> ParseParenDomain() {
    CADDB_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::string> names;
    CADDB_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    names.push_back(std::move(first));
    while (ConsumeSymbol(",")) {
      CADDB_ASSIGN_OR_RETURN(std::string n, ExpectIdent());
      names.push_back(std::move(n));
    }
    if (ConsumeSymbol(")")) {
      return Domain::Enum(std::move(names));  // pure symbol list
    }
    // Record: names were the first field group.
    CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
    std::vector<Domain::RecordField> fields;
    CADDB_ASSIGN_OR_RETURN(Domain d, ParseDomainExpr());
    for (const std::string& n : names) fields.emplace_back(n, d);
    while (ConsumeSymbol(";")) {
      if (Peek().IsSymbol(")")) break;
      std::vector<std::string> group;
      CADDB_ASSIGN_OR_RETURN(std::string n, ExpectIdent());
      group.push_back(std::move(n));
      while (ConsumeSymbol(",")) {
        CADDB_ASSIGN_OR_RETURN(std::string more, ExpectIdent());
        group.push_back(std::move(more));
      }
      CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
      CADDB_ASSIGN_OR_RETURN(Domain gd, ParseDomainExpr());
      for (const std::string& n : group) fields.emplace_back(n, gd);
    }
    CADDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Domain::Record(std::move(fields));
  }

  /// `Length, Width: integer; ...` until a section keyword / closer.
  Result<std::vector<Domain::RecordField>> ParseRecordFields() {
    std::vector<Domain::RecordField> fields;
    while (Peek().Is(Token::Kind::kIdent) && !AtSectionKeyword()) {
      std::vector<std::string> group;
      CADDB_ASSIGN_OR_RETURN(std::string n, ExpectIdent());
      group.push_back(std::move(n));
      while (ConsumeSymbol(",")) {
        CADDB_ASSIGN_OR_RETURN(std::string more, ExpectIdent());
        group.push_back(std::move(more));
      }
      CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
      CADDB_ASSIGN_OR_RETURN(Domain d, ParseDomainExpr());
      for (const std::string& n : group) fields.emplace_back(n, d);
      ConsumeSymbol(";");
    }
    return fields;
  }

  // ---- Attribute lists ----
  Result<std::vector<AttributeDef>> ParseAttributeList() {
    std::vector<AttributeDef> attrs;
    while (Peek().Is(Token::Kind::kIdent) && !AtSectionKeyword()) {
      std::vector<std::pair<std::string, SourceLoc>> group;
      SourceLoc loc = Loc();
      CADDB_ASSIGN_OR_RETURN(std::string n, ExpectIdent());
      group.emplace_back(std::move(n), loc);
      while (ConsumeSymbol(",")) {
        loc = Loc();
        CADDB_ASSIGN_OR_RETURN(std::string more, ExpectIdent());
        group.emplace_back(std::move(more), loc);
      }
      CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
      CADDB_ASSIGN_OR_RETURN(Domain d, ParseDomainExpr());
      for (auto& [name, name_loc] : group) attrs.push_back({name, d, name_loc});
      CADDB_RETURN_IF_ERROR(ExpectSymbol(";"));
    }
    return attrs;
  }

  // ---- Subclass lists (shared by obj-types, rel-types, inher-rel-types) ----
  Result<std::vector<SubclassDef>> ParseSubclassList(
      const std::string& owner_name) {
    std::vector<SubclassDef> subclasses;
    while (Peek().Is(Token::Kind::kIdent) && !AtSectionKeyword()) {
      SourceLoc name_loc = Loc();
      CADDB_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
      if (Peek().IsIdent("inheritor-in") || Peek().IsIdent("attributes")) {
        // Inline implicit element type (paper 4.3). Only `inheritor-in:` and
        // `attributes:` may appear inline; a following `constraints:` (or any
        // other section) always belongs to the enclosing definition —
        // otherwise ScrewingType's constraints would be swallowed by its
        // inline Nut type.
        ObjectTypeDef inline_type;
        inline_type.name = owner_name + "." + name;
        inline_type.loc = name_loc;
        while (true) {
          if (ConsumeIdent("inheritor-in")) {
            CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
            inline_type.inheritor_in_loc = Loc();
            CADDB_ASSIGN_OR_RETURN(inline_type.inheritor_in, ExpectIdent());
            ConsumeSymbol(";");
          } else if (Peek().IsIdent("attributes") &&
                     Peek(1).IsSymbol(":") && IsAttributeListAhead(2)) {
            Advance();
            Advance();
            CADDB_ASSIGN_OR_RETURN(inline_type.attributes,
                                   ParseAttributeList());
          } else {
            break;
          }
        }
        subclasses.push_back({name, inline_type.name, name_loc});
        out_->object_types.push_back(std::move(inline_type));
      } else {
        CADDB_ASSIGN_OR_RETURN(std::string element_type, ExpectIdent());
        CADDB_RETURN_IF_ERROR(ExpectSymbol(";"));
        subclasses.push_back({name, std::move(element_type), name_loc});
      }
    }
    return subclasses;
  }

  /// Heuristic: an `attributes:` keyword inside an inline subclass body is
  /// genuine only if followed by `Ident [, Ident]* :` — always true in
  /// practice; kept for clearer errors.
  bool IsAttributeListAhead(size_t ahead) const {
    return Peek(ahead).Is(Token::Kind::kIdent);
  }

  // ---- Subrel lists ----
  Result<std::vector<SubrelDef>> ParseSubrelList() {
    std::vector<SubrelDef> subrels;
    while (Peek().Is(Token::Kind::kIdent) && !AtSectionKeyword()) {
      SubrelDef def;
      def.loc = Loc();
      CADDB_ASSIGN_OR_RETURN(def.name, ExpectIdent());
      CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
      CADDB_ASSIGN_OR_RETURN(def.rel_type, ExpectIdent());
      if (ConsumeIdent("where")) {
        // The full constraint grammar applies here, including `for`
        // quantifiers (WeightCarrying_Structure's Screwings clause).
        ConstraintScope scope;
        CADDB_ASSIGN_OR_RETURN(def.where, ParseConstraint(&scope));
        def.where_text = def.where->ToString();
      }
      CADDB_RETURN_IF_ERROR(ExpectSymbol(";"));
      subrels.push_back(std::move(def));
    }
    return subrels;
  }

  // ---- Constraints ----
  /// Variable bindings accumulated across one constraints: section; the
  /// paper's ScrewingType references `s`/`n` from an earlier `for` in later
  /// constraints.
  struct ConstraintScope {
    std::vector<expr::Binding> bindings;
  };

  Result<std::vector<ConstraintDef>> ParseConstraintList() {
    std::vector<ConstraintDef> constraints;
    ConstraintScope scope;
    while (!AtSectionKeyword() &&
           !Peek().Is(Token::Kind::kEndOfFile)) {
      SourceLoc loc = Loc();
      CADDB_ASSIGN_OR_RETURN(ExprPtr e, ParseConstraint(&scope));
      CADDB_RETURN_IF_ERROR(ExpectSymbol(";"));
      constraints.push_back({e->ToString(), e, loc});
    }
    return constraints;
  }

  /// constraint := 'for' bindings ':' constraint
  ///             | 'exists' bindings ':' constraint
  ///             | expr ['where' expr]
  /// `for` bindings accumulate across the section; `exists` bindings are
  /// local to their own body.
  Result<ExprPtr> ParseConstraint(ConstraintScope* scope) {
    if (ConsumeIdent("exists")) {
      std::vector<expr::Binding> fresh;
      if (ConsumeSymbol("(")) {
        CADDB_ASSIGN_OR_RETURN(expr::Binding b, ParseBinding());
        fresh.push_back(std::move(b));
        while (ConsumeSymbol(",")) {
          CADDB_ASSIGN_OR_RETURN(expr::Binding more, ParseBinding());
          fresh.push_back(std::move(more));
        }
        CADDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        CADDB_ASSIGN_OR_RETURN(expr::Binding b, ParseBinding());
        fresh.push_back(std::move(b));
      }
      CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
      // The body sees the outer for-scope via the enclosing wrap; the
      // exists bindings stay local.
      ConstraintScope body_scope;  // no accumulation inside exists
      CADDB_ASSIGN_OR_RETURN(ExprPtr body, ParseExpr(&body_scope));
      ExprPtr result = Expr::Exists(std::move(fresh), body);
      if (!scope->bindings.empty()) {
        return Expr::ForAll(scope->bindings, result);
      }
      return result;
    }
    if (ConsumeIdent("for")) {
      std::vector<expr::Binding> fresh;
      if (ConsumeSymbol("(")) {
        CADDB_ASSIGN_OR_RETURN(expr::Binding b, ParseBinding());
        fresh.push_back(std::move(b));
        while (ConsumeSymbol(",")) {
          CADDB_ASSIGN_OR_RETURN(expr::Binding more, ParseBinding());
          fresh.push_back(std::move(more));
        }
        CADDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        CADDB_ASSIGN_OR_RETURN(expr::Binding b, ParseBinding());
        fresh.push_back(std::move(b));
      }
      CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
      // Merge into the section scope. A re-binding of the same variable
      // replaces the old binding (last one wins); an identical re-binding is
      // dropped — this keeps printed schemas (whose `for`s carry the full
      // accumulated binding list) stable under reparsing.
      for (const auto& b : fresh) {
        bool replaced = false;
        for (auto& existing : scope->bindings) {
          if (existing.var == b.var) {
            existing.collection = b.collection;
            replaced = true;
            break;
          }
        }
        if (!replaced) scope->bindings.push_back(b);
      }
      CADDB_ASSIGN_OR_RETURN(ExprPtr body, ParseConstraint(scope));
      return body;  // already wrapped with the full accumulated scope
    }
    CADDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr(scope));
    if (ConsumeIdent("where")) {
      ConstraintScope filter_scope = *scope;
      CADDB_ASSIGN_OR_RETURN(ExprPtr filter, ParseExpr(&filter_scope));
      e = Expr::AttachWhereFilter(e, filter);
    }
    if (!scope->bindings.empty()) {
      return Expr::ForAll(scope->bindings, e);
    }
    return e;
  }

  Result<expr::Binding> ParseBinding() {
    CADDB_ASSIGN_OR_RETURN(std::string var, ExpectIdent());
    if (!ConsumeIdent("in")) {
      return Error("expected 'in' in for-binding, got " + Peek().Describe());
    }
    CADDB_ASSIGN_OR_RETURN(ExprPtr collection, ParsePath());
    return expr::Binding{std::move(var), std::move(collection)};
  }

  // ---- Expressions ----
  Result<ExprPtr> ParseExpr(ConstraintScope* scope) { return ParseOr(scope); }

  Result<ExprPtr> ParseOr(ConstraintScope* scope) {
    CADDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd(scope));
    while (ConsumeIdent("or")) {
      CADDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd(scope));
      lhs = Expr::Or(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd(ConstraintScope* scope) {
    CADDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot(scope));
    while (ConsumeIdent("and")) {
      CADDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot(scope));
      lhs = Expr::And(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot(ConstraintScope* scope) {
    if (ConsumeIdent("not")) {
      CADDB_ASSIGN_OR_RETURN(ExprPtr e, ParseNot(scope));
      return Expr::Not(e);
    }
    return ParseComparison(scope);
  }

  Result<ExprPtr> ParseComparison(ConstraintScope* scope) {
    CADDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive(scope));
    const Token& t = Peek();
    Expr::Op op;
    if (t.IsSymbol("=")) {
      op = Expr::Op::kEq;
    } else if (t.IsSymbol("<>")) {
      op = Expr::Op::kNe;
    } else if (t.IsSymbol("<=")) {
      op = Expr::Op::kLe;
    } else if (t.IsSymbol(">=")) {
      op = Expr::Op::kGe;
    } else if (t.IsSymbol("<")) {
      op = Expr::Op::kLt;
    } else if (t.IsSymbol(">")) {
      op = Expr::Op::kGt;
    } else if (t.IsIdent("in")) {
      op = Expr::Op::kIn;
    } else {
      return lhs;
    }
    Advance();
    CADDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive(scope));
    return Expr::Binary(op, lhs, rhs);
  }

  Result<ExprPtr> ParseAdditive(ConstraintScope* scope) {
    CADDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative(scope));
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      Expr::Op op = Peek().IsSymbol("+") ? Expr::Op::kAdd : Expr::Op::kSub;
      Advance();
      CADDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative(scope));
      lhs = Expr::Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative(ConstraintScope* scope) {
    CADDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary(scope));
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      Expr::Op op = Peek().IsSymbol("*") ? Expr::Op::kMul : Expr::Op::kDiv;
      Advance();
      CADDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary(scope));
      lhs = Expr::Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary(ConstraintScope* scope) {
    if (ConsumeSymbol("-")) {
      CADDB_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary(scope));
      return Expr::Neg(e);
    }
    return ParsePrimary(scope);
  }

  Result<ExprPtr> ParsePrimary(ConstraintScope* scope) {
    const Token& t = Peek();
    if (t.Is(Token::Kind::kNumber)) {
      Advance();
      return Expr::Int(t.number);
    }
    if (t.IsSymbol("(")) {
      Advance();
      CADDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr(scope));
      CADDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (t.IsSymbol("#")) {
      // `# s in Bolt` — cardinality; the variable name is decorative.
      Advance();
      CADDB_ASSIGN_OR_RETURN(std::string var, ExpectIdent());
      (void)var;
      if (!ConsumeIdent("in")) {
        return Error("expected 'in' after '#" + var + "'");
      }
      CADDB_ASSIGN_OR_RETURN(ExprPtr collection, ParsePath());
      return Expr::Card(collection);
    }
    if (t.IsIdent("count") || t.IsIdent("sum") || t.IsIdent("min") ||
        t.IsIdent("max")) {
      std::string fn = Advance().text;
      CADDB_RETURN_IF_ERROR(ExpectSymbol("("));
      CADDB_ASSIGN_OR_RETURN(ExprPtr arg, ParsePath());
      CADDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      // Inline filter form `count(Pins) where (<cond>)` — the notation
      // ToString emits; the paper's trailing `... = 2 where <cond>` form is
      // handled at the constraint level.
      ExprPtr filter;
      if (Peek().IsIdent("where") && Peek(1).IsSymbol("(")) {
        Advance();
        ConstraintScope filter_scope;
        CADDB_ASSIGN_OR_RETURN(filter, ParsePrimary(&filter_scope));
      }
      if (fn == "count") return Expr::Count(arg, filter);
      if (fn == "sum") return Expr::Sum(arg, filter);
      if (fn == "min") return Expr::Min(arg, filter);
      return Expr::Max(arg, filter);
    }
    if (t.IsIdent("true")) {
      Advance();
      return Expr::Literal(Value::Bool(true));
    }
    if (t.IsIdent("false")) {
      Advance();
      return Expr::Literal(Value::Bool(false));
    }
    if (t.Is(Token::Kind::kIdent)) {
      return ParsePath();
    }
    return Error("expected an expression, got " + t.Describe());
  }

  Result<ExprPtr> ParsePath() {
    CADDB_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    std::vector<std::string> segments{std::move(first)};
    while (ConsumeSymbol(".")) {
      CADDB_ASSIGN_OR_RETURN(std::string seg, ExpectIdent());
      segments.push_back(std::move(seg));
    }
    return Expr::Path(std::move(segments));
  }

  // ---- obj-type ----
  Status ParseObjTypeDef() {
    Advance();  // obj-type
    ObjectTypeDef def;
    def.loc = Loc();
    CADDB_ASSIGN_OR_RETURN(def.name, ExpectIdent());
    CADDB_RETURN_IF_ERROR(ExpectSymbol("="));
    while (!Peek().IsIdent("end")) {
      if (ConsumeIdent("inheritor-in")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        def.inheritor_in_loc = Loc();
        CADDB_ASSIGN_OR_RETURN(def.inheritor_in, ExpectIdent());
        ConsumeSymbol(";");
      } else if (ConsumeIdent("attributes")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto attrs, ParseAttributeList());
        for (auto& a : attrs) def.attributes.push_back(std::move(a));
      } else if (ConsumeIdent("types-of-subclasses")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto subclasses, ParseSubclassList(def.name));
        for (auto& s : subclasses) def.subclasses.push_back(std::move(s));
      } else if (ConsumeIdent("types-of-subrels") ||
                 ConsumeIdent("connections")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto subrels, ParseSubrelList());
        for (auto& s : subrels) def.subrels.push_back(std::move(s));
      } else if (ConsumeIdent("constraints")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto constraints, ParseConstraintList());
        for (auto& c : constraints) def.constraints.push_back(std::move(c));
      } else {
        return Error("unexpected " + Peek().Describe() +
                     " in obj-type '" + def.name + "'");
      }
    }
    CADDB_RETURN_IF_ERROR(ParseEnd(def.name));
    out_->object_types.push_back(std::move(def));
    return OkStatus();
  }

  // ---- rel-type ----
  Status ParseRelTypeDef() {
    Advance();  // rel-type
    RelTypeDef def;
    def.loc = Loc();
    CADDB_ASSIGN_OR_RETURN(def.name, ExpectIdent());
    CADDB_RETURN_IF_ERROR(ExpectSymbol("="));
    std::vector<SubclassDef> subclasses;
    while (!Peek().IsIdent("end")) {
      if (ConsumeIdent("relates")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_RETURN_IF_ERROR(ParseParticipantList(&def));
      } else if (ConsumeIdent("attributes")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto attrs, ParseAttributeList());
        for (auto& a : attrs) def.attributes.push_back(std::move(a));
      } else if (ConsumeIdent("types-of-subclasses")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto subs, ParseSubclassList(def.name));
        for (auto& s : subs) def.subclasses.push_back(std::move(s));
      } else if (ConsumeIdent("constraints")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto constraints, ParseConstraintList());
        for (auto& c : constraints) def.constraints.push_back(std::move(c));
      } else {
        return Error("unexpected " + Peek().Describe() + " in rel-type '" +
                     def.name + "'");
      }
    }
    CADDB_RETURN_IF_ERROR(ParseEnd(def.name));
    out_->rel_types.push_back(std::move(def));
    return OkStatus();
  }

  /// `Pin1, Pin2: object-of-type PinType;` /
  /// `Bores: set-of object-of-type BoreType;` / `Thing: object;`
  Status ParseParticipantList(RelTypeDef* def) {
    while (Peek().Is(Token::Kind::kIdent) && !AtSectionKeyword()) {
      std::vector<std::pair<std::string, SourceLoc>> roles;
      SourceLoc role_loc = Loc();
      CADDB_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
      roles.emplace_back(std::move(first), role_loc);
      while (ConsumeSymbol(",")) {
        role_loc = Loc();
        CADDB_ASSIGN_OR_RETURN(std::string more, ExpectIdent());
        roles.emplace_back(std::move(more), role_loc);
      }
      CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
      bool is_set = ConsumeIdent("set-of");
      std::string type;
      if (ConsumeIdent("object-of-type")) {
        CADDB_ASSIGN_OR_RETURN(type, ExpectIdent());
      } else if (ConsumeIdent("object")) {
        // any type
      } else {
        return Error("expected 'object-of-type <T>' or 'object' in relates "
                     "clause, got " +
                     Peek().Describe());
      }
      CADDB_RETURN_IF_ERROR(ExpectSymbol(";"));
      for (auto& [role, loc] : roles) {
        def->participants.push_back({role, type, is_set, loc});
      }
    }
    return OkStatus();
  }

  // ---- inher-rel-type ----
  Status ParseInherRelTypeDef() {
    Advance();  // inher-rel-type / inher-rel-typ
    InherRelTypeDef def;
    def.loc = Loc();
    CADDB_ASSIGN_OR_RETURN(def.name, ExpectIdent());
    CADDB_RETURN_IF_ERROR(ExpectSymbol("="));
    while (!Peek().IsIdent("end")) {
      if (ConsumeIdent("transmitter")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        if (!ConsumeIdent("object-of-type")) {
          return Error("transmitter must be 'object-of-type <T>'");
        }
        def.transmitter_loc = Loc();
        CADDB_ASSIGN_OR_RETURN(def.transmitter_type, ExpectIdent());
        ConsumeSymbol(";");  // the paper omits this semicolon at times
      } else if (ConsumeIdent("inheritor")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        if (Peek().IsIdent("object-of-type")) {
          Advance();
          def.inheritor_loc = Loc();
          CADDB_ASSIGN_OR_RETURN(def.inheritor_type, ExpectIdent());
        } else if (ConsumeIdent("object")) {
          // any type may inherit
        } else {
          return Error(
              "inheritor must be 'object-of-type <T>' or 'object'");
        }
        ConsumeSymbol(";");
      } else if (ConsumeIdent("inheriting")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        def.inheriting_locs.push_back(Loc());
        CADDB_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
        def.inheriting.push_back(std::move(first));
        while (ConsumeSymbol(",")) {
          def.inheriting_locs.push_back(Loc());
          CADDB_ASSIGN_OR_RETURN(std::string more, ExpectIdent());
          def.inheriting.push_back(std::move(more));
        }
        ConsumeSymbol(";");
      } else if (ConsumeIdent("attributes")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto attrs, ParseAttributeList());
        for (auto& a : attrs) def.attributes.push_back(std::move(a));
      } else if (ConsumeIdent("types-of-subclasses")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto subs, ParseSubclassList(def.name));
        for (auto& s : subs) def.subclasses.push_back(std::move(s));
      } else if (ConsumeIdent("constraints")) {
        CADDB_RETURN_IF_ERROR(ExpectSymbol(":"));
        CADDB_ASSIGN_OR_RETURN(auto constraints, ParseConstraintList());
        for (auto& c : constraints) def.constraints.push_back(std::move(c));
      } else {
        return Error("unexpected " + Peek().Describe() +
                     " in inher-rel-type '" + def.name + "'");
      }
    }
    CADDB_RETURN_IF_ERROR(ParseEnd(def.name));
    out_->inher_rel_types.push_back(std::move(def));
    return OkStatus();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<std::string>* warnings_;
  ParsedSchema* out_ = nullptr;
};

}  // namespace

Status Parser::ParseSchema(const std::string& source, Catalog* catalog,
                           std::vector<std::string>* warnings) {
  Result<std::vector<Token>> tokens = Lex(source);
  if (!tokens.ok()) return tokens.status();
  ParsedSchema parsed;
  ParserImpl impl(std::move(*tokens), warnings);
  CADDB_RETURN_IF_ERROR(impl.ParseScript(&parsed));

  // Two-phase, atomic registration: stage into a scratch catalog first so
  // every local registration check (duplicate names within the batch,
  // structural validity of each definition) runs before the real catalog is
  // touched, and pre-check collisions against the target. A failure at any
  // point leaves `catalog` untouched.
  Catalog scratch;
  for (auto& [name, domain] : parsed.domains) {
    if (catalog->HasName(name)) {
      return AlreadyExists("name '" + name + "' is already registered");
    }
    CADDB_RETURN_IF_ERROR(scratch.RegisterDomain(name, domain));
  }
  for (auto& def : parsed.object_types) {
    if (catalog->HasName(def.name)) {
      return AlreadyExists("name '" + def.name + "' is already registered");
    }
    CADDB_RETURN_IF_ERROR(scratch.RegisterObjectType(def));
  }
  for (auto& def : parsed.rel_types) {
    if (catalog->HasName(def.name)) {
      return AlreadyExists("name '" + def.name + "' is already registered");
    }
    CADDB_RETURN_IF_ERROR(scratch.RegisterRelType(def));
  }
  for (auto& def : parsed.inher_rel_types) {
    if (catalog->HasName(def.name)) {
      return AlreadyExists("name '" + def.name + "' is already registered");
    }
    CADDB_RETURN_IF_ERROR(scratch.RegisterInherRelType(def));
  }

  // All checks passed; the real registrations below cannot fail.
  for (auto& [name, domain] : parsed.domains) {
    CADDB_RETURN_IF_ERROR(catalog->RegisterDomain(name, std::move(domain)));
  }
  for (auto& def : parsed.object_types) {
    CADDB_RETURN_IF_ERROR(catalog->RegisterObjectType(std::move(def)));
  }
  for (auto& def : parsed.rel_types) {
    CADDB_RETURN_IF_ERROR(catalog->RegisterRelType(std::move(def)));
  }
  for (auto& def : parsed.inher_rel_types) {
    CADDB_RETURN_IF_ERROR(catalog->RegisterInherRelType(std::move(def)));
  }
  return OkStatus();
}

Result<expr::ExprPtr> Parser::ParseConstraintExpression(
    const std::string& text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  ParserImpl impl(std::move(*tokens), nullptr);
  return impl.ParseStandaloneExpression();
}

}  // namespace ddl
}  // namespace caddb

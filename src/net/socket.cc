#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/failpoint.h"

namespace caddb {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void Socket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void Socket::ShutdownBoth() {
  const int fd = this->fd();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Status Socket::SendAll(const void* data, size_t n) {
  const char* site = write_site_.load(std::memory_order_acquire);
  if (site != nullptr && fault::FailpointRegistry::Global().any_armed()) {
    fault::FiredAction a;
    if (fault::FailpointRegistry::Global().Hit(site, &a)) {
      switch (a.kind) {
        case fault::ActionKind::kDrop:
          return OkStatus();  // acknowledged, never reaches the wire
        case fault::ActionKind::kDelay:
          fault::FailpointRegistry::Global().SleepFor(a.delay_us);
          break;  // slow write: stall, then send normally
        case fault::ActionKind::kTruncate: {
          // Half the frame escapes, then the connection dies mid-frame —
          // the peer's decoder sees a torn length-prefixed frame.
          const int fd = this->fd();
          if (n > 1) {
            (void)::send(fd, data, n / 2, MSG_NOSIGNAL);
          }
          ShutdownBoth();
          return Unavailable(std::string("failpoint ") + site +
                             ": injected mid-frame truncation");
        }
        case fault::ActionKind::kReset:
          ShutdownBoth();
          return Unavailable(std::string("failpoint ") + site +
                             ": injected connection reset");
        default:
          return Unavailable(std::string("failpoint ") + site +
                             ": injected send failure");
      }
    }
  }
  const int fd = this->fd();
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Unavailable(Errno("send"));
    }
    if (w == 0) return Unavailable("send: connection closed");
    sent += static_cast<size_t>(w);
  }
  return OkStatus();
}

Result<size_t> Socket::Recv(void* buf, size_t n) {
  const char* site = read_site_.load(std::memory_order_acquire);
  if (site != nullptr && fault::FailpointRegistry::Global().any_armed()) {
    fault::FiredAction a;
    if (fault::FailpointRegistry::Global().Hit(site, &a)) {
      switch (a.kind) {
        case fault::ActionKind::kDelay:
          // Slow-loris read: stall before draining the kernel buffer.
          fault::FailpointRegistry::Global().SleepFor(a.delay_us);
          break;
        case fault::ActionKind::kDrop:
          return size_t{0};  // fake orderly EOF
        case fault::ActionKind::kReset:
          ShutdownBoth();
          return Unavailable(std::string("failpoint ") + site +
                             ": injected connection reset");
        default:
          return Unavailable(std::string("failpoint ") + site +
                             ": injected recv failure");
      }
    }
  }
  const int fd = this->fd();
  while (true) {
    ssize_t r = ::recv(fd, buf, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Unavailable("recv timed out");
      }
      return Unavailable(Errno("recv"));
    }
    return static_cast<size_t>(r);
  }
}

Status Socket::SetRecvTimeout(uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(this->fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
      0) {
    return InternalError(Errno("setsockopt(SO_RCVTIMEO)"));
  }
  return OkStatus();
}

Result<Socket> ListenTcp(const std::string& address, uint16_t port,
                         int backlog, uint16_t* bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return InternalError(Errno("socket"));
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgument("bad bind address '" + address + "'");
  }
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Unavailable(Errno("bind " + address + ":" + std::to_string(port)));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return Unavailable(Errno("listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      return InternalError(Errno("getsockname"));
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Result<Socket> Accept(const Socket& listener) {
  while (true) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Unavailable(Errno("accept"));
    }
    Socket sock(fd);
    int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
  }
}

std::string PeerName(const Socket& sock) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return "?";
  }
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

Result<Socket> ConnectTcp(const std::string& address, uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return InternalError(Errno("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgument("bad address '" + address + "'");
  }
  while (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    return Unavailable(
        Errno("connect " + address + ":" + std::to_string(port)));
  }
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<std::pair<std::string, uint16_t>> SplitHostPort(
    const std::string& host_port) {
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos) {
    return InvalidArgument("expected host:port, got '" + host_port + "'");
  }
  std::string host = host_port.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  try {
    unsigned long port = std::stoul(host_port.substr(colon + 1));
    if (port == 0 || port > 65535) {
      return InvalidArgument("port out of range in '" + host_port + "'");
    }
    return std::make_pair(std::move(host), static_cast<uint16_t>(port));
  } catch (...) {
    return InvalidArgument("bad port in '" + host_port + "'");
  }
}

}  // namespace net
}  // namespace caddb

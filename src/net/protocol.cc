#include "net/protocol.h"

#include <cstdio>

#include "wal/crc32c.h"

namespace caddb {
namespace net {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kProtocolError);
}

Status ProtocolError(const std::string& what) {
  return InvalidArgument("protocol error: " + what);
}

}  // namespace

std::string EncodeFrame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size() + kFrameTrailerSize);
  PutU32(&out, kFrameMagic);
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  // CRC over version..payload: everything after the magic, before the CRC.
  const uint32_t crc = wal::Crc32c(out.data() + 4, out.size() - 4);
  PutU32(&out, wal::Crc32cMask(crc));
  return out;
}

Status FrameDecoder::Feed(const void* data, size_t n) {
  if (!error_.ok()) return error_;
  buffer_.append(static_cast<const char*>(data), n);
  error_ = Parse();
  return error_;
}

Status FrameDecoder::Parse() {
  while (buffer_.size() - consumed_ >= kFrameHeaderSize) {
    const char* p = buffer_.data() + consumed_;
    const uint32_t magic = GetU32(p);
    if (magic != kFrameMagic) {
      return ProtocolError("bad frame magic 0x" + [&] {
        char hex[16];
        std::snprintf(hex, sizeof(hex), "%08x", magic);
        return std::string(hex);
      }());
    }
    const uint8_t version = static_cast<uint8_t>(p[4]);
    if (version != kProtocolVersion) {
      return ProtocolError("unsupported protocol version " +
                           std::to_string(version));
    }
    const uint8_t type = static_cast<uint8_t>(p[5]);
    if (!ValidFrameType(type)) {
      return ProtocolError("unknown frame type " + std::to_string(type));
    }
    const uint32_t length = GetU32(p + 6);
    if (length > kMaxFramePayload) {
      return ProtocolError("oversized frame: " + std::to_string(length) +
                           " bytes (max " + std::to_string(kMaxFramePayload) +
                           ")");
    }
    const size_t total = kFrameHeaderSize + length + kFrameTrailerSize;
    if (buffer_.size() - consumed_ < total) break;  // wait for more bytes
    const uint32_t stored =
        wal::Crc32cUnmask(GetU32(p + kFrameHeaderSize + length));
    const uint32_t actual =
        wal::Crc32c(p + 4, kFrameHeaderSize - 4 + length);
    if (stored != actual) {
      return ProtocolError("frame CRC mismatch");
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.assign(p + kFrameHeaderSize, length);
    frames_.push_back(std::move(frame));
    consumed_ += total;
  }
  // Compact once the consumed prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return OkStatus();
}

bool FrameDecoder::Next(Frame* frame) {
  if (frames_.empty()) return false;
  *frame = std::move(frames_.front());
  frames_.pop_front();
  return true;
}

namespace {

// "\0T1" + u64 trace_id + u64 parent_span_id. The NUL cannot begin a
// command line or output, so the block's presence is self-describing.
constexpr size_t kTraceExtSize = 3 + 8 + 8;

void AppendTraceExt(std::string* out, const obs::TraceContext& ctx) {
  out->push_back('\0');
  out->push_back('T');
  out->push_back('1');
  PutU64(out, ctx.trace_id);
  PutU64(out, ctx.parent_span_id);
}

// Consumes a trace extension at `*offset` if one is present; advances the
// offset past it. Absence is not an error (old peer); a NUL that is not a
// well-formed extension is.
Status ConsumeTraceExt(const std::string& payload, size_t* offset,
                       obs::TraceContext* ctx) {
  *ctx = obs::TraceContext{};
  if (*offset >= payload.size() || payload[*offset] != '\0') {
    return OkStatus();
  }
  if (payload.size() < *offset + kTraceExtSize ||
      payload[*offset + 1] != 'T' || payload[*offset + 2] != '1') {
    return ProtocolError("malformed trace extension");
  }
  ctx->trace_id = GetU64(payload.data() + *offset + 3);
  ctx->parent_span_id = GetU64(payload.data() + *offset + 11);
  *offset += kTraceExtSize;
  return OkStatus();
}

}  // namespace

bool BannerHasCapability(const std::string& banner, const std::string& cap) {
  size_t pos = 0;
  while (pos < banner.size()) {
    size_t end = banner.find(' ', pos);
    if (end == std::string::npos) end = banner.size();
    const std::string word = banner.substr(pos, end - pos);
    if (word.rfind("caps=", 0) == 0) {
      size_t at = 5;
      while (at <= word.size()) {
        size_t comma = word.find(',', at);
        if (comma == std::string::npos) comma = word.size();
        if (word.compare(at, comma - at, cap) == 0) return true;
        at = comma + 1;
      }
    }
    pos = end + 1;
  }
  return false;
}

std::string EncodeRequestPayload(uint64_t id, const std::string& line) {
  return EncodeRequestPayload(id, line, obs::TraceContext{});
}

std::string EncodeRequestPayload(uint64_t id, const std::string& line,
                                 const obs::TraceContext& ctx) {
  std::string out;
  PutU64(&out, id);
  if (ctx.valid()) AppendTraceExt(&out, ctx);
  out.append(line);
  return out;
}

Status DecodeRequestPayload(const std::string& payload, uint64_t* id,
                            std::string* line) {
  obs::TraceContext ignored;
  return DecodeRequestPayload(payload, id, line, &ignored);
}

Status DecodeRequestPayload(const std::string& payload, uint64_t* id,
                            std::string* line, obs::TraceContext* ctx) {
  if (payload.size() < 8) return ProtocolError("short request payload");
  *id = GetU64(payload.data());
  size_t offset = 8;
  CADDB_RETURN_IF_ERROR(ConsumeTraceExt(payload, &offset, ctx));
  line->assign(payload, offset, payload.size() - offset);
  return OkStatus();
}

std::string EncodeResponsePayload(uint64_t id, bool error,
                                  const std::string& output) {
  return EncodeResponsePayload(id, error, output, obs::TraceContext{});
}

std::string EncodeResponsePayload(uint64_t id, bool error,
                                  const std::string& output,
                                  const obs::TraceContext& ctx) {
  std::string out;
  PutU64(&out, id);
  out.push_back(error ? '\1' : '\0');
  if (ctx.valid()) AppendTraceExt(&out, ctx);
  out.append(output);
  return out;
}

Status DecodeResponsePayload(const std::string& payload, uint64_t* id,
                             bool* error, std::string* output) {
  obs::TraceContext ignored;
  return DecodeResponsePayload(payload, id, error, output, &ignored);
}

Status DecodeResponsePayload(const std::string& payload, uint64_t* id,
                             bool* error, std::string* output,
                             obs::TraceContext* ctx) {
  if (payload.size() < 9) return ProtocolError("short response payload");
  *id = GetU64(payload.data());
  *error = payload[8] != '\0';
  size_t offset = 9;
  CADDB_RETURN_IF_ERROR(ConsumeTraceExt(payload, &offset, ctx));
  output->assign(payload, offset, payload.size() - offset);
  return OkStatus();
}

std::string EncodeShedPayload(uint64_t id, const std::string& reason) {
  std::string out;
  PutU64(&out, id);
  out.append(reason);
  return out;
}

Status DecodeShedPayload(const std::string& payload, uint64_t* id,
                         std::string* reason) {
  if (payload.size() < 8) return ProtocolError("short shed payload");
  *id = GetU64(payload.data());
  reason->assign(payload, 8, payload.size() - 8);
  return OkStatus();
}

std::string EncodeHelloPayload(SessionRole requested, const std::string& ns) {
  std::string out;
  out.push_back(static_cast<char>(requested));
  out.append(ns);
  return out;
}

Status DecodeHelloPayload(const std::string& payload, SessionRole* requested,
                          std::string* ns) {
  if (payload.empty()) return ProtocolError("empty hello payload");
  const uint8_t role = static_cast<uint8_t>(payload[0]);
  if (role > static_cast<uint8_t>(SessionRole::kReadOnly)) {
    return ProtocolError("unknown session role " + std::to_string(role));
  }
  *requested = static_cast<SessionRole>(role);
  ns->assign(payload, 1, payload.size() - 1);
  return OkStatus();
}

std::string EncodeHelloOkPayload(SessionRole granted,
                                 const std::string& banner) {
  return EncodeHelloPayload(granted, banner);
}

Status DecodeHelloOkPayload(const std::string& payload, SessionRole* granted,
                            std::string* banner) {
  return DecodeHelloPayload(payload, granted, banner);
}

}  // namespace net
}  // namespace caddb

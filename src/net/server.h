#ifndef CADDB_NET_SERVER_H_
#define CADDB_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "obs/observability.h"
#include "util/result.h"

namespace caddb {

class Database;

namespace replication {
class Follower;
}  // namespace replication

namespace shell {
class Dispatcher;
}  // namespace shell

namespace net {

/// Tuning knobs for a Server. The defaults favor tests and small
/// deployments; caddb_server exposes the load-bearing ones as flags.
struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (port() reports the actual one).
  uint16_t port = 0;
  /// Admission control: connections beyond this are answered with a
  /// connection-level kShed frame and closed, in bounded time.
  size_t max_connections = 64;
  /// Backpressure: the bounded central request queue. A request arriving
  /// with the queue full is answered kShed immediately — the server never
  /// buffers without bound.
  size_t queue_capacity = 128;
  /// Per-session pipelining cap: requests in flight (queued or executing)
  /// beyond this are shed, so one aggressive client cannot monopolize the
  /// queue.
  size_t session_inflight_cap = 8;
  size_t worker_threads = 4;
  /// Every session is read-only regardless of its requested role (the
  /// follower-serving mode).
  bool read_only = false;
  /// When >= 0 and a follower is attached: requests are shed while the
  /// caddb_replication_replica_lag gauge (shipped_lsn - replay_lsn, written
  /// by every poll) exceeds this — the routing signal that keeps far-behind
  /// replicas from serving stale reads. The gauge is read from this
  /// server's obs bundle, so in follower mode `obs` must be the bundle the
  /// Follower reports into (caddb_server wires exactly that).
  int64_t max_replica_lag = -1;
  /// Metrics/trace bundle for the net instruments (and the scrape path
  /// before a follower's first rebuild). Defaults to the database's bundle;
  /// must outlive the server.
  obs::Observability* obs = nullptr;
  /// Per-request deadline: a request that has waited in the queue longer
  /// than this when a worker picks it up is shed ("deadline exceeded")
  /// instead of executed — under chaos (slow-loris reads, stalled
  /// workers) latency degrades to a bounded refusal, never an unbounded
  /// queue wait. 0 disables.
  uint64_t request_deadline_us = 0;
  /// Test hook: runs on the worker thread before each request executes
  /// (used to hold the queue saturated in backpressure tests).
  std::function<void()> worker_hook_for_test;
  /// Test hook: replaces the monotonic clock the deadline check reads.
  std::function<uint64_t()> clock_us_for_test;
};

/// Point-in-time telemetry for `server status` and tests.
struct SessionInfo {
  uint64_t id = 0;
  std::string peer;
  std::string ns;
  bool read_only = false;
  uint64_t requests = 0;
  uint64_t sheds = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  size_t inflight = 0;
  /// Rates since the previous stats() sample (0 on a session's first one).
  double requests_per_sec = 0;
  double bytes_in_per_sec = 0;
  double bytes_out_per_sec = 0;
};

struct ServerStats {
  std::string address;   // "127.0.0.1:4217"
  uint16_t port = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  size_t sessions_active = 0;
  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  uint64_t requests = 0;
  uint64_t sheds = 0;
  uint64_t protocol_errors = 0;
  uint64_t scrapes = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  std::vector<SessionInfo> sessions;
};

/// The caddb network service: a threaded TCP listener speaking the framed
/// protocol in protocol.h, with one Session per connection, admission
/// control and backpressure, plus a plain-HTTP Prometheus scrape path on
/// the same port (`GET /metrics` answers the bytes of the shell's
/// `metrics --format=prom`; `GET /healthz` answers "ok").
///
/// Threading: one accept thread, one reader thread per connection, and a
/// worker pool executing requests. Command execution is serialized under a
/// single execution lock — the Database's plain methods are
/// single-threaded by contract — so the pool's win is overlapping parse,
/// I/O and queueing with execution, and the bounded queue is what keeps a
/// burst from turning into unbounded buffering. Each session owns a
/// shell::Dispatcher, so the full verb set of the local shell round-trips
/// over the wire.
class Server {
 public:
  /// Binds, spawns the threads, returns a serving server. `db` (may be
  /// null when a follower is attached later — requests shed until it has
  /// data) is not owned and must outlive the server.
  static Result<std::unique_ptr<Server>> Start(Database* db,
                                               ServerOptions options = {});

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, wakes every reader, drains the queue and joins all
  /// threads. Idempotent; the destructor calls it.
  void Shutdown();

  uint16_t port() const { return port_; }
  /// "host:port" of the listener.
  std::string address() const;

  ServerStats stats() const;

  /// Serves a replication follower: each request re-fetches
  /// follower->db() (an applying poll replaces the instance wholesale),
  /// sessions are forced read-only, and max_replica_lag gates reads. The
  /// poller must swap databases only under PauseExecution(). Not owned.
  void ServeFollower(replication::Follower* follower);

  /// Blocks request execution while held — the auto-poll daemon wraps each
  /// Follower::Poll in this so a rebuild never frees a database a worker
  /// is reading.
  std::unique_lock<std::mutex> PauseExecution() {
    return std::unique_lock<std::mutex>(exec_mu_);
  }

 private:
  struct Session;
  struct Request;

  Server(Database* db, ServerOptions options);

  Status Listen();
  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Session> session);
  void WorkerLoop();
  void HandleFrame(const std::shared_ptr<Session>& session, Frame frame);
  void HandleHttp(const std::shared_ptr<Session>& session,
                  std::string initial);
  void Execute(const Request& request);
  /// Writes one frame to the session (serialized per session); errors are
  /// swallowed — a vanished peer is not the server's failure.
  void WriteFrame(const std::shared_ptr<Session>& session, FrameType type,
                  const std::string& payload);
  void Shed(const std::shared_ptr<Session>& session, uint64_t id,
            const std::string& reason);
  /// The database requests execute against (the follower's current one
  /// when attached). Callers hold exec_mu_.
  Database* CurrentDb();
  void ReapFinishedReaders();
  uint64_t NowUs() const;

  Database* db_;
  ServerOptions options_;
  obs::Observability* obs_;
  uint16_t port_ = 0;

  Socket listener_;
  std::atomic<bool> stop_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// Serializes request execution (and follower database swaps).
  std::mutex exec_mu_;
  replication::Follower* follower_ = nullptr;  // guarded by exec_mu_
  /// Lock-free mirror of `follower_ != nullptr` for the hello path.
  std::atomic<bool> follower_attached_{false};

  mutable std::mutex sessions_mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> finished_readers_;  // joined by the accept loop
  uint64_t next_session_id_ = 1;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;

  // Lifetime counters (sessions_mu_ for the non-atomic ones).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> scrapes_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};

  obs::Gauge* m_connections_;
  obs::Counter* m_connections_total_;
  obs::Counter* m_bytes_in_;
  obs::Counter* m_bytes_out_;
  obs::Counter* m_requests_;
  obs::Counter* m_sheds_;
  obs::Counter* m_protocol_errors_;
  obs::Counter* m_scrapes_;
  obs::Histogram* m_request_us_;
  /// The follower's lag gauge (same obs bundle), behind max_replica_lag.
  obs::Gauge* m_replica_lag_;
};

}  // namespace net
}  // namespace caddb

#endif  // CADDB_NET_SERVER_H_

#ifndef CADDB_NET_PROTOCOL_H_
#define CADDB_NET_PROTOCOL_H_

#include <cstdint>
#include <deque>
#include <string>

#include "obs/trace.h"
#include "util/result.h"

namespace caddb {
namespace net {

/// Wire framing for the caddb service protocol, reusing the WAL's CRC32C
/// discipline: every frame is length-prefixed and carries a masked CRC32C
/// over its version, type, length and payload, so a flipped bit anywhere is
/// a detected protocol error, never silently misparsed data.
///
/// Frame layout (all integers little-endian):
///
///   u32 magic      0x4644'4143 ("CADF")
///   u8  version    kProtocolVersion
///   u8  type       FrameType
///   u32 length     payload byte count (<= kMaxFramePayload)
///   ..  payload    `length` bytes
///   u32 crc        masked CRC32C over bytes [4, 10+length)
///
/// The magic deliberately differs from any plausible HTTP request bytes:
/// the server sniffs the first bytes of a connection and routes "GET ..."
/// to the Prometheus scrape path, everything else to the frame decoder.
///
/// Conversation: the client opens with kHello (requested role + namespace),
/// the server answers kHelloOk (granted role + banner). Each kRequest
/// carries a client-chosen correlation id and one shell command line; the
/// server answers with kResponse (same id, error flag, output text) or
/// kShed (same id, reason) when admission control refuses the request.
/// kShed is the backpressure contract: a saturated server answers in
/// bounded time instead of buffering without bound. kProtocolError is
/// terminal — the framing is lost, the connection closes.

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kRequest = 3,
  kResponse = 4,
  kShed = 5,
  kGoodbye = 6,
  kProtocolError = 7,
};

constexpr uint32_t kFrameMagic = 0x46444143u;  // "CADF"
constexpr uint8_t kProtocolVersion = 1;
constexpr size_t kFrameHeaderSize = 10;  // magic + version + type + length
constexpr size_t kFrameTrailerSize = 4;  // masked crc
constexpr size_t kMaxFramePayload = 16u * 1024 * 1024;

/// Session roles. A writable session may run every shell verb; a read-only
/// one is restricted to non-mutating commands (queries, checks, status,
/// metrics). kDefault asks for whatever the server grants.
enum class SessionRole : uint8_t { kDefault = 0, kWritable = 1, kReadOnly = 2 };

struct Frame {
  FrameType type = FrameType::kGoodbye;
  std::string payload;
};

/// Encodes one complete frame, CRC included.
std::string EncodeFrame(FrameType type, const std::string& payload);

/// Incremental frame decoder over a byte stream. Feed() accepts arbitrary
/// splits (a frame may arrive one byte at a time); complete, CRC-verified
/// frames are popped with Next(). Malformed input — wrong magic or version,
/// an unknown type, an oversized length, or a CRC mismatch — poisons the
/// decoder: Feed() returns (and keeps returning) the error, and no further
/// frames are produced. Framing cannot be resynchronized after corruption;
/// the connection must close.
class FrameDecoder {
 public:
  Status Feed(const void* data, size_t n);
  /// Pops the next complete frame; false when none is buffered.
  bool Next(Frame* frame);
  bool poisoned() const { return !error_.ok(); }
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Status Parse();

  std::string buffer_;
  size_t consumed_ = 0;
  std::deque<Frame> frames_;
  Status error_ = OkStatus();
};

// ---- Payload codecs ----
// Request:  u64 id | [trace ext] | command line bytes
// Response: u64 id | u8 error flag | [trace ext] | output bytes
// Shed:     u64 id | reason bytes             (id 0: connection-level shed)
// Hello:    u8 requested SessionRole | namespace bytes
// HelloOk:  u8 granted SessionRole | banner bytes
//
// The trace extension is a versioned block "\0T1" + u64 trace_id +
// u64 parent_span_id inserted where the text would begin. Command lines
// and outputs are text and never start with NUL, so its presence is
// unambiguous: a new peer accepts both forms (absent extension means "no
// context" — the receiver starts a new trace root), while an old decoder
// would misread the block as text. To protect old peers the extension is
// only ever *sent* negotiated: clients look for the "trace" capability in
// the HelloOk banner's `caps=` word before attaching context, and the
// server echoes context only on responses to requests that carried it.

/// Banner word advertising optional protocol features, e.g. "caps=trace".
/// Old clients simply display it; new clients parse it.
constexpr const char* kTraceCapability = "trace";
/// True when `banner` contains a whitespace-delimited `caps=` word whose
/// comma-separated list includes `cap`.
bool BannerHasCapability(const std::string& banner, const std::string& cap);

std::string EncodeRequestPayload(uint64_t id, const std::string& line);
std::string EncodeRequestPayload(uint64_t id, const std::string& line,
                                 const obs::TraceContext& ctx);
Status DecodeRequestPayload(const std::string& payload, uint64_t* id,
                            std::string* line);
/// `ctx` is left invalid (trace_id 0) when the payload has no extension.
Status DecodeRequestPayload(const std::string& payload, uint64_t* id,
                            std::string* line, obs::TraceContext* ctx);

std::string EncodeResponsePayload(uint64_t id, bool error,
                                  const std::string& output);
/// The response extension carries the server's trace_id + net.request
/// span id so the client can stitch the remote subtree to its root.
std::string EncodeResponsePayload(uint64_t id, bool error,
                                  const std::string& output,
                                  const obs::TraceContext& ctx);
Status DecodeResponsePayload(const std::string& payload, uint64_t* id,
                             bool* error, std::string* output);
Status DecodeResponsePayload(const std::string& payload, uint64_t* id,
                             bool* error, std::string* output,
                             obs::TraceContext* ctx);

std::string EncodeShedPayload(uint64_t id, const std::string& reason);
Status DecodeShedPayload(const std::string& payload, uint64_t* id,
                         std::string* reason);

std::string EncodeHelloPayload(SessionRole requested, const std::string& ns);
Status DecodeHelloPayload(const std::string& payload, SessionRole* requested,
                          std::string* ns);

std::string EncodeHelloOkPayload(SessionRole granted,
                                 const std::string& banner);
Status DecodeHelloOkPayload(const std::string& payload, SessionRole* granted,
                            std::string* banner);

}  // namespace net
}  // namespace caddb

#endif  // CADDB_NET_PROTOCOL_H_

#include "net/client.h"

namespace caddb {
namespace net {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& address,
                                                uint16_t port,
                                                ClientOptions options) {
  std::unique_ptr<Client> client(new Client());
  CADDB_ASSIGN_OR_RETURN(client->sock_, ConnectTcp(address, port));
  const std::string hello =
      EncodeFrame(FrameType::kHello,
                  EncodeHelloPayload(options.role, options.ns));
  CADDB_RETURN_IF_ERROR(client->sock_.SendAll(hello.data(), hello.size()));
  CADDB_ASSIGN_OR_RETURN(Frame reply, client->ReadFrame());
  if (reply.type == FrameType::kShed) {
    uint64_t id = 0;
    std::string reason;
    CADDB_RETURN_IF_ERROR(DecodeShedPayload(reply.payload, &id, &reason));
    return Unavailable("connection refused: " + reason);
  }
  if (reply.type != FrameType::kHelloOk) {
    return InvalidArgument("protocol error: expected hello-ok, got frame "
                           "type " +
                           std::to_string(static_cast<int>(reply.type)) +
                           (reply.type == FrameType::kProtocolError
                                ? " (" + reply.payload + ")"
                                : ""));
  }
  SessionRole granted = SessionRole::kDefault;
  CADDB_RETURN_IF_ERROR(
      DecodeHelloOkPayload(reply.payload, &granted, &client->banner_));
  client->writable_ = granted == SessionRole::kWritable;
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (closed_ || !sock_.valid()) {
    closed_ = true;
    return;
  }
  closed_ = true;
  const std::string goodbye = EncodeFrame(FrameType::kGoodbye, "");
  (void)sock_.SendAll(goodbye.data(), goodbye.size());
  sock_.Close();
}

Result<Frame> Client::ReadFrame() {
  Frame frame;
  char buf[16 * 1024];
  while (true) {
    if (decoder_.Next(&frame)) return frame;
    CADDB_ASSIGN_OR_RETURN(size_t n, sock_.Recv(buf, sizeof(buf)));
    if (n == 0) return Unavailable("connection closed by server");
    CADDB_RETURN_IF_ERROR(decoder_.Feed(buf, n));
  }
}

Status Client::Execute(const std::string& line, std::string* output,
                       bool* command_error) {
  if (closed_) return FailedPrecondition("client is closed");
  const uint64_t id = next_id_++;
  const std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequestPayload(id, line));
  CADDB_RETURN_IF_ERROR(sock_.SendAll(frame.data(), frame.size()));
  while (true) {
    CADDB_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
    if (reply.type == FrameType::kResponse) {
      uint64_t reply_id = 0;
      CADDB_RETURN_IF_ERROR(
          DecodeResponsePayload(reply.payload, &reply_id, command_error,
                                output));
      if (reply_id != id) continue;  // stale reply from a prior timeout
      return OkStatus();
    }
    if (reply.type == FrameType::kShed) {
      uint64_t reply_id = 0;
      std::string reason;
      CADDB_RETURN_IF_ERROR(
          DecodeShedPayload(reply.payload, &reply_id, &reason));
      return Unavailable("request shed: " + reason);
    }
    if (reply.type == FrameType::kProtocolError) {
      closed_ = true;
      return InvalidArgument(reply.payload);
    }
    return InvalidArgument("protocol error: unexpected frame type " +
                           std::to_string(static_cast<int>(reply.type)));
  }
}

Result<std::string> Client::HttpGet(const std::string& address, uint16_t port,
                                    const std::string& path) {
  CADDB_ASSIGN_OR_RETURN(Socket sock, ConnectTcp(address, port));
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " +
                              address + "\r\n\r\n";
  CADDB_RETURN_IF_ERROR(sock.SendAll(request.data(), request.size()));
  std::string response;
  char buf[16 * 1024];
  while (true) {
    CADDB_ASSIGN_OR_RETURN(size_t n, sock.Recv(buf, sizeof(buf)));
    if (n == 0) break;
    response.append(buf, n);
  }
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Unavailable("malformed HTTP response");
  }
  const size_t status_sp = response.find(' ');
  if (status_sp == std::string::npos ||
      response.compare(status_sp + 1, 3, "200") != 0) {
    return NotFound("HTTP " + response.substr(status_sp + 1, 3) + " for " +
                    path);
  }
  return response.substr(header_end + 4);
}

}  // namespace net
}  // namespace caddb

#include "net/client.h"

#include <time.h>

#include <algorithm>
#include <cerrno>
#include <random>

#include "fault/failpoint.h"

namespace caddb {
namespace net {

namespace {

void RetrySleep(uint64_t delay_us) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(delay_us / 1000000);
  ts.tv_nsec = static_cast<long>((delay_us % 1000000) * 1000);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

double RandomDraw() {
  thread_local std::mt19937 rng{std::random_device{}()};
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}

/// A shed means the server refused cleanly — the connection itself is
/// still good; everything else retryable means the transport died.
bool IsShed(const Status& status) {
  return status.message().find("request shed") != std::string::npos;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& address,
                                                uint16_t port,
                                                ClientOptions options) {
  std::unique_ptr<Client> client(new Client());
  CADDB_ASSIGN_OR_RETURN(client->sock_, ConnectTcp(address, port));
  // Armed net.client.* failpoints act on this side of the wire only —
  // server sockets carry their own net.session.* sites.
  client->sock_.SetFaultSites(fault::sites::kNetClientRead,
                              fault::sites::kNetClientWrite);
  if (options.recv_timeout_ms > 0) {
    CADDB_RETURN_IF_ERROR(
        client->sock_.SetRecvTimeout(options.recv_timeout_ms));
  }
  const std::string hello =
      EncodeFrame(FrameType::kHello,
                  EncodeHelloPayload(options.role, options.ns));
  CADDB_RETURN_IF_ERROR(client->sock_.SendAll(hello.data(), hello.size()));
  CADDB_ASSIGN_OR_RETURN(Frame reply, client->ReadFrame());
  if (reply.type == FrameType::kShed) {
    uint64_t id = 0;
    std::string reason;
    CADDB_RETURN_IF_ERROR(DecodeShedPayload(reply.payload, &id, &reason));
    return Unavailable("connection refused: " + reason);
  }
  if (reply.type != FrameType::kHelloOk) {
    return InvalidArgument("protocol error: expected hello-ok, got frame "
                           "type " +
                           std::to_string(static_cast<int>(reply.type)) +
                           (reply.type == FrameType::kProtocolError
                                ? " (" + reply.payload + ")"
                                : ""));
  }
  SessionRole granted = SessionRole::kDefault;
  CADDB_RETURN_IF_ERROR(
      DecodeHelloOkPayload(reply.payload, &granted, &client->banner_));
  client->writable_ = granted == SessionRole::kWritable;
  client->obs_ = options.obs;
  client->server_traces_ =
      BannerHasCapability(client->banner_, kTraceCapability);
  if (client->obs_ != nullptr) {
    client->h_execute_ = client->obs_->metrics.GetHistogram(
        "caddb_net_client_execute_us",
        "Client-observed request round-trip latency (us)");
  }
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (closed_ || !sock_.valid()) {
    closed_ = true;
    return;
  }
  closed_ = true;
  const std::string goodbye = EncodeFrame(FrameType::kGoodbye, "");
  (void)sock_.SendAll(goodbye.data(), goodbye.size());
  sock_.Close();
}

Result<Frame> Client::ReadFrame() {
  Frame frame;
  char buf[16 * 1024];
  while (true) {
    if (decoder_.Next(&frame)) return frame;
    CADDB_ASSIGN_OR_RETURN(size_t n, sock_.Recv(buf, sizeof(buf)));
    if (n == 0) return Unavailable("connection closed by server");
    CADDB_RETURN_IF_ERROR(decoder_.Feed(buf, n));
  }
}

Status Client::Execute(const std::string& line, std::string* output,
                       bool* command_error) {
  if (closed_) return FailedPrecondition("client is closed");
  const uint64_t id = next_id_++;
  // The client is where distributed traces are born: this span (or, with
  // tracing off but an enclosing span open, that one) becomes the remote
  // net.request span's parent on trace-capable servers.
  obs::Tracer* tracer = obs_ != nullptr ? &obs_->trace : nullptr;
  obs::Span span(tracer, "net.client.execute", h_execute_);
  obs::TraceContext ctx;
  if (server_traces_ && tracer != nullptr) {
    ctx = span.context();
    if (!ctx.valid()) ctx = tracer->CurrentContext();
  }
  const std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequestPayload(id, line, ctx));
  CADDB_RETURN_IF_ERROR(sock_.SendAll(frame.data(), frame.size()));
  while (true) {
    CADDB_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
    if (reply.type == FrameType::kResponse) {
      uint64_t reply_id = 0;
      obs::TraceContext server_ctx;
      CADDB_RETURN_IF_ERROR(
          DecodeResponsePayload(reply.payload, &reply_id, command_error,
                                output, &server_ctx));
      if (reply_id != id) continue;  // stale reply from a prior timeout
      last_server_ctx_ = server_ctx;
      if (server_ctx.valid()) {
        span.AddAttribute("server_span", server_ctx.parent_span_id);
      }
      return OkStatus();
    }
    if (reply.type == FrameType::kShed) {
      uint64_t reply_id = 0;
      std::string reason;
      CADDB_RETURN_IF_ERROR(
          DecodeShedPayload(reply.payload, &reply_id, &reason));
      return Unavailable("request shed: " + reason);
    }
    if (reply.type == FrameType::kProtocolError) {
      closed_ = true;
      return InvalidArgument(reply.payload);
    }
    return InvalidArgument("protocol error: unexpected frame type " +
                           std::to_string(static_cast<int>(reply.type)));
  }
}

Result<std::string> Client::HttpGet(const std::string& address, uint16_t port,
                                    const std::string& path) {
  CADDB_ASSIGN_OR_RETURN(Socket sock, ConnectTcp(address, port));
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " +
                              address + "\r\n\r\n";
  CADDB_RETURN_IF_ERROR(sock.SendAll(request.data(), request.size()));
  std::string response;
  char buf[16 * 1024];
  while (true) {
    CADDB_ASSIGN_OR_RETURN(size_t n, sock.Recv(buf, sizeof(buf)));
    if (n == 0) break;
    response.append(buf, n);
  }
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Unavailable("malformed HTTP response");
  }
  const size_t status_sp = response.find(' ');
  if (status_sp == std::string::npos ||
      response.compare(status_sp + 1, 3, "200") != 0) {
    return NotFound("HTTP " + response.substr(status_sp + 1, 3) + " for " +
                    path);
  }
  return response.substr(header_end + 4);
}

uint64_t RetryBackoffUs(const RetryOptions& options, uint64_t attempt,
                        double jitter_draw) {
  uint64_t backoff = options.initial_backoff_us;
  for (uint64_t i = 0; i < attempt; ++i) {
    if (backoff >= options.max_backoff_us / 2) {
      backoff = options.max_backoff_us;
      break;
    }
    backoff *= 2;
  }
  backoff = std::min(backoff, options.max_backoff_us);
  const double jitter = std::min(std::max(options.jitter, 0.0), 1.0);
  const uint64_t cut = static_cast<uint64_t>(
      static_cast<double>(backoff) * jitter * jitter_draw);
  return backoff - cut;
}

RetryingClient::RetryingClient(std::string address, uint16_t port,
                               ClientOptions options, RetryOptions retry)
    : address_(std::move(address)),
      port_(port),
      options_(std::move(options)),
      retry_(std::move(retry)) {}

Result<std::unique_ptr<RetryingClient>> RetryingClient::Connect(
    const std::string& address, uint16_t port, ClientOptions options,
    RetryOptions retry) {
  std::unique_ptr<RetryingClient> client(new RetryingClient(
      address, port, std::move(options), std::move(retry)));
  const uint64_t attempts = std::max<uint64_t>(client->retry_.max_attempts, 1);
  Status last = OkStatus();
  for (uint64_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      client->SleepBackoff(attempt - 1);
      ++client->retries_;
    }
    last = client->EnsureConnected();
    if (last.ok()) return client;
    if (last.code() != Code::kUnavailable) return last;
  }
  return Unavailable(last.message() + " (after " +
                     std::to_string(attempts) + " attempts)");
}

Status RetryingClient::EnsureConnected() {
  if (client_ != nullptr) return OkStatus();
  Result<std::unique_ptr<Client>> connected =
      Client::Connect(address_, port_, options_);
  if (!connected.ok()) return connected.status();
  client_ = std::move(*connected);
  return OkStatus();
}

void RetryingClient::SleepBackoff(uint64_t attempt) {
  const double draw =
      retry_.jitter_source ? retry_.jitter_source() : RandomDraw();
  const uint64_t delay = RetryBackoffUs(retry_, attempt, draw);
  if (retry_.sleeper) {
    retry_.sleeper(delay);
  } else {
    RetrySleep(delay);
  }
}

Status RetryingClient::Execute(const std::string& line, std::string* output,
                               bool* command_error) {
  const uint64_t attempts = std::max<uint64_t>(retry_.max_attempts, 1);
  Status last = OkStatus();
  for (uint64_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      SleepBackoff(attempt - 1);
      ++retries_;
    }
    last = EnsureConnected();
    if (last.ok()) {
      last = client_->Execute(line, output, command_error);
      if (last.ok()) return last;
      obs::EventLog* log =
          options_.obs != nullptr ? &options_.obs->log : nullptr;
      if (IsShed(last)) {
        ++sheds_seen_;  // clean refusal; the connection stays usable
        CADDB_LOG(log, obs::LogLevel::kInfo, "net",
                  "request shed, backing off: " + last.message());
      } else {
        // Transport died: timeout, reset, or a torn frame (which the
        // decoder reports as a protocol error). All of them mean this
        // connection is done — reconnect and retry, bounded by
        // max_attempts.
        CADDB_LOG(log, obs::LogLevel::kWarn, "net",
                  "connection lost, will reconnect: " + last.message());
        client_.reset();
      }
    } else if (last.code() != Code::kUnavailable) {
      return last;  // hopeless (bad address, refused role): don't retry
    }
  }
  return Unavailable(last.message() + " (after " +
                     std::to_string(attempts) + " attempts)");
}

void RetryingClient::Close() {
  if (client_ != nullptr) client_->Close();
  client_.reset();
}

}  // namespace net
}  // namespace caddb

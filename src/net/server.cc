#include "net/server.h"

#include <poll.h>

#include <chrono>
#include <sstream>
#include <utility>

#include "core/database.h"
#include "fault/failpoint.h"
#include "obs/exposition.h"
#include "replication/follower.h"
#include "shell/dispatcher.h"
#include "util/json_writer.h"

namespace caddb {
namespace net {

/// Per-connection state. Reader thread, worker pool and accept loop all
/// hold shared_ptrs, so a session outlives whichever side notices the
/// disconnect first; the socket is the only resource torn down eagerly.
struct Server::Session {
  uint64_t id = 0;
  Socket sock;
  std::string peer;
  std::string ns;
  bool read_only = false;
  std::atomic<bool> hello_done{false};
  /// Created on first request (under the execution lock); carries the
  /// session's schema-block state and sticky ship target.
  std::unique_ptr<shell::Dispatcher> dispatcher;
  /// Serializes frame writes: worker responses and reader sheds interleave.
  std::mutex write_mu;
  std::thread reader_thread;
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> sheds{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<size_t> inflight{0};
  /// Previous stats() sample, for per-session rates between successive
  /// `server status` calls. Guarded by sessions_mu_ (stats() holds it).
  uint64_t prev_requests = 0;
  uint64_t prev_bytes_in = 0;
  uint64_t prev_bytes_out = 0;
  uint64_t prev_sample_us = 0;
};

struct Server::Request {
  std::shared_ptr<Session> session;
  uint64_t id = 0;
  std::string line;
  /// When the reader enqueued it — the deadline check compares queue wait
  /// against ServerOptions::request_deadline_us.
  uint64_t enqueue_us = 0;
  /// The client's trace context, carried explicitly across the reader →
  /// worker hand-off: the thread-local span stack does not survive the
  /// queue, so without this the net.request span would root a fresh tree
  /// on whichever worker picked it up.
  obs::TraceContext ctx;
};

uint64_t Server::NowUs() const {
  if (options_.clock_us_for_test) return options_.clock_us_for_test();
  return obs::Tracer::NowUs();
}

Server::Server(Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      obs_(options_.obs != nullptr ? options_.obs
                                   : (db != nullptr ? db->observability()
                                                    : nullptr)) {
  static obs::Observability fallback_obs;
  if (obs_ == nullptr) obs_ = &fallback_obs;
  obs::MetricsRegistry& m = obs_->metrics;
  m_connections_ =
      m.GetGauge("caddb_net_connections", "Active client connections");
  m_connections_total_ = m.GetCounter("caddb_net_connections_total",
                                      "Connections accepted since start");
  m_bytes_in_ =
      m.GetCounter("caddb_net_bytes_in_total", "Bytes read from clients");
  m_bytes_out_ =
      m.GetCounter("caddb_net_bytes_out_total", "Bytes written to clients");
  m_requests_ =
      m.GetCounter("caddb_net_requests_total", "Requests executed");
  m_sheds_ = m.GetCounter("caddb_net_sheds_total",
                          "Requests refused by admission control");
  m_protocol_errors_ = m.GetCounter("caddb_net_protocol_errors_total",
                                    "Connections dropped for framing errors");
  m_scrapes_ =
      m.GetCounter("caddb_net_scrapes_total", "HTTP /metrics scrapes served");
  m_request_us_ = m.GetHistogram("caddb_net_request_us",
                                 "Request execution latency (us)");
  m_replica_lag_ = m.GetGauge(
      "caddb_replication_replica_lag",
      "shipped_lsn - replay_lsn after the last applied manifest");
}

Result<std::unique_ptr<Server>> Server::Start(Database* db,
                                              ServerOptions options) {
  std::unique_ptr<Server> server(new Server(db, std::move(options)));
  CADDB_RETURN_IF_ERROR(server->Listen());
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  const size_t workers = server->options_.worker_threads > 0
                             ? server->options_.worker_threads
                             : 1;
  for (size_t i = 0; i < workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

Server::~Server() { Shutdown(); }

Status Server::Listen() {
  uint16_t bound = 0;
  CADDB_ASSIGN_OR_RETURN(
      listener_, ListenTcp(options_.bind_address, options_.port,
                           static_cast<int>(options_.max_connections), &bound));
  port_ = bound;
  return OkStatus();
}

std::string Server::address() const {
  return options_.bind_address + ":" + std::to_string(port_);
}

void Server::ServeFollower(replication::Follower* follower) {
  std::lock_guard<std::mutex> exec(exec_mu_);
  follower_ = follower;
  follower_attached_.store(true, std::memory_order_release);
}

Database* Server::CurrentDb() {
  if (follower_ != nullptr) return follower_->db();
  return db_;
}

void Server::Shutdown() {
  if (stop_.exchange(true)) {
    // Second caller: the first one is (or was) tearing down; nothing held
    // here survives it, so just wait for the threads it joins.
    return;
  }
  // Shutdown (not close) wakes the accept poll and every blocked reader;
  // the fds stay alive until their threads are done with them — closing
  // here would race the kernel recycling the fd number under a thread
  // still polling or recv'ing on it.
  listener_.ShutdownBoth();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, session] : sessions_) session->sock.ShutdownBoth();
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Workers exit on stop_ without draining the queue, so requests still
  // queued here hold inflight counts their readers are about to wait on.
  // Drop them now — before the reader wait below — or a reader parked in
  // its inflight drain would never wake. Enqueues observe stop_ under
  // queue_mu_, so nothing lands in the queue after this drain.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (Request& request : queue_) {
      request.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
    queue_.clear();
  }
  // Readers erase themselves from sessions_ and park their thread handles
  // in finished_readers_; with every socket shut down they exit promptly.
  while (true) {
    ReapFinishedReaders();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (sessions_.empty() && finished_readers_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void Server::ReapFinishedReaders() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    finished.swap(finished_readers_);
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    ReapFinishedReaders();
    struct pollfd pfd = {};
    pfd.fd = listener_.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    Result<Socket> accepted = Accept(listener_);
    if (!accepted.ok()) continue;
    std::shared_ptr<Session> session;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (sessions_.size() >= options_.max_connections) {
        connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      } else {
        session = std::make_shared<Session>();
        session->id = next_session_id_++;
        session->sock = std::move(*accepted);
        // Chaos targeting: armed net.session.* failpoints act on every
        // accepted connection's I/O (and only on server-side sockets).
        session->sock.SetFaultSites(fault::sites::kNetSessionRead,
                                    fault::sites::kNetSessionWrite);
        session->peer = PeerName(session->sock);
        sessions_[session->id] = session;
      }
    }
    if (session == nullptr) {
      // Over the admission cap: answer with a connection-level shed frame
      // (correlation id 0) in bounded time and close. A client sees a
      // clean refusal, not a hang.
      const std::string frame = EncodeFrame(
          FrameType::kShed,
          EncodeShedPayload(0, "server at max connections (" +
                                   std::to_string(options_.max_connections) +
                                   ")"));
      (void)accepted->SendAll(frame.data(), frame.size());
      accepted->Close();
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    m_connections_total_->Increment();
    m_connections_->Add(1);
    // Store the handle under sessions_mu_ so a reader that exits instantly
    // still finds (and parks) the real handle, not an empty one.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session->reader_thread =
        std::thread([this, session] { ReaderLoop(session); });
  }
}

void Server::ReaderLoop(std::shared_ptr<Session> session) {
  FrameDecoder decoder;
  std::string sniff;
  bool http = false;
  bool sniffed = false;
  char buf[16 * 1024];
  while (!stop_.load(std::memory_order_acquire)) {
    Result<size_t> n = session->sock.Recv(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    session->bytes_in.fetch_add(*n, std::memory_order_relaxed);
    bytes_in_.fetch_add(*n, std::memory_order_relaxed);
    m_bytes_in_->Increment(*n);
    if (!sniffed) {
      // Same-port HTTP: the frame magic starts "CADF", a scrape starts
      // "GET ". Decide on the first 4 bytes.
      sniff.append(buf, *n);
      if (sniff.size() < 4) continue;
      sniffed = true;
      http = sniff.compare(0, 4, "GET ") == 0;
      if (http) {
        HandleHttp(session, std::move(sniff));
        break;
      }
      const Status fed = decoder.Feed(sniff.data(), sniff.size());
      sniff.clear();
      if (!fed.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        m_protocol_errors_->Increment();
        CADDB_LOG(&obs_->log, obs::LogLevel::kWarn, "net",
                  "session " + std::to_string(session->id) +
                      " framing lost: " + fed.ToString());
        WriteFrame(session, FrameType::kProtocolError, fed.ToString());
        break;
      }
    } else {
      const Status fed = decoder.Feed(buf, *n);
      if (!fed.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        m_protocol_errors_->Increment();
        CADDB_LOG(&obs_->log, obs::LogLevel::kWarn, "net",
                  "session " + std::to_string(session->id) +
                      " framing lost: " + fed.ToString());
        WriteFrame(session, FrameType::kProtocolError, fed.ToString());
        break;
      }
    }
    Frame frame;
    bool goodbye = false;
    while (decoder.Next(&frame)) {
      if (frame.type == FrameType::kGoodbye) {
        goodbye = true;
        break;
      }
      HandleFrame(session, std::move(frame));
    }
    if (goodbye) break;
  }
  session->sock.ShutdownBoth();
  // Wait for in-flight requests so no worker writes to a session whose
  // reader has torn down. Workers drop the shared_ptr when done.
  while (session->inflight.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  m_connections_->Add(-1);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  finished_readers_.push_back(std::move(session->reader_thread));
  sessions_.erase(session->id);
  // The fd itself is released by the Session destructor, after the erase:
  // Shutdown() can only reach sessions still in the map, so it never
  // half-closes an fd number the kernel has already recycled.
}

void Server::HandleFrame(const std::shared_ptr<Session>& session,
                         Frame frame) {
  if (frame.type == FrameType::kHello) {
    SessionRole requested = SessionRole::kDefault;
    std::string ns;
    const Status decoded = DecodeHelloPayload(frame.payload, &requested, &ns);
    if (!decoded.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      m_protocol_errors_->Increment();
      WriteFrame(session, FrameType::kProtocolError, decoded.ToString());
      session->sock.ShutdownBoth();
      return;
    }
    const bool forced_read_only =
        options_.read_only || follower_attached_.load(std::memory_order_acquire);
    session->ns = ns;
    session->read_only =
        forced_read_only || requested == SessionRole::kReadOnly;
    session->hello_done.store(true, std::memory_order_release);
    const SessionRole granted =
        session->read_only ? SessionRole::kReadOnly : SessionRole::kWritable;
    // The caps word is the trace-capability handshake: clients that parse
    // it attach trace context to requests; old clients just display it.
    std::string banner = "caddb " + address() + " caps=trace";
    if (forced_read_only) banner += " (read-only)";
    CADDB_LOG(&obs_->log, obs::LogLevel::kDebug, "net",
              "session " + std::to_string(session->id) + " hello from " +
                  session->peer + (session->read_only ? " (read-only)" : ""));
    WriteFrame(session, FrameType::kHelloOk,
               EncodeHelloOkPayload(granted, banner));
    return;
  }
  if (frame.type != FrameType::kRequest) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    m_protocol_errors_->Increment();
    WriteFrame(session, FrameType::kProtocolError,
               "protocol error: unexpected frame type " +
                   std::to_string(static_cast<int>(frame.type)));
    session->sock.ShutdownBoth();
    return;
  }
  uint64_t id = 0;
  std::string line;
  obs::TraceContext ctx;
  const Status decoded = DecodeRequestPayload(frame.payload, &id, &line, &ctx);
  if (!decoded.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    m_protocol_errors_->Increment();
    WriteFrame(session, FrameType::kProtocolError, decoded.ToString());
    session->sock.ShutdownBoth();
    return;
  }
  if (!session->hello_done.load(std::memory_order_acquire)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    m_protocol_errors_->Increment();
    WriteFrame(session, FrameType::kProtocolError,
               "protocol error: request before hello");
    session->sock.ShutdownBoth();
    return;
  }
  // Admission control, on the reader thread so a saturated server still
  // answers in bounded time: per-session pipelining cap first, then the
  // bounded central queue.
  if (session->inflight.load(std::memory_order_acquire) >=
      options_.session_inflight_cap) {
    Shed(session, id,
         "session cap: " + std::to_string(options_.session_inflight_cap) +
             " requests already in flight");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    // The stop_ check must happen under queue_mu_: a reader draining
    // already-decoded frames can get here after Shutdown() has drained the
    // queue, and enqueueing then would strand the inflight count forever
    // (no worker will ever pick it up).
    if (!stop_.load(std::memory_order_acquire) &&
        queue_.size() < options_.queue_capacity) {
      session->inflight.fetch_add(1, std::memory_order_acq_rel);
      queue_.push_back(Request{session, id, std::move(line), NowUs(), ctx});
      queue_cv_.notify_one();
      return;
    }
    // Shed outside the lock: it writes to the socket.
  }
  if (stop_.load(std::memory_order_acquire)) {
    Shed(session, id, "server shutting down");
    return;
  }
  Shed(session, id,
       "server overloaded: request queue full (" +
           std::to_string(options_.queue_capacity) + ")");
}

void Server::WorkerLoop() {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.worker_hook_for_test) options_.worker_hook_for_test();
    const uint64_t deadline = options_.request_deadline_us;
    const uint64_t waited =
        deadline > 0 ? NowUs() - request.enqueue_us : 0;
    if (deadline > 0 && waited > deadline) {
      Shed(request.session, request.id,
           "deadline exceeded: queued " + std::to_string(waited) +
               "us > " + std::to_string(deadline) + "us");
    } else {
      Execute(request);
    }
    request.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void Server::Execute(const Request& request) {
  const std::shared_ptr<Session>& session = request.session;
  std::string output;
  bool error = false;
  bool quit = false;
  bool shed = false;
  std::string shed_reason;
  obs::TraceContext server_ctx;
  {
    std::lock_guard<std::mutex> exec(exec_mu_);
    Database* db = CurrentDb();
    if (db == nullptr) {
      shed = true;
      shed_reason = "no database available yet (follower has not caught up)";
    } else if (follower_ != nullptr && options_.max_replica_lag >= 0 &&
               m_replica_lag_->value() > options_.max_replica_lag) {
      // The routing signal: a far-behind replica sheds reads instead of
      // serving stale data. caddb_replication_lag is the same number the
      // fleet's monitoring sees.
      shed = true;
      shed_reason =
          "replica lag " + std::to_string(m_replica_lag_->value()) +
          " exceeds max " + std::to_string(options_.max_replica_lag);
    } else {
      // The client's wire context (carried through the queue in
      // request.ctx) parents this span; Database spans opened inside
      // ExecuteLine nest under it via the thread-local stack, so the
      // whole server-side subtree joins the client-rooted trace.
      obs::Span span(&obs_->trace, "net.request", request.ctx, m_request_us_,
                     /*always_time=*/true);
      server_ctx = span.context();
      if (session->dispatcher == nullptr) {
        session->dispatcher = std::make_unique<shell::Dispatcher>(db);
        session->dispatcher->set_read_only(session->read_only);
        session->dispatcher->AttachServer(this);
      } else {
        session->dispatcher->set_db(db);
      }
      std::ostringstream out;
      const size_t errors_before = session->dispatcher->error_count();
      quit = !session->dispatcher->ExecuteLine(request.line, out);
      error = session->dispatcher->error_count() > errors_before;
      output = out.str();
    }
  }
  if (shed) {
    Shed(session, request.id, shed_reason);
    return;
  }
  session->requests.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(1, std::memory_order_relaxed);
  m_requests_->Increment();
  // Echo this request's server-side context only to clients that sent
  // context themselves — old clients would misread the extension as text.
  WriteFrame(session, FrameType::kResponse,
             request.ctx.valid()
                 ? EncodeResponsePayload(request.id, error, output, server_ctx)
                 : EncodeResponsePayload(request.id, error, output));
  // `quit` over the wire ends the session, same as at the local prompt.
  if (quit) session->sock.ShutdownBoth();
}

void Server::WriteFrame(const std::shared_ptr<Session>& session,
                        FrameType type, const std::string& payload) {
  const std::string frame = EncodeFrame(type, payload);
  std::lock_guard<std::mutex> lock(session->write_mu);
  const Status sent = session->sock.SendAll(frame.data(), frame.size());
  if (sent.ok()) {
    session->bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
    bytes_out_.fetch_add(frame.size(), std::memory_order_relaxed);
    m_bytes_out_->Increment(frame.size());
  }
}

void Server::Shed(const std::shared_ptr<Session>& session, uint64_t id,
                  const std::string& reason) {
  session->sheds.fetch_add(1, std::memory_order_relaxed);
  sheds_.fetch_add(1, std::memory_order_relaxed);
  m_sheds_->Increment();
  CADDB_LOG(&obs_->log, obs::LogLevel::kInfo, "net",
            "shed request " + std::to_string(id) + " on session " +
                std::to_string(session->id) + ": " + reason);
  WriteFrame(session, FrameType::kShed, EncodeShedPayload(id, reason));
}

void Server::HandleHttp(const std::shared_ptr<Session>& session,
                        std::string initial) {
  // Minimal HTTP/1.0 for the scrape path: read the request head (bounded),
  // answer one response, close. Prometheus needs nothing more.
  constexpr size_t kMaxHead = 8 * 1024;
  std::string head = std::move(initial);
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos && head.size() < kMaxHead) {
    Result<size_t> n = session->sock.Recv(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    session->bytes_in.fetch_add(*n, std::memory_order_relaxed);
    bytes_in_.fetch_add(*n, std::memory_order_relaxed);
    m_bytes_in_->Increment(*n);
    head.append(buf, *n);
  }
  const size_t line_end = head.find_first_of("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  std::string path = "/";
  {
    const size_t sp1 = request_line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  std::string query;
  const size_t query_at = path.find('?');
  if (query_at != std::string::npos) {
    query = path.substr(query_at + 1);
    path.resize(query_at);
  }
  std::string status = "200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    m_scrapes_->Increment();
    // The exact bytes of the shell's `metrics --format=prom`.
    body = obs::RenderPrometheus(obs_->metrics.Snapshot());
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/vars") {
    // Counter rates + current gauges over ?window= milliseconds, from the
    // metrics-history ring (caddb_server runs the snapshotter; embedders
    // Tick() themselves). `samples` < 2 means the ring cannot answer yet.
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    m_scrapes_->Increment();
    uint64_t window_ms = 10000;
    const size_t w = query.find("window=");
    if (w != std::string::npos) {
      window_ms = 0;
      for (size_t i = w + 7; i < query.size(); ++i) {
        if (query[i] < '0' || query[i] > '9') break;
        window_ms = window_ms * 10 + static_cast<uint64_t>(query[i] - '0');
      }
    }
    JsonWriter json;
    obs::WriteRateWindowJson(obs_->history.Window(window_ms), &json);
    body = json.str() + "\n";
    content_type = "application/json";
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found: " + path + "\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  const Status sent = session->sock.SendAll(response.data(), response.size());
  if (sent.ok()) {
    session->bytes_out.fetch_add(response.size(), std::memory_order_relaxed);
    bytes_out_.fetch_add(response.size(), std::memory_order_relaxed);
    m_bytes_out_->Increment(response.size());
  }
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.address = address();
  stats.port = port_;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.queue_capacity = options_.queue_capacity;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.sheds = sheds_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.scrapes = scrapes_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stats.queue_depth = queue_.size();
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  stats.sessions_active = sessions_.size();
  const uint64_t now_us = NowUs();
  for (const auto& [id, session] : sessions_) {
    SessionInfo info;
    info.id = session->id;
    info.peer = session->peer;
    info.ns = session->ns;
    info.read_only = session->read_only;
    info.requests = session->requests.load(std::memory_order_relaxed);
    info.sheds = session->sheds.load(std::memory_order_relaxed);
    info.bytes_in = session->bytes_in.load(std::memory_order_relaxed);
    info.bytes_out = session->bytes_out.load(std::memory_order_relaxed);
    info.inflight = session->inflight.load(std::memory_order_relaxed);
    // `server top`-style rates: movement since the previous stats() call.
    // The first call for a session has no baseline and reports 0.
    if (session->prev_sample_us != 0 && now_us > session->prev_sample_us) {
      const double seconds =
          static_cast<double>(now_us - session->prev_sample_us) / 1e6;
      info.requests_per_sec =
          static_cast<double>(info.requests - session->prev_requests) /
          seconds;
      info.bytes_in_per_sec =
          static_cast<double>(info.bytes_in - session->prev_bytes_in) /
          seconds;
      info.bytes_out_per_sec =
          static_cast<double>(info.bytes_out - session->prev_bytes_out) /
          seconds;
    }
    session->prev_requests = info.requests;
    session->prev_bytes_in = info.bytes_in;
    session->prev_bytes_out = info.bytes_out;
    session->prev_sample_us = now_us;
    stats.sessions.push_back(std::move(info));
  }
  return stats;
}

}  // namespace net
}  // namespace caddb

#ifndef CADDB_NET_CLIENT_H_
#define CADDB_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/protocol.h"
#include "net/socket.h"
#include "util/result.h"

namespace caddb {
namespace net {

/// Synchronous client for the caddb service protocol — the engine behind
/// `caddb_shell --connect`. One request in flight at a time; pipelining is
/// a server capability the tests exercise with raw frames.
struct ClientOptions {
  SessionRole role = SessionRole::kDefault;
  /// Informational session label, reported by `server status`.
  std::string ns;
};

class Client {
 public:
  /// Connects and completes the hello handshake.
  static Result<std::unique_ptr<Client>> Connect(const std::string& address,
                                                 uint16_t port,
                                                 ClientOptions options = {});

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Executes one command line on the server. On success `*output` is the
  /// command's text output and `*command_error` mirrors the shell's
  /// error_count contract (the command printed an `error:` line). A shed
  /// reply surfaces as kUnavailable; a protocol error or lost connection as
  /// a non-ok Status — the connection is unusable afterwards.
  Status Execute(const std::string& line, std::string* output,
                 bool* command_error);

  /// Role the server granted at hello.
  bool writable() const { return writable_; }
  const std::string& banner() const { return banner_; }

  /// Sends a goodbye frame and closes. The destructor calls it.
  void Close();

  /// One-shot plain HTTP GET against a server's scrape path; returns the
  /// response body on 200.
  static Result<std::string> HttpGet(const std::string& address,
                                     uint16_t port, const std::string& path);

 private:
  Client() = default;

  /// Blocks until one complete frame arrives.
  Result<Frame> ReadFrame();

  Socket sock_;
  FrameDecoder decoder_;
  uint64_t next_id_ = 1;
  bool writable_ = false;
  bool closed_ = false;
  std::string banner_;
};

}  // namespace net
}  // namespace caddb

#endif  // CADDB_NET_CLIENT_H_

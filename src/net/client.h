#ifndef CADDB_NET_CLIENT_H_
#define CADDB_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/protocol.h"
#include "net/socket.h"
#include "obs/observability.h"
#include "util/result.h"

namespace caddb {
namespace net {

/// Synchronous client for the caddb service protocol — the engine behind
/// `caddb_shell --connect`. One request in flight at a time; pipelining is
/// a server capability the tests exercise with raw frames.
struct ClientOptions {
  SessionRole role = SessionRole::kDefault;
  /// Informational session label, reported by `server status`.
  std::string ns;
  /// Bounds every read (handshake included) with SO_RCVTIMEO, so a dropped
  /// response degrades to a retryable kUnavailable ("recv timed out")
  /// instead of a hung session. 0 = block forever.
  uint64_t recv_timeout_ms = 0;
  /// Client-side observability. When set, each Execute opens a
  /// `net.client.execute` span whose context rides the request's trace
  /// extension to trace-capable servers (HelloOk banner `caps=trace`), so
  /// the server's `net.request` span joins the client-rooted tree.
  /// Old servers never see the extension. Null = untraced (old behaviour).
  obs::Observability* obs = nullptr;
};

class Client {
 public:
  /// Connects and completes the hello handshake.
  static Result<std::unique_ptr<Client>> Connect(const std::string& address,
                                                 uint16_t port,
                                                 ClientOptions options = {});

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Executes one command line on the server. On success `*output` is the
  /// command's text output and `*command_error` mirrors the shell's
  /// error_count contract (the command printed an `error:` line). A shed
  /// reply surfaces as kUnavailable; a protocol error or lost connection as
  /// a non-ok Status — the connection is unusable afterwards.
  Status Execute(const std::string& line, std::string* output,
                 bool* command_error);

  /// Role the server granted at hello.
  bool writable() const { return writable_; }
  const std::string& banner() const { return banner_; }
  /// Server advertised `caps=trace` — requests carry trace context.
  bool server_traces() const { return server_traces_; }
  /// The server-side context of the last successful Execute (its
  /// net.request span), invalid when the server sent none.
  const obs::TraceContext& last_server_context() const {
    return last_server_ctx_;
  }

  /// Sends a goodbye frame and closes. The destructor calls it.
  void Close();

  /// One-shot plain HTTP GET against a server's scrape path; returns the
  /// response body on 200.
  static Result<std::string> HttpGet(const std::string& address,
                                     uint16_t port, const std::string& path);

 private:
  Client() = default;

  /// Blocks until one complete frame arrives.
  Result<Frame> ReadFrame();

  Socket sock_;
  FrameDecoder decoder_;
  uint64_t next_id_ = 1;
  bool writable_ = false;
  bool closed_ = false;
  bool server_traces_ = false;
  std::string banner_;
  obs::Observability* obs_ = nullptr;
  obs::Histogram* h_execute_ = nullptr;
  obs::TraceContext last_server_ctx_;
};

/// Capped-exponential retry with subtractive jitter, mirroring the
/// Follower's backoff contract: attempt k (0-based) backs off
/// min(initial * 2^k, max) microseconds, jittered down into
/// [backoff * (1 - jitter), backoff]. Clock/sleeper/jitter are injectable
/// so tests pin the exact schedule.
struct RetryOptions {
  uint64_t max_attempts = 4;
  uint64_t initial_backoff_us = 50 * 1000;
  uint64_t max_backoff_us = 1000 * 1000;
  double jitter = 0.5;
  /// Uniform [0,1) draw per sleep; null = thread-local mt19937.
  std::function<double()> jitter_source;
  /// Sleeps between attempts; null = real sleep.
  std::function<void(uint64_t)> sleeper;
};

/// The backoff schedule itself: attempt's capped-exponential base delay,
/// reduced by `jitter_draw` (in [0,1)) of the jitter window.
uint64_t RetryBackoffUs(const RetryOptions& options, uint64_t attempt,
                        double jitter_draw);

/// A Client that survives a flaky network: connect failures, timeouts,
/// sheds and lost connections are retried with jittered backoff (and a
/// transparent reconnect when the connection died). This is the engine
/// behind `caddb_shell --connect` and the soak driver's wire readers.
///
/// Retrying after a lost connection may re-execute a request the server
/// already ran (at-least-once); callers routing non-idempotent writes
/// through it accept that, exactly as with any network proxy that retries.
class RetryingClient {
 public:
  /// Connects (retrying) — returns the last error after max_attempts.
  static Result<std::unique_ptr<RetryingClient>> Connect(
      const std::string& address, uint16_t port, ClientOptions options = {},
      RetryOptions retry = {});

  /// Client::Execute with retries. Non-retryable errors (command-level
  /// failures are not errors; protocol errors, bad arguments) return
  /// immediately.
  Status Execute(const std::string& line, std::string* output,
                 bool* command_error);

  void Close();

  /// The live underlying client (null between a lost connection and the
  /// next Execute's reconnect).
  Client* client() { return client_.get(); }
  uint64_t retries() const { return retries_; }
  uint64_t sheds_seen() const { return sheds_seen_; }

 private:
  RetryingClient(std::string address, uint16_t port, ClientOptions options,
                 RetryOptions retry);

  Status EnsureConnected();
  void SleepBackoff(uint64_t attempt);

  std::string address_;
  uint16_t port_ = 0;
  ClientOptions options_;
  RetryOptions retry_;
  std::unique_ptr<Client> client_;
  uint64_t retries_ = 0;
  uint64_t sheds_seen_ = 0;
};

}  // namespace net
}  // namespace caddb

#endif  // CADDB_NET_CLIENT_H_

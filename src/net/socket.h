#ifndef CADDB_NET_SOCKET_H_
#define CADDB_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "util/result.h"

namespace caddb {
namespace net {

/// Thin RAII wrapper over a POSIX TCP socket. All I/O helpers retry EINTR,
/// suppress SIGPIPE (MSG_NOSIGNAL) and report failures as Status — the
/// server and client never touch errno directly.
///
/// Thread contract: ShutdownBoth() and the I/O helpers may run concurrently
/// (the fd is atomic, and shutdown() on a live fd is how one thread wakes
/// another's blocked recv). Close() releases the fd back to the kernel —
/// an fd number the kernel may immediately hand to an unrelated open — so
/// it must never race I/O on the same socket: the server defers every
/// close until the threads using the socket have been joined or signalled
/// out of it.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept
      : fd_(other.fd_.exchange(-1)),
        read_site_(other.read_site_.exchange(nullptr)),
        write_site_(other.write_site_.exchange(nullptr)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
      read_site_.store(other.read_site_.exchange(nullptr));
      write_site_.store(other.write_site_.exchange(nullptr));
    }
    return *this;
  }

  int fd() const { return fd_.load(std::memory_order_acquire); }
  bool valid() const { return fd() >= 0; }
  void Close();
  /// Half-close both directions without releasing the fd: a blocked recv on
  /// another thread wakes with EOF. Safe to call concurrently with I/O.
  void ShutdownBoth();

  /// Writes all `n` bytes (handling short writes). kUnavailable when the
  /// peer has gone away.
  Status SendAll(const void* data, size_t n);

  /// Reads up to `n` bytes; 0 means orderly EOF (or a timed-out recv as
  /// kUnavailable when a receive timeout is set).
  Result<size_t> Recv(void* buf, size_t n);

  /// Bounds every subsequent Recv with SO_RCVTIMEO; a timeout surfaces as
  /// kUnavailable mentioning "timed out". 0 disables.
  Status SetRecvTimeout(uint64_t timeout_ms);

  /// Attaches this socket to a pair of failpoint sites (string literals /
  /// static storage only). When armed in the global FailpointRegistry,
  /// SendAll consults `write_site` (drop / truncate mid-frame / reset /
  /// delay / error) and Recv consults `read_site` (slow-loris delay, fake
  /// EOF, reset, error) before touching the fd. Unset sites cost one
  /// relaxed atomic load per call.
  void SetFaultSites(const char* read_site, const char* write_site) {
    read_site_.store(read_site, std::memory_order_release);
    write_site_.store(write_site, std::memory_order_release);
  }

 private:
  std::atomic<int> fd_{-1};
  std::atomic<const char*> read_site_{nullptr};
  std::atomic<const char*> write_site_{nullptr};
};

/// Binds and listens on `address:port` (port 0 picks an ephemeral port;
/// `*bound_port` reports the actual one).
Result<Socket> ListenTcp(const std::string& address, uint16_t port,
                         int backlog, uint16_t* bound_port);

/// Blocking accept on a listening socket; TCP_NODELAY is set on the
/// accepted connection.
Result<Socket> Accept(const Socket& listener);

/// "ip:port" of the connected peer ("?" when the socket is gone).
std::string PeerName(const Socket& sock);

/// Blocking connect to `address:port`.
Result<Socket> ConnectTcp(const std::string& address, uint16_t port);

/// Splits "host:port" (host may be empty → 127.0.0.1).
Result<std::pair<std::string, uint16_t>> SplitHostPort(
    const std::string& host_port);

}  // namespace net
}  // namespace caddb

#endif  // CADDB_NET_SOCKET_H_

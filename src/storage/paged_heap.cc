#include "storage/paged_heap.h"

#include <algorithm>

#include "storage/heap_record.h"

namespace caddb {
namespace storage {

// The record byte format lives in heap_record.h, shared with the offline
// disk verifier (analysis/disk_verifier.cc) which re-derives this heap's
// directory from raw pages.
using heap_record::DataRecord;
using heap_record::GetU32;
using heap_record::GetU64;
using heap_record::kDataHeaderBytes;
using heap_record::kOverflowHeaderBytes;
using heap_record::OverflowChunkBytes;
using heap_record::OverflowRecord;

namespace {

constexpr uint32_t kNoPage = heap_record::kNoChainPage;

}  // namespace

Status PagedHeap::LoadAll(
    const std::function<Status(uint64_t id, const std::string& payload)>& fn) {
  struct OvRec {
    bool head = false;
    uint64_t id = 0;
    uint32_t next = kNoPage;
    std::string chunk;
  };
  std::map<uint32_t, OvRec> overflow;
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t count = files_->page_count();
  std::vector<std::pair<uint64_t, std::string>> inline_payloads;
  for (uint32_t id = 0; id < count; ++id) {
    CADDB_ASSIGN_OR_RETURN(std::string bytes, files_->ReadPage(id));
    if (Page::IsAllZero(bytes)) {
      files_->FreePage(id);
      continue;
    }
    CADDB_ASSIGN_OR_RETURN(Page page, Page::Parse(id, bytes));
    if (page.kind() == PageKind::kFree) {
      files_->FreePage(id);
      continue;
    }
    if (page.kind() == PageKind::kSlotted) {
      for (uint16_t slot : page.LiveSlots()) {
        CADDB_ASSIGN_OR_RETURN(const std::string* record, page.Read(slot));
        if (record->size() < kDataHeaderBytes) {
          return InternalError("page " + std::to_string(id) + " slot " +
                               std::to_string(slot) + ": short record");
        }
        uint64_t object = GetU64(record->data());
        if (dir_.count(object)) {
          return InternalError("page " + std::to_string(id) +
                               ": duplicate record for object " +
                               std::to_string(object));
        }
        dir_[object] = Loc{id, slot};
        inline_payloads.emplace_back(object,
                                     record->substr(kDataHeaderBytes));
      }
      page_free_[id] = page.FreeBytes();
      continue;
    }
    // Overflow page: exactly one record.
    std::vector<uint16_t> slots = page.LiveSlots();
    if (slots.size() != 1) {
      return InternalError("overflow page " + std::to_string(id) + " holds " +
                           std::to_string(slots.size()) + " records");
    }
    CADDB_ASSIGN_OR_RETURN(const std::string* record, page.Read(slots[0]));
    if (record->size() < kOverflowHeaderBytes) {
      return InternalError("overflow page " + std::to_string(id) +
                           ": short record");
    }
    OvRec rec;
    rec.head = (*record)[0] != 0;
    rec.id = GetU64(record->data() + 1);
    rec.next = GetU32(record->data() + 9);
    rec.chunk = record->substr(kOverflowHeaderBytes);
    overflow[id] = std::move(rec);
  }
  // Stitch overflow chains from their heads.
  std::set<uint32_t> visited;
  for (const auto& [page_id, rec] : overflow) {
    if (!rec.head) continue;
    if (dir_.count(rec.id)) {
      return InternalError("overflow page " + std::to_string(page_id) +
                           ": duplicate record for object " +
                           std::to_string(rec.id));
    }
    std::string payload = rec.chunk;
    visited.insert(page_id);
    overflow_pages_.insert(page_id);
    uint32_t next = rec.next;
    while (next != kNoPage) {
      auto it = overflow.find(next);
      if (it == overflow.end() || it->second.head ||
          it->second.id != rec.id || visited.count(next)) {
        return InternalError("overflow chain for object " +
                             std::to_string(rec.id) + " is broken at page " +
                             std::to_string(next));
      }
      payload += it->second.chunk;
      visited.insert(next);
      overflow_pages_.insert(next);
      next = it->second.next;
    }
    dir_[rec.id] = Loc{page_id, kOverflowSlot};
    CADDB_RETURN_IF_ERROR(fn(rec.id, payload));
  }
  for (const auto& [page_id, rec] : overflow) {
    if (!visited.count(page_id)) {
      return InternalError("overflow page " + std::to_string(page_id) +
                           " is not reachable from any chain head");
    }
  }
  for (auto& [object, payload] : inline_payloads) {
    CADDB_RETURN_IF_ERROR(fn(object, payload));
  }
  return OkStatus();
}

bool PagedHeap::Contains(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_.count(id) > 0;
}

Result<std::string> PagedHeap::Fetch(uint64_t id) const {
  Loc loc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = dir_.find(id);
    if (it == dir_.end()) {
      return NotFound("object " + std::to_string(id) + " is not on any page");
    }
    loc = it->second;
  }
  if (loc.slot != kOverflowSlot) {
    CADDB_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(loc.page_id));
    Result<const std::string*> record = page->Read(loc.slot);
    if (!record.ok()) {
      pool_->Unpin(loc.page_id);
      return record.status();
    }
    if ((*record)->size() < kDataHeaderBytes ||
        GetU64((*record)->data()) != id) {
      pool_->Unpin(loc.page_id);
      return InternalError("page " + std::to_string(loc.page_id) +
                           ": directory/record mismatch for object " +
                           std::to_string(id));
    }
    std::string payload = (*record)->substr(kDataHeaderBytes);
    pool_->Unpin(loc.page_id);
    return payload;
  }
  // Overflow chain walk.
  std::string payload;
  uint32_t next = loc.page_id;
  bool first = true;
  while (next != kNoPage) {
    uint32_t current = next;
    CADDB_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(current));
    std::vector<uint16_t> slots = page->LiveSlots();
    Status bad;
    if (slots.size() != 1) {
      bad = InternalError("overflow page " + std::to_string(current) +
                          " holds " + std::to_string(slots.size()) +
                          " records");
    } else {
      Result<const std::string*> record = page->Read(slots[0]);
      if (!record.ok()) {
        bad = record.status();
      } else if ((*record)->size() < kOverflowHeaderBytes ||
                 GetU64((*record)->data() + 1) != id ||
                 (((*record)->front() != 0) != first)) {
        bad = InternalError("overflow chain for object " + std::to_string(id) +
                            " is broken at page " + std::to_string(current));
      } else {
        payload += (*record)->substr(kOverflowHeaderBytes);
        next = GetU32((*record)->data() + 9);
      }
    }
    pool_->Unpin(current);
    if (!bad.ok()) return bad;
    first = false;
  }
  return payload;
}

Result<Page*> PagedHeap::BatchPageLocked(uint32_t page_id) {
  CADDB_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(page_id));
  if (batch_.count(page_id)) {
    // Already holding the batch pin; release the fetch pin.
    pool_->Unpin(page_id);
  } else {
    batch_.insert(page_id);  // the fetch pin becomes the batch pin
  }
  pool_->MarkDirty(page_id);
  return page;
}

Result<Page*> PagedHeap::BatchCreateLocked(PageKind kind) {
  CADDB_ASSIGN_OR_RETURN(Page * page, pool_->Create(kind));
  batch_.insert(page->page_id());
  return page;
}

Status PagedHeap::InsertLocked(uint64_t id, const std::string& payload) {
  std::string record = DataRecord(id, payload);
  if (record.size() <= Page::MaxRecordBytes()) {
    for (auto& [page_id, free] : page_free_) {
      if (free < record.size()) continue;
      CADDB_ASSIGN_OR_RETURN(Page * page, BatchPageLocked(page_id));
      if (!page->Fits(record.size())) {
        free = page->FreeBytes();
        continue;
      }
      CADDB_ASSIGN_OR_RETURN(uint16_t slot, page->Insert(record));
      free = page->FreeBytes();
      dir_[id] = Loc{page_id, slot};
      return OkStatus();
    }
    CADDB_ASSIGN_OR_RETURN(Page * page, BatchCreateLocked(PageKind::kSlotted));
    CADDB_ASSIGN_OR_RETURN(uint16_t slot, page->Insert(record));
    page_free_[page->page_id()] = page->FreeBytes();
    dir_[id] = Loc{page->page_id(), slot};
    return OkStatus();
  }
  // Overflow: chunk the payload across a chain of dedicated pages.
  size_t chunk_bytes = OverflowChunkBytes();
  std::vector<Page*> chain;
  size_t chunks = (payload.size() + chunk_bytes - 1) / chunk_bytes;
  if (chunks == 0) chunks = 1;
  for (size_t i = 0; i < chunks; ++i) {
    CADDB_ASSIGN_OR_RETURN(Page * page,
                           BatchCreateLocked(PageKind::kOverflow));
    chain.push_back(page);
  }
  for (size_t i = 0; i < chunks; ++i) {
    uint32_t next = i + 1 < chunks ? chain[i + 1]->page_id() : kNoPage;
    std::string chunk = payload.substr(i * chunk_bytes,
                                       std::min(chunk_bytes,
                                                payload.size() -
                                                    i * chunk_bytes));
    CADDB_ASSIGN_OR_RETURN(
        uint16_t slot,
        chain[i]->Insert(OverflowRecord(i == 0, id, next, chunk)));
    (void)slot;
    overflow_pages_.insert(chain[i]->page_id());
  }
  dir_[id] = Loc{chain[0]->page_id(), kOverflowSlot};
  return OkStatus();
}

Status PagedHeap::EraseLocked(uint64_t id) {
  auto it = dir_.find(id);
  if (it == dir_.end()) return OkStatus();  // never checkpointed: nothing here
  Loc loc = it->second;
  dir_.erase(it);
  if (loc.slot != kOverflowSlot) {
    CADDB_ASSIGN_OR_RETURN(Page * page, BatchPageLocked(loc.page_id));
    CADDB_RETURN_IF_ERROR(page->Erase(loc.slot));
    if (page->live_records() == 0) {
      page->set_kind(PageKind::kFree);
      page_free_.erase(loc.page_id);
    } else {
      page_free_[loc.page_id] = page->FreeBytes();
    }
    return OkStatus();
  }
  uint32_t next = loc.page_id;
  while (next != kNoPage) {
    uint32_t current = next;
    CADDB_ASSIGN_OR_RETURN(Page * page, BatchPageLocked(current));
    std::vector<uint16_t> slots = page->LiveSlots();
    if (slots.size() != 1) {
      return InternalError("overflow page " + std::to_string(current) +
                           " holds " + std::to_string(slots.size()) +
                           " records");
    }
    CADDB_ASSIGN_OR_RETURN(const std::string* record, page->Read(slots[0]));
    if (record->size() < kOverflowHeaderBytes ||
        GetU64(record->data() + 1) != id) {
      return InternalError("overflow chain for object " + std::to_string(id) +
                           " is broken at page " + std::to_string(current));
    }
    next = GetU32(record->data() + 9);
    CADDB_RETURN_IF_ERROR(page->Erase(slots[0]));
    page->set_kind(PageKind::kFree);
    overflow_pages_.erase(current);
  }
  return OkStatus();
}

Status PagedHeap::Upsert(uint64_t id, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dir_.find(id);
  if (it != dir_.end() && it->second.slot != kOverflowSlot) {
    std::string record = DataRecord(id, payload);
    if (record.size() <= Page::MaxRecordBytes()) {
      // Try updating in place before falling back to erase + reinsert.
      Loc loc = it->second;
      CADDB_ASSIGN_OR_RETURN(Page * page, BatchPageLocked(loc.page_id));
      Status updated = page->Update(loc.slot, record);
      if (updated.ok()) {
        page_free_[loc.page_id] = page->FreeBytes();
        return OkStatus();
      }
      if (updated.code() != Code::kFailedPrecondition) return updated;
    }
  }
  if (it != dir_.end()) CADDB_RETURN_IF_ERROR(EraseLocked(id));
  return InsertLocked(id, payload);
}

Status PagedHeap::Erase(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  return EraseLocked(id);
}

std::vector<std::pair<uint32_t, std::string>> PagedHeap::CaptureBatchImages(
    uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint32_t, std::string>> images;
  images.reserve(batch_.size());
  for (uint32_t page_id : batch_) {
    Result<Page*> page = pool_->Fetch(page_id);
    if (!page.ok()) continue;  // batch pages are resident and pinned
    (*page)->set_lsn(lsn);
    pool_->MarkDirty(page_id);
    images.emplace_back(page_id, (*page)->Serialize());
    pool_->Unpin(page_id);
  }
  return images;
}

Status PagedHeap::CompleteBatch() {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t page_id : batch_) {
    PageKind kind = PageKind::kSlotted;
    {
      Result<Page*> page = pool_->Fetch(page_id);
      if (page.ok()) {
        kind = (*page)->kind();
        pool_->Unpin(page_id);
      }
    }
    CADDB_RETURN_IF_ERROR(pool_->FlushPage(page_id));
    if (kind == PageKind::kFree) {
      pool_->Drop(page_id);  // drops the batch pin along with the frame
      files_->FreePage(page_id);
    } else {
      pool_->Unpin(page_id);  // release the batch pin
    }
  }
  CADDB_RETURN_IF_ERROR(files_->Sync());
  batch_.clear();
  return OkStatus();
}

size_t PagedHeap::batch_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_.size();
}

PagedHeap::Stats PagedHeap::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.objects = dir_.size();
  out.data_pages = page_free_.size();
  out.overflow_pages = overflow_pages_.size();
  return out;
}

std::map<uint64_t, std::pair<uint32_t, uint16_t>> PagedHeap::DirectorySnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<uint64_t, std::pair<uint32_t, uint16_t>> out;
  for (const auto& [id, loc] : dir_) {
    out.emplace(id, std::make_pair(loc.page_id, loc.slot));
  }
  return out;
}

}  // namespace storage
}  // namespace caddb

#include "storage/buffer_pool.h"

#include <algorithm>

namespace caddb {
namespace storage {

Result<Page*> BufferPool::Fetch(uint32_t page_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    ++hits_;
    it->second->pins++;
    it->second->ref = true;
    return &it->second->page;
  }
  ++misses_;
  CADDB_RETURN_IF_ERROR(EvictForSpaceLocked());
  // Read outside the lock would be nicer for concurrency, but every caller
  // is already serialized by the store gate; simplicity wins.
  CADDB_ASSIGN_OR_RETURN(std::string bytes, files_->ReadPage(page_id));
  Page page(page_id);
  if (!Page::IsAllZero(bytes)) {
    CADDB_ASSIGN_OR_RETURN(page, Page::Parse(page_id, bytes));
  }
  auto frame = std::make_unique<Frame>(std::move(page));
  frame->pins = 1;
  frame->ref = true;
  Page* out = &frame->page;
  frames_.emplace(page_id, std::move(frame));
  clock_.push_back(page_id);
  return out;
}

Result<Page*> BufferPool::Create(PageKind kind) {
  std::unique_lock<std::mutex> lock(mu_);
  CADDB_RETURN_IF_ERROR(EvictForSpaceLocked());
  uint32_t page_id = files_->AllocatePage();
  auto frame = std::make_unique<Frame>(Page(page_id, kind));
  frame->pins = 1;
  frame->dirty = true;
  frame->ref = true;
  Page* out = &frame->page;
  frames_.emplace(page_id, std::move(frame));
  clock_.push_back(page_id);
  return out;
}

Status BufferPool::Pin(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(page_id);
  if (it == frames_.end()) {
    return InternalError("pin of non-resident page " + std::to_string(page_id));
  }
  it->second->pins++;
  return OkStatus();
}

void BufferPool::Unpin(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(page_id);
  if (it != frames_.end() && it->second->pins > 0) it->second->pins--;
}

void BufferPool::MarkDirty(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(page_id);
  if (it != frames_.end()) it->second->dirty = true;
}

Status BufferPool::FlushFrameLocked(uint32_t page_id, Frame* frame) {
  if (!frame->dirty) return OkStatus();
  uint64_t page_lsn = frame->page.lsn();
  if (page_lsn > 0) {
    uint64_t durable =
        options_.flushed_lsn ? options_.flushed_lsn() : UINT64_MAX;
    if (page_lsn > durable) {
      if (!options_.ensure_flushed) {
        return FailedPrecondition(
            "page " + std::to_string(page_id) + " at lsn " +
            std::to_string(page_lsn) +
            " cannot be flushed: WAL durable only to " +
            std::to_string(durable));
      }
      CADDB_RETURN_IF_ERROR(options_.ensure_flushed(page_lsn));
    }
  }
  CADDB_RETURN_IF_ERROR(files_->WritePage(page_id, frame->page.Serialize()));
  ++flushes_;
  frame->dirty = false;
  return OkStatus();
}

Status BufferPool::FlushPage(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(page_id);
  if (it == frames_.end()) return OkStatus();  // not resident: nothing dirty
  return FlushFrameLocked(page_id, it->second.get());
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, frame] : frames_) {
    CADDB_RETURN_IF_ERROR(FlushFrameLocked(id, frame.get()));
  }
  return OkStatus();
}

void BufferPool::Drop(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_.erase(page_id);
}

Status BufferPool::EvictForSpaceLocked() {
  // Evicts until one frame below capacity — which also drains an earlier
  // overcommit high-water mark (a checkpoint batch pinning more frames
  // than the pool holds) back down once those pins release.
  while (frames_.size() >= options_.capacity) {
    // Clock sweep, two phases. Phase one evicts only clean unpinned
    // frames, clearing reference bits as it passes; phase two accepts a
    // dirty victim and pays the flush. Two full revolutions per phase
    // guarantee every frame's second chance is spent before giving up.
    bool evicted = false;
    for (int phase = 0; phase < 2 && !evicted; ++phase) {
      size_t sweeps = clock_.size() * 2;
      for (size_t step = 0; step < sweeps; ++step) {
        if (clock_.empty()) break;
        if (hand_ >= clock_.size()) hand_ = 0;
        uint32_t candidate = clock_[hand_];
        auto it = frames_.find(candidate);
        if (it == frames_.end()) {
          // Stale clock entry from an earlier eviction or Drop.
          clock_.erase(clock_.begin() + static_cast<long>(hand_));
          continue;
        }
        Frame* frame = it->second.get();
        if (frame->pins > 0) {
          ++hand_;
          continue;
        }
        if (frame->ref) {
          frame->ref = false;
          ++hand_;
          continue;
        }
        if (frame->dirty && phase == 0) {
          ++hand_;
          continue;
        }
        if (frame->dirty) {
          CADDB_RETURN_IF_ERROR(FlushFrameLocked(candidate, frame));
          ++dirty_evictions_;
        }
        ++evictions_;
        frames_.erase(it);
        clock_.erase(clock_.begin() + static_cast<long>(hand_));
        evicted = true;
        break;
      }
    }
    if (!evicted) {
      // Everything is pinned (a checkpoint holding its no-steal set, or a
      // burst of concurrent fetches). Grow past capacity rather than fail.
      ++overcommits_;
      return OkStatus();
    }
  }
  return OkStatus();
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferPoolStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.dirty_evictions = dirty_evictions_;
  out.flushes = flushes_;
  out.overcommits = overcommits_;
  out.pages = frames_.size();
  out.capacity = options_.capacity;
  for (const auto& [id, frame] : frames_) {
    if (frame->pins > 0) ++out.pinned;
    if (frame->dirty) ++out.dirty;
  }
  return out;
}

}  // namespace storage
}  // namespace caddb

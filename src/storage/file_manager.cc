#include "storage/file_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/failpoint.h"

namespace caddb {
namespace storage {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return InternalError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<FileManager>> FileManager::Open(
    const std::string& path, FileManagerOptions options) {
  int flags = options.read_only ? O_RDONLY : (O_RDWR | O_CREAT);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (options.read_only && errno == ENOENT) {
      // A follower staging dir from before its primary ever checkpointed has
      // no page file yet; an empty one (fd -1, zero pages) behaves the same.
      fd = -1;
    } else {
      return Errno("cannot open page file", path);
    }
  }
  uint32_t file_pages = 0;
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status s = Errno("cannot stat page file", path);
      ::close(fd);
      return s;
    }
    if (st.st_size % kPageSize != 0) {
      // A torn append crashed mid-page; the partial tail page was never
      // referenced by a published checkpoint, so it is garbage. Round down.
      if (!options.read_only &&
          ::ftruncate(fd, st.st_size - (st.st_size % kPageSize)) != 0) {
        Status s = Errno("cannot trim torn page file", path);
        ::close(fd);
        return s;
      }
    }
    file_pages = static_cast<uint32_t>(st.st_size / kPageSize);
  }
  return std::unique_ptr<FileManager>(
      new FileManager(fd, path, options, file_pages));
}

FileManager::~FileManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> FileManager::ReadPage(uint32_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = overlay_.find(id);
    if (it != overlay_.end()) return it->second;
  }
  std::string out(kPageSize, '\0');
  if (fd_ < 0) return out;  // empty read-only file: all holes
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, &out[done], kPageSize - done,
                        static_cast<off_t>(id) * kPageSize + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread of page file", path_);
    }
    if (n == 0) break;  // past EOF: remaining bytes stay zero
    done += static_cast<size_t>(n);
  }
  return out;
}

Status FileManager::WritePage(uint32_t id, const std::string& bytes) {
  if (options_.read_only) {
    return FailedPrecondition("page file '" + path_ + "' is read-only");
  }
  if (bytes.size() != kPageSize) {
    return InternalError("page write of " + std::to_string(bytes.size()) +
                         " bytes, want " + std::to_string(kPageSize));
  }
  uint64_t index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = write_count_++;
    // The write makes the page real even if the file write below is torn
    // or dropped by fault injection: the allocator and the startup scan
    // must account for it (a healed checkpoint image may land past the
    // old end of file).
    if (id >= next_page_) next_page_ = id + 1;
  }
  if (index == options_.error_at_write) {
    return Unavailable("injected page-write failure at write " +
                       std::to_string(index));
  }
  // Registry site for runtime-armed page-write faults (clean error / abort
  // / delay); the byte-exact torn-write crash matrix below stays on the
  // per-instance options.
  CADDB_RETURN_IF_ERROR(fault::Inject(fault::sites::kStoragePageWrite));
  size_t limit = kPageSize;
  if (index > options_.fail_after_writes) {
    return OkStatus();  // acknowledged but lost — the post-crash writes
  }
  if (index == options_.fail_after_writes) {
    limit = kPageSize / 2;  // torn in half mid-pwrite
  }
  size_t done = 0;
  while (done < limit) {
    ssize_t n = ::pwrite(fd_, bytes.data() + done, limit - done,
                         static_cast<off_t>(id) * kPageSize + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite of page file", path_);
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FileManager::Sync() {
  if (options_.read_only || fd_ < 0) return OkStatus();
  CADDB_RETURN_IF_ERROR(fault::Inject(fault::sites::kStoragePageFlush));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (write_count_ > options_.fail_after_writes) {
      return OkStatus();  // the durability lie after a simulated crash
    }
  }
  if (::fsync(fd_) != 0) return Errno("fsync of page file", path_);
  return OkStatus();
}

uint32_t FileManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    uint32_t id = *free_.begin();
    free_.erase(free_.begin());
    return id;
  }
  return next_page_++;
}

void FileManager::FreePage(uint32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.insert(id);
}

void FileManager::MarkLive(uint32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.erase(id);
  if (id >= next_page_) next_page_ = id + 1;
}

uint32_t FileManager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t count = next_page_;
  if (!overlay_.empty()) {
    uint32_t top = overlay_.rbegin()->first + 1;
    if (top > count) count = top;
  }
  return count;
}

void FileManager::SetOverlay(std::map<uint32_t, std::string> overlay) {
  std::lock_guard<std::mutex> lock(mu_);
  overlay_ = std::move(overlay);
  if (!overlay_.empty()) {
    uint32_t top = overlay_.rbegin()->first + 1;
    if (top > next_page_) next_page_ = top;
  }
}

uint64_t FileManager::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_count_;
}

std::set<uint32_t> FileManager::free_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_;
}

Result<uint64_t> FileManager::FileSizeBytes() const {
  if (fd_ < 0) return uint64_t{0};
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("cannot stat page file", path_);
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace storage
}  // namespace caddb

#ifndef CADDB_STORAGE_HEAP_RECORD_H_
#define CADDB_STORAGE_HEAP_RECORD_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "storage/page.h"

namespace caddb {
namespace storage {
namespace heap_record {

/// Byte format of the records PagedHeap stores in page slots, shared by the
/// heap itself and the offline disk verifier (which re-derives the
/// surrogate -> page/slot directory from raw pages without a heap):
///
///   inline data record:  [u64 LE id][object payload]
///   overflow record:     [u8 head?][u64 LE id][u32 LE next][payload chunk]
///
/// `next` is the page id of the chain's next overflow page, kNoChainPage at
/// the end; `head` marks the chain's first page (exactly one per chain).

/// End-of-chain marker for overflow `next` pointers (page 0 is a valid
/// page, so 0 cannot terminate a chain).
inline constexpr uint32_t kNoChainPage = 0xFFFFFFFF;

inline constexpr size_t kDataHeaderBytes = 8;
inline constexpr size_t kOverflowHeaderBytes = 13;

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

inline uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

inline std::string DataRecord(uint64_t id, const std::string& payload) {
  std::string record;
  record.reserve(kDataHeaderBytes + payload.size());
  PutU64(&record, id);
  record += payload;
  return record;
}

inline std::string OverflowRecord(bool head, uint64_t id, uint32_t next,
                                  const std::string& chunk) {
  std::string record;
  record.reserve(kOverflowHeaderBytes + chunk.size());
  record.push_back(head ? 1 : 0);
  PutU64(&record, id);
  PutU32(&record, next);
  record += chunk;
  return record;
}

/// Parsed view of an overflow record (valid only while the record bytes
/// live).
struct OverflowView {
  bool head = false;
  uint64_t id = 0;
  uint32_t next = kNoChainPage;
  /// Offset of the payload chunk within the record.
  static constexpr size_t chunk_offset() { return kOverflowHeaderBytes; }
};

/// Decodes the overflow header; false when the record is too short.
inline bool ParseOverflow(const std::string& record, OverflowView* out) {
  if (record.size() < kOverflowHeaderBytes) return false;
  out->head = record[0] != 0;
  out->id = GetU64(record.data() + 1);
  out->next = GetU32(record.data() + 9);
  return true;
}

/// Payload bytes one overflow page can carry.
inline size_t OverflowChunkBytes() {
  return Page::MaxRecordBytes() - kOverflowHeaderBytes;
}

}  // namespace heap_record
}  // namespace storage
}  // namespace caddb

#endif  // CADDB_STORAGE_HEAP_RECORD_H_

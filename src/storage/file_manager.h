#ifndef CADDB_STORAGE_FILE_MANAGER_H_
#define CADDB_STORAGE_FILE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "storage/page.h"
#include "util/result.h"

namespace caddb {
namespace storage {

/// Name of the page file inside a database directory.
inline constexpr const char kPageFileName[] = "pages.db";

struct FileManagerOptions {
  /// Read-only opens never create or write the file; combined with an
  /// overlay (SetOverlay) a follower can recover a staged directory without
  /// modifying a single byte of it.
  bool read_only = false;

  /// Crash fault injection for tests: physical page writes with index >=
  /// fail_after_writes are silently dropped (acknowledged but lost), and the
  /// write at the boundary is torn in half — the moment a SIGKILL lands
  /// mid-pwrite. Subsequent Syncs lie, like FailpointFile for the WAL.
  uint64_t fail_after_writes = UINT64_MAX;

  /// Clean-failure injection: the Nth physical write returns an error
  /// instead, exercising the checkpoint's restore-dirty-set path.
  uint64_t error_at_write = UINT64_MAX;
};

/// Owns the page file: positioned page reads/writes (pread/pwrite), page
/// allocation with an in-memory freelist seeded by the startup scan, and an
/// optional read overlay of checkpoint page images for read-only recovery.
class FileManager {
 public:
  static Result<std::unique_ptr<FileManager>> Open(const std::string& path,
                                                   FileManagerOptions options);
  ~FileManager();

  FileManager(const FileManager&) = delete;
  FileManager& operator=(const FileManager&) = delete;

  /// Reads page `id`: overlay image if present, else the file. Pages inside
  /// the file that were never written read back as zeros (sparse holes).
  Result<std::string> ReadPage(uint32_t id);

  /// Writes exactly kPageSize bytes at page `id`, extending the file as
  /// needed.
  Status WritePage(uint32_t id, const std::string& bytes);

  Status Sync();

  /// Hands out the lowest free page id (freelist first, then file growth).
  uint32_t AllocatePage();

  /// Returns `id` to the freelist.
  void FreePage(uint32_t id);

  /// Startup-scan bookkeeping: marks `id` as occupied so allocation skips it.
  void MarkLive(uint32_t id);

  /// One past the highest page the file (or allocator) knows about.
  uint32_t page_count() const;

  /// Installs checkpoint page images consulted before the file on every
  /// read. Used by read-only recovery; writable recovery writes the images
  /// into the file instead.
  void SetOverlay(std::map<uint32_t, std::string> overlay);

  /// Number of physical page writes so far — sizes the crash-test matrix.
  uint64_t writes() const;

  /// Read-only inspection: the page file's path and a snapshot of the
  /// in-memory freelist (pages returned by FreePage / holes found by the
  /// startup scan). The disk verifier cross-checks its own derived freelist
  /// against this on a live heap.
  const std::string& path() const { return path_; }
  std::set<uint32_t> free_pages() const;

  /// Size of the file on disk in bytes (fstat), 0 for the absent read-only
  /// file. A size that is not a kPageSize multiple is a torn tail page.
  Result<uint64_t> FileSizeBytes() const;

 private:
  FileManager(int fd, std::string path, FileManagerOptions options,
              uint32_t file_pages)
      : fd_(fd),
        path_(std::move(path)),
        options_(options),
        next_page_(file_pages) {}

  int fd_;
  std::string path_;
  FileManagerOptions options_;

  mutable std::mutex mu_;
  std::set<uint32_t> free_;
  uint32_t next_page_;
  std::map<uint32_t, std::string> overlay_;
  uint64_t write_count_ = 0;
};

}  // namespace storage
}  // namespace caddb

#endif  // CADDB_STORAGE_FILE_MANAGER_H_

#ifndef CADDB_STORAGE_PAGED_HEAP_H_
#define CADDB_STORAGE_PAGED_HEAP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/file_manager.h"
#include "util/result.h"

namespace caddb {
namespace storage {

/// Record heap keyed by object surrogate, layered on slotted pages through
/// the buffer pool. Small payloads live inline in a slotted page; payloads
/// beyond Page::MaxRecordBytes() are chunked across a chain of overflow
/// pages.
///
/// Mutation happens only in checkpoint batches: Upsert/Erase pin and dirty
/// the touched pages, CaptureBatchImages serializes them for the checkpoint
/// file (the double-write journal), and CompleteBatch writes them in place,
/// syncs, and unpins — strictly after the checkpoint file is durable, so a
/// torn in-place write is always healed from the published images. A failed
/// checkpoint simply leaves the batch pinned and dirty for the next attempt.
class PagedHeap {
 public:
  PagedHeap(FileManager* files, BufferPool* pool)
      : files_(files), pool_(pool) {}

  /// Startup scan: reads every page directly (no pool traffic), seeds the
  /// file manager's freelist, builds the id -> location directory, and
  /// hands each stored payload to `fn`.
  Status LoadAll(
      const std::function<Status(uint64_t id, const std::string& payload)>& fn);

  bool Contains(uint64_t id) const;

  /// Reads one payload through the buffer pool (demand paging).
  Result<std::string> Fetch(uint64_t id) const;

  // ---- Checkpoint batch ----

  Status Upsert(uint64_t id, const std::string& payload);
  Status Erase(uint64_t id);

  /// Stamps every batch page with the checkpoint's lsn and returns their
  /// serialized images for embedding in the checkpoint file.
  std::vector<std::pair<uint32_t, std::string>> CaptureBatchImages(
      uint64_t lsn);

  /// Phase two, after the checkpoint file is durable: in-place writes,
  /// fsync, unpin, and release of pages the batch emptied.
  Status CompleteBatch();

  size_t batch_pages() const;

  struct Stats {
    size_t objects = 0;
    size_t data_pages = 0;
    size_t overflow_pages = 0;
  };
  Stats stats() const;

  /// Read-only inspection for the disk verifier: surrogate -> (page id,
  /// slot) over the whole directory. Slot kOverflowSlotPublic means the
  /// page heads an overflow chain.
  static constexpr uint16_t kOverflowSlotPublic = 0xFFFF;
  std::map<uint64_t, std::pair<uint32_t, uint16_t>> DirectorySnapshot() const;

 private:
  /// Where an object's record lives. slot == kOverflowSlot means `page_id`
  /// heads an overflow chain.
  struct Loc {
    uint32_t page_id = 0;
    uint16_t slot = 0;
  };
  static constexpr uint16_t kOverflowSlot = 0xFFFF;

  Result<Page*> BatchPageLocked(uint32_t page_id);
  Result<Page*> BatchCreateLocked(PageKind kind);
  Status EraseLocked(uint64_t id);
  Status InsertLocked(uint64_t id, const std::string& payload);

  FileManager* files_;
  BufferPool* pool_;

  mutable std::mutex mu_;
  std::map<uint64_t, Loc> dir_;
  /// Data pages by free bytes, maintained on every batch mutation; the
  /// insert path first-fits from here before growing the file.
  std::map<uint32_t, size_t> page_free_;
  std::set<uint32_t> overflow_pages_;
  /// Pages pinned + dirtied by the in-flight (or failed-and-retrying)
  /// checkpoint batch.
  std::set<uint32_t> batch_;
};

}  // namespace storage
}  // namespace caddb

#endif  // CADDB_STORAGE_PAGED_HEAP_H_

#ifndef CADDB_STORAGE_PAGE_H_
#define CADDB_STORAGE_PAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace caddb {
namespace storage {

/// Fixed page size of the object store's page file. 8 KiB keeps a typical
/// gate-library object (a few hundred bytes of text payload) at ~20 records
/// per page while bounding the cost of a single dirty-page image inside a
/// checkpoint.
inline constexpr uint32_t kPageSize = 8192;

/// On-disk page header, little-endian:
///
///   u32  masked CRC32C over bytes [4, kPageSize)
///   u32  page id (must match the page's position in the file)
///   u64  page LSN — the WAL lsn of the checkpoint that last captured this
///        page's image; the buffer pool may not write the page to disk
///        until the WAL is durable up to this lsn
///   u16  page kind (PageKind)
///   u16  slot count
///   u32  reserved (zero)
inline constexpr uint32_t kPageHeaderBytes = 24;

/// Per-slot directory entry appended at the page tail: u16 offset + u16
/// length. Offset 0xFFFF marks a dead (erasable, reusable) slot.
inline constexpr uint32_t kSlotEntryBytes = 4;
inline constexpr uint16_t kDeadSlotOffset = 0xFFFF;

enum class PageKind : uint16_t {
  kFree = 0,      // unallocated / returned to the freelist
  kSlotted = 1,   // slot-directory page of inline object records
  kOverflow = 2,  // one chunk of an object too large for a slotted page
};

/// One 8 KiB slotted page, held in memory as a logical record list: slot
/// index -> record bytes (nullopt for dead slots). The physical layout —
/// header, packed record heap, slot directory growing down from the tail —
/// is produced on Serialize and parsed on Parse, so in-memory mutation never
/// deals with compaction; every serialize is a fresh pack.
class Page {
 public:
  explicit Page(uint32_t page_id, PageKind kind = PageKind::kSlotted)
      : page_id_(page_id), kind_(kind) {}

  /// Parses `bytes` (exactly kPageSize) read from disk at `page_id`,
  /// validating the checksum and the stored page id.
  static Result<Page> Parse(uint32_t page_id, const std::string& bytes);

  /// Raw header fields as stored, with nothing validated — the offline disk
  /// verifier's view of a page whose checksum may not even match. crc_ok /
  /// id is what Parse would check; callers decide what a mismatch means
  /// (torn in-place write healed by a checkpoint image vs. real corruption).
  struct RawHeader {
    bool crc_ok = false;
    uint32_t stored_id = 0;
    uint64_t lsn = 0;
    uint16_t kind_raw = 0;
    uint16_t slot_count = 0;
  };

  /// Decodes the header of `bytes` (exactly kPageSize, else an error) and
  /// verifies the checksum into RawHeader::crc_ok without failing on it.
  static Result<RawHeader> PeekHeader(const std::string& bytes);

  /// Raw (offset, length) slot-directory entries of `bytes`, dead slots
  /// included as (kDeadSlotOffset, 0), with no bounds validation — the disk
  /// verifier audits overlap and bounds itself, byte-exactly. Fails only
  /// when the directory overruns the page.
  static Result<std::vector<std::pair<uint16_t, uint16_t>>> RawSlotDirectory(
      const std::string& bytes);

  /// True when every byte is zero — a never-written hole in a sparse file,
  /// treated as a free page by the startup scan.
  static bool IsAllZero(const std::string& bytes);

  /// Largest record an empty page can hold inline.
  static constexpr size_t MaxRecordBytes() {
    return kPageSize - kPageHeaderBytes - kSlotEntryBytes;
  }

  /// Serializes to exactly kPageSize bytes with a fresh checksum.
  std::string Serialize() const;

  uint32_t page_id() const { return page_id_; }
  PageKind kind() const { return kind_; }
  void set_kind(PageKind kind) { kind_ = kind; }
  uint64_t lsn() const { return lsn_; }
  void set_lsn(uint64_t lsn) { lsn_ = lsn; }

  /// True when `record` fits without evicting anything.
  bool Fits(size_t record_bytes) const;

  /// Stores `record` in the first dead slot (or a new one). Fails with
  /// kFailedPrecondition when the page is full.
  Result<uint16_t> Insert(const std::string& record);

  /// Replaces the record at `slot`. Fails when the slot is dead/out of range
  /// or the new record does not fit.
  Status Update(uint16_t slot, const std::string& record);

  /// Marks `slot` dead. Its directory entry is reused by later Inserts.
  Status Erase(uint16_t slot);

  /// Borrowed view of the record at `slot`; invalidated by any mutation.
  Result<const std::string*> Read(uint16_t slot) const;

  size_t live_records() const { return live_count_; }
  /// Bytes still available for one more record (including its slot entry).
  size_t FreeBytes() const;
  std::vector<uint16_t> LiveSlots() const;

 private:
  size_t UsedBytes() const;

  uint32_t page_id_;
  PageKind kind_;
  uint64_t lsn_ = 0;
  std::vector<std::optional<std::string>> slots_;
  size_t live_bytes_ = 0;
  size_t live_count_ = 0;
};

}  // namespace storage
}  // namespace caddb

#endif  // CADDB_STORAGE_PAGE_H_

#include "storage/page.h"

#include <algorithm>
#include <cstring>

#include "wal/crc32c.h"

namespace caddb {
namespace storage {

namespace {

void PutU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
}

void PutU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

void PutU64(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0]) |
                               (static_cast<unsigned char>(p[1]) << 8));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

bool Page::IsAllZero(const std::string& bytes) {
  for (char c : bytes) {
    if (c != 0) return false;
  }
  return true;
}

Result<Page::RawHeader> Page::PeekHeader(const std::string& bytes) {
  if (bytes.size() != kPageSize) {
    return InternalError("page image of " + std::to_string(bytes.size()) +
                         " bytes, want " + std::to_string(kPageSize));
  }
  RawHeader header;
  header.crc_ok = wal::Crc32cUnmask(GetU32(bytes.data())) ==
                  wal::Crc32c(bytes.data() + 4, kPageSize - 4);
  header.stored_id = GetU32(bytes.data() + 4);
  header.lsn = GetU64(bytes.data() + 8);
  header.kind_raw = GetU16(bytes.data() + 16);
  header.slot_count = GetU16(bytes.data() + 18);
  return header;
}

Result<std::vector<std::pair<uint16_t, uint16_t>>> Page::RawSlotDirectory(
    const std::string& bytes) {
  if (bytes.size() != kPageSize) {
    return InternalError("page image of " + std::to_string(bytes.size()) +
                         " bytes, want " + std::to_string(kPageSize));
  }
  uint16_t slot_count = GetU16(bytes.data() + 18);
  size_t dir_bytes = static_cast<size_t>(slot_count) * kSlotEntryBytes;
  if (kPageHeaderBytes + dir_bytes > kPageSize) {
    return InternalError("slot directory of " + std::to_string(slot_count) +
                         " entries overruns the page");
  }
  std::vector<std::pair<uint16_t, uint16_t>> out;
  out.reserve(slot_count);
  const char* dir = bytes.data() + kPageSize - dir_bytes;
  for (uint16_t i = 0; i < slot_count; ++i) {
    out.emplace_back(GetU16(dir + static_cast<size_t>(i) * kSlotEntryBytes),
                     GetU16(dir + static_cast<size_t>(i) * kSlotEntryBytes + 2));
  }
  return out;
}

Result<Page> Page::Parse(uint32_t page_id, const std::string& bytes) {
  if (bytes.size() != kPageSize) {
    return InternalError("page " + std::to_string(page_id) + ": " +
                         std::to_string(bytes.size()) + " bytes, want " +
                         std::to_string(kPageSize));
  }
  uint32_t stored = wal::Crc32cUnmask(GetU32(bytes.data()));
  uint32_t actual = wal::Crc32c(bytes.data() + 4, kPageSize - 4);
  if (stored != actual) {
    return InternalError("page " + std::to_string(page_id) +
                         ": checksum mismatch (torn write or corruption)");
  }
  uint32_t id = GetU32(bytes.data() + 4);
  if (id != page_id) {
    return InternalError("page " + std::to_string(page_id) +
                         ": header claims page id " + std::to_string(id));
  }
  uint16_t kind_raw = GetU16(bytes.data() + 16);
  if (kind_raw > static_cast<uint16_t>(PageKind::kOverflow)) {
    return InternalError("page " + std::to_string(page_id) +
                         ": unknown page kind " + std::to_string(kind_raw));
  }
  Page page(page_id, static_cast<PageKind>(kind_raw));
  page.lsn_ = GetU64(bytes.data() + 8);
  uint16_t slot_count = GetU16(bytes.data() + 18);
  size_t dir_bytes = static_cast<size_t>(slot_count) * kSlotEntryBytes;
  if (kPageHeaderBytes + dir_bytes > kPageSize) {
    return InternalError("page " + std::to_string(page_id) +
                         ": slot directory overruns page");
  }
  const char* dir = bytes.data() + kPageSize - dir_bytes;
  page.slots_.resize(slot_count);
  for (uint16_t i = 0; i < slot_count; ++i) {
    uint16_t offset = GetU16(dir + static_cast<size_t>(i) * kSlotEntryBytes);
    uint16_t length =
        GetU16(dir + static_cast<size_t>(i) * kSlotEntryBytes + 2);
    if (offset == kDeadSlotOffset) continue;
    if (offset < kPageHeaderBytes ||
        static_cast<size_t>(offset) + length > kPageSize - dir_bytes) {
      return InternalError("page " + std::to_string(page_id) + ": slot " +
                           std::to_string(i) + " out of bounds");
    }
    page.slots_[i] = bytes.substr(offset, length);
    page.live_bytes_ += length;
    ++page.live_count_;
  }
  return page;
}

std::string Page::Serialize() const {
  std::string out(kPageSize, '\0');
  PutU32(&out[4], page_id_);
  PutU64(&out[8], lsn_);
  PutU16(&out[16], static_cast<uint16_t>(kind_));
  PutU16(&out[18], static_cast<uint16_t>(slots_.size()));
  size_t dir_bytes = slots_.size() * kSlotEntryBytes;
  char* dir = &out[kPageSize - dir_bytes];
  size_t heap = kPageHeaderBytes;
  for (size_t i = 0; i < slots_.size(); ++i) {
    char* entry = dir + i * kSlotEntryBytes;
    if (!slots_[i].has_value()) {
      PutU16(entry, kDeadSlotOffset);
      PutU16(entry + 2, 0);
      continue;
    }
    const std::string& record = *slots_[i];
    std::memcpy(&out[heap], record.data(), record.size());
    PutU16(entry, static_cast<uint16_t>(heap));
    PutU16(entry + 2, static_cast<uint16_t>(record.size()));
    heap += record.size();
  }
  PutU32(&out[0], wal::Crc32cMask(wal::Crc32c(out.data() + 4, kPageSize - 4)));
  return out;
}

size_t Page::UsedBytes() const {
  return kPageHeaderBytes + live_bytes_ + slots_.size() * kSlotEntryBytes;
}

size_t Page::FreeBytes() const {
  size_t used = UsedBytes();
  if (used >= kPageSize) return 0;
  size_t spare = kPageSize - used;
  // A record in a brand-new slot also costs a directory entry; only charge
  // it when no dead slot is available for reuse.
  bool has_dead = live_count_ < slots_.size();
  if (!has_dead) {
    if (spare < kSlotEntryBytes) return 0;
    spare -= kSlotEntryBytes;
  }
  return spare;
}

bool Page::Fits(size_t record_bytes) const {
  return record_bytes <= FreeBytes();
}

Result<uint16_t> Page::Insert(const std::string& record) {
  if (!Fits(record.size())) {
    return FailedPrecondition("page " + std::to_string(page_id_) +
                              ": record of " + std::to_string(record.size()) +
                              " bytes does not fit");
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].has_value()) {
      slots_[i] = record;
      live_bytes_ += record.size();
      ++live_count_;
      return static_cast<uint16_t>(i);
    }
  }
  slots_.push_back(record);
  live_bytes_ += record.size();
  ++live_count_;
  return static_cast<uint16_t>(slots_.size() - 1);
}

Status Page::Update(uint16_t slot, const std::string& record) {
  if (slot >= slots_.size() || !slots_[slot].has_value()) {
    return NotFound("page " + std::to_string(page_id_) + ": no record at slot " +
                    std::to_string(slot));
  }
  size_t old_size = slots_[slot]->size();
  if (record.size() > old_size &&
      record.size() - old_size > kPageSize - UsedBytes()) {
    return FailedPrecondition("page " + std::to_string(page_id_) +
                              ": updated record does not fit");
  }
  live_bytes_ += record.size() - old_size;
  slots_[slot] = record;
  return OkStatus();
}

Status Page::Erase(uint16_t slot) {
  if (slot >= slots_.size() || !slots_[slot].has_value()) {
    return NotFound("page " + std::to_string(page_id_) + ": no record at slot " +
                    std::to_string(slot));
  }
  live_bytes_ -= slots_[slot]->size();
  --live_count_;
  slots_[slot].reset();
  // Trim trailing dead slots so a page emptied and refilled does not keep
  // paying directory entries forever.
  while (!slots_.empty() && !slots_.back().has_value()) slots_.pop_back();
  return OkStatus();
}

Result<const std::string*> Page::Read(uint16_t slot) const {
  if (slot >= slots_.size() || !slots_[slot].has_value()) {
    return NotFound("page " + std::to_string(page_id_) + ": no record at slot " +
                    std::to_string(slot));
  }
  return &*slots_[slot];
}

std::vector<uint16_t> Page::LiveSlots() const {
  std::vector<uint16_t> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].has_value()) out.push_back(static_cast<uint16_t>(i));
  }
  return out;
}

}  // namespace storage
}  // namespace caddb

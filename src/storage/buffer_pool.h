#ifndef CADDB_STORAGE_BUFFER_POOL_H_
#define CADDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/file_manager.h"
#include "storage/page.h"
#include "util/result.h"

namespace caddb {
namespace storage {

struct BufferPoolOptions {
  /// Frames resident before eviction starts. The pool overcommits rather
  /// than fail when every frame is pinned.
  size_t capacity = 256;

  /// WAL coupling (the flushed-LSN rule): a dirty page whose lsn is beyond
  /// the durable WAL prefix must not reach disk, or a crash could leave page
  /// state the log cannot explain. `flushed_lsn` reports the durable
  /// watermark; `ensure_flushed` forces the WAL out to at least `lsn`.
  /// Null callbacks mean "no WAL" — flush freely (non-durable databases).
  std::function<uint64_t()> flushed_lsn;
  std::function<Status(uint64_t lsn)> ensure_flushed;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_evictions = 0;  // evictions that needed a flush first
  uint64_t flushes = 0;          // physical page writes issued by the pool
  uint64_t overcommits = 0;      // frames added beyond capacity (all pinned)
  size_t pages = 0;              // resident frames
  size_t capacity = 0;
  size_t pinned = 0;
  size_t dirty = 0;
};

/// Page cache between the heap and the file: pin/unpin, dirty tracking, and
/// clock eviction that prefers clean victims and honors the WAL rule before
/// writing a dirty one. Frames are heap-allocated so a returned Page* stays
/// valid while pinned, even as the frame table rehashes.
///
/// The pool's own mutex protects its tables and counters; the *contents* of
/// a fetched Page are the caller's to synchronize (the database store gate
/// serializes all page mutation).
class BufferPool {
 public:
  BufferPool(FileManager* files, BufferPoolOptions options)
      : files_(files), options_(std::move(options)) {}

  /// Returns the page pinned (pin count +1). Misses read from the file; an
  /// all-zero image materializes as an empty slotted page (fresh hole).
  Result<Page*> Fetch(uint32_t page_id);

  /// Allocates a brand-new page, resident, pinned, and dirty.
  Result<Page*> Create(PageKind kind);

  /// Extra pin on an already-resident page.
  Status Pin(uint32_t page_id);
  void Unpin(uint32_t page_id);
  void MarkDirty(uint32_t page_id);

  /// Flushes one dirty page (WAL rule first), leaving it resident and clean.
  Status FlushPage(uint32_t page_id);
  Status FlushAll();

  /// Drops a frame (freed page). The frame must be unpinned or singly
  /// pinned by the caller; its content is discarded, not flushed.
  void Drop(uint32_t page_id);

  BufferPoolStats stats() const;

 private:
  struct Frame {
    explicit Frame(Page p) : page(std::move(p)) {}
    Page page;
    int pins = 0;
    bool dirty = false;
    bool ref = false;  // clock second-chance bit
  };

  /// Makes room for one more frame if at capacity. Called with mu_ held.
  Status EvictForSpaceLocked();
  Status FlushFrameLocked(uint32_t page_id, Frame* frame);

  FileManager* files_;
  BufferPoolOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<uint32_t, std::unique_ptr<Frame>> frames_;
  std::vector<uint32_t> clock_;  // may hold stale ids; skipped on sweep
  size_t hand_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t dirty_evictions_ = 0;
  uint64_t flushes_ = 0;
  uint64_t overcommits_ = 0;
};

}  // namespace storage
}  // namespace caddb

#endif  // CADDB_STORAGE_BUFFER_POOL_H_

#ifndef CADDB_ANALYSIS_DISK_VERIFIER_H_
#define CADDB_ANALYSIS_DISK_VERIFIER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "util/result.h"

namespace caddb {
namespace analysis {

/// Offline disk verifier: `caddb check disk` without opening the database
/// for writes. Walks every on-disk artifact of a database (or replica)
/// directory — pages.db, WAL segments, checkpoint files, MANIFEST,
/// QUARANTINE, stale temp files — and cross-checks them against each other,
/// reporting findings as stable CAD3xx diagnostics (see CodeRegistry()).
///
/// Severity policy: states that recovery provably heals on the next
/// writable open (a torn WAL tail, a torn in-place page write covered by
/// the newest checkpoint's double-write image, crashed-rotation artifacts,
/// stale *.tmp debris) are warnings; states recovery cannot heal — or would
/// silently lose committed data over — are errors. A directory produced by
/// a crash at ANY write boundary therefore verifies with zero errors.
///
/// Logical audits (slot directories, records, overflow chains, the derived
/// surrogate directory) run on the *healed* view: the newest usable
/// checkpoint's page images overlaid on the raw file, exactly what a
/// writable open would reconstruct.
///
/// Repairs (`--fix`) go through a plan -> guard -> apply -> re-verify
/// pipeline and are restricted to four guarded classes:
///
///   fix-wal-tail    truncate a torn tail segment to its valid frame
///                   prefix. Guard: the segment is the chain's effective
///                   tail and no CRC-valid frame exists past the damage.
///   fix-page-tail   truncate pages.db to a whole-page multiple. Guard:
///                   a partial tail page can never parse; a writable open
///                   performs the same trim.
///   fix-orphan-page zero an orphaned overflow page (reclaiming it as a
///                   freelist hole). Guard: the page parses as kOverflow
///                   and is unreachable from every chain head on the
///                   healed view — LoadAll refuses to open around it.
///   fix-stale-tmp   remove "*.tmp" atomic-publish debris.
///
/// Anything ambiguous stays a diagnostic; without `fix` the plan is only
/// printed (dry run). After applying, the verifier re-runs from scratch
/// and reports the post-fix state.
struct DiskVerifyOptions {
  /// Apply the guarded repair plan (default: dry run — print it only).
  bool fix = false;
};

/// One entry of the repair plan.
struct RepairAction {
  std::string kind;         // "fix-wal-tail", "fix-page-tail", ...
  std::string code;         // the CAD3xx finding this repairs
  std::string description;  // human-readable, names the file/page
  bool applied = false;     // set when --fix actually performed it
};

struct DiskVerifyReport {
  DiagnosticBag diagnostics;
  std::vector<RepairAction> plan;
  bool fix_applied = false;
  /// Findings of the re-verification run after repairs were applied
  /// (empty bag when nothing was applied).
  DiagnosticBag post_fix;

  // Coverage counters, so "clean" is distinguishable from "looked at
  // nothing".
  uint64_t pages_scanned = 0;
  uint64_t segments_scanned = 0;
  uint64_t checkpoints_scanned = 0;
  bool manifest_present = false;

  /// The surrogate -> (page id, slot) directory re-derived from raw pages
  /// on the healed view (slot 0xFFFF = overflow chain head). A live
  /// PagedHeap's DirectorySnapshot() must equal this immediately after a
  /// checkpoint.
  std::map<uint64_t, std::pair<uint32_t, uint16_t>> directory;

  /// True when no finding is an error (warnings allowed — they are
  /// heal-on-open states by the severity policy above).
  bool Clean() const { return !diagnostics.HasErrors(); }

  std::string RenderText() const;
  std::string RenderJson() const;
};

/// Verifies every artifact under `dir`. Fails (the Result) only when the
/// directory itself cannot be walked — every finding about its content is
/// a diagnostic, not an error status.
Result<DiskVerifyReport> VerifyDiskArtifacts(const std::string& dir,
                                             const DiskVerifyOptions& options);

}  // namespace analysis
}  // namespace caddb

#endif  // CADDB_ANALYSIS_DISK_VERIFIER_H_

#include "analysis/disk_verifier.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <sstream>

#include "replication/manifest.h"
#include "storage/file_manager.h"
#include "storage/heap_record.h"
#include "storage/page.h"
#include "storage/paged_heap.h"
#include "wal/checkpoint.h"
#include "wal/crc32c.h"
#include "wal/log_io.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace caddb {
namespace analysis {

namespace fs = std::filesystem;

namespace {

constexpr char kQuarantineFileName[] = "QUARANTINE";

/// A RepairAction plus what applying it actually takes. Guards are
/// evaluated while planning; destructive applications re-check them
/// against the file's current bytes first.
struct PlannedFix {
  enum class Op { kTruncateWalTail, kTruncatePageTail, kZeroPage, kRemoveTmp };
  RepairAction action;
  Op op;
  std::string path;
  uint64_t truncate_to = 0;  // kTruncateWalTail / kTruncatePageTail
  uint32_t page_id = 0;      // kZeroPage
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Everything one verification pass derives, shared across the passes so
/// the cross-artifact invariants can see all single-artifact results.
struct VerifyPass {
  std::string dir;
  DiagnosticBag bag;
  std::vector<PlannedFix> fixes;

  uint64_t pages_scanned = 0;
  uint64_t segments_scanned = 0;
  uint64_t checkpoints_scanned = 0;
  bool manifest_present = false;

  /// Newest checkpoint that parses and CRC-verifies; lsn 0 / format 0 when
  /// the directory has none (same convention as ReadNewestCheckpoint).
  wal::LoadedCheckpoint newest;
  /// Newest lsn the checkpoint lets the scan skip (recovery's replay_floor).
  uint64_t replay_floor = 0;
  /// max(newest checkpoint lsn, last valid WAL frame lsn): no durable page
  /// may claim an lsn beyond this.
  uint64_t durable_horizon = 0;

  std::map<uint64_t, std::pair<uint32_t, uint16_t>> directory;
};

void Report(VerifyPass* pass, const char* code, Severity severity,
            std::string message, std::string entity) {
  pass->bag.Add(code, severity, std::move(message), SourceLoc{},
                std::move(entity));
}

// ---- Pass A: checkpoint files ----

void AuditCheckpoints(VerifyPass* pass) {
  std::vector<wal::CheckpointFileInfo> infos = wal::ListCheckpoints(pass->dir);
  for (const wal::CheckpointFileInfo& info : infos) {
    ++pass->checkpoints_scanned;
    const std::string name = fs::path(info.path).filename().string();
    Result<wal::LoadedCheckpoint> loaded = wal::ReadCheckpointFile(info);
    if (!loaded.ok()) {
      // AtomicWriteFile makes checkpoint publication all-or-nothing, so a
      // damaged file is bit rot or a partial copy, never crash debris —
      // and recovery will skip it, possibly replaying from an older (or
      // no) snapshot.
      Report(pass, "CAD315", Severity::kError, loaded.status().message(),
             name);
      continue;
    }
    if (loaded->format == 3) {
      if (loaded->replay_from > loaded->lsn) {
        Report(pass, "CAD316", Severity::kError,
               "replay floor " + std::to_string(loaded->replay_from) +
                   " lies past the cover lsn " + std::to_string(loaded->lsn),
               name);
      }
      for (const auto& [page_id, image] : loaded->pages) {
        std::string where =
            name + " image of page " + std::to_string(page_id);
        if (image.size() != storage::kPageSize) {
          Report(pass, "CAD317", Severity::kError,
                 "page image is " + std::to_string(image.size()) +
                     " bytes, want " + std::to_string(storage::kPageSize),
                 where);
          continue;
        }
        Result<storage::Page::RawHeader> header =
            storage::Page::PeekHeader(image);
        if (storage::Page::IsAllZero(image)) continue;  // freed-page image
        if (!header->crc_ok) {
          Report(pass, "CAD317", Severity::kError,
                 "page image fails its checksum", where);
        } else if (header->stored_id != page_id) {
          Report(pass, "CAD317", Severity::kError,
                 "page image claims page id " +
                     std::to_string(header->stored_id),
                 where);
        } else if (header->lsn > loaded->lsn) {
          Report(pass, "CAD317", Severity::kError,
                 "page image lsn " + std::to_string(header->lsn) +
                     " is beyond the checkpoint's cover lsn " +
                     std::to_string(loaded->lsn),
                 where);
        }
      }
    }
    pass->newest = std::move(*loaded);  // ascending order: last ok wins
  }
  // Recovery's replay floor: a v3 checkpoint captured under an in-flight
  // transaction must keep records from that transaction's begin lsn.
  pass->replay_floor =
      (pass->newest.format == 3 && pass->newest.replay_from != 0 &&
       pass->newest.replay_from <= pass->newest.lsn)
          ? pass->newest.replay_from - 1
          : pass->newest.lsn;
}

// ---- Pass B: WAL segment chain ----

void AuditWal(VerifyPass* pass) {
  struct LoadedSegment {
    wal::SegmentFileInfo info;
    std::string name;
    std::string data;
    wal::SegmentContents contents;
  };
  std::vector<LoadedSegment> segments;
  for (const wal::SegmentFileInfo& info : wal::ListSegments(pass->dir)) {
    Result<std::string> data = wal::ReadFileToString(info.path);
    const std::string name = fs::path(info.path).filename().string();
    if (!data.ok()) {
      Report(pass, "CAD311", Severity::kError, data.status().message(), name);
      continue;
    }
    LoadedSegment seg;
    seg.info = info;
    seg.name = name;
    seg.data = std::move(*data);
    seg.contents = wal::DecodeFrames(seg.data);
    segments.push_back(std::move(seg));
    ++pass->segments_scanned;
  }

  // Torn-tail classification. Recovery trusts the chain up to the first
  // torn segment, provided everything after it is an empty
  // crashed-rotation artifact; anything else strands committed records.
  size_t scan_limit = segments.size();
  for (size_t i = 0; i < segments.size(); ++i) {
    const LoadedSegment& seg = segments[i];
    if (seg.contents.tail_error.empty()) continue;
    bool later_records = false;
    for (size_t j = i + 1; j < segments.size(); ++j) {
      if (!segments[j].contents.frames.empty()) later_records = true;
    }
    bool stranded =
        wal::HasValidFrameAfter(seg.data, seg.contents.bytes_scanned);
    if (later_records || stranded) {
      Report(pass, "CAD311", Severity::kError,
             seg.contents.tail_error +
                 (later_records ? "; later segments still hold records"
                                : "; decodable frames survive past the "
                                  "damage") +
                 " — committed data is stranded",
             seg.name);
    } else {
      // The guarded repair: nothing decodable exists past the valid
      // prefix, so truncating to it is exactly what recovery's trust
      // boundary already does.
      Report(pass, "CAD312", Severity::kWarning,
             seg.contents.tail_error + "; valid prefix is " +
                 std::to_string(seg.contents.bytes_scanned) + " of " +
                 std::to_string(seg.data.size()) + " bytes",
             seg.name);
      PlannedFix fix;
      fix.op = PlannedFix::Op::kTruncateWalTail;
      fix.path = seg.info.path;
      fix.truncate_to = seg.contents.bytes_scanned;
      fix.action.kind = "fix-wal-tail";
      fix.action.code = "CAD312";
      fix.action.description = "truncate " + seg.name + " to its " +
                               std::to_string(seg.contents.bytes_scanned) +
                               "-byte valid frame prefix";
      pass->fixes.push_back(std::move(fix));
    }
    scan_limit = i + 1;
    break;
  }

  // Seam continuity across the trusted prefix of the chain: a non-final
  // segment must end exactly one lsn before its successor starts (an
  // empty segment "ends" at start - 1).
  for (size_t i = 0; i + 1 < scan_limit; ++i) {
    const LoadedSegment& seg = segments[i];
    uint64_t end_lsn = seg.contents.frames.empty()
                           ? seg.info.start_lsn - 1
                           : seg.contents.frames.back().lsn;
    if (end_lsn + 1 != segments[i + 1].info.start_lsn) {
      Report(pass, "CAD313", Severity::kError,
             "ends at lsn " + std::to_string(end_lsn) + " but " +
                 segments[i + 1].name + " starts at lsn " +
                 std::to_string(segments[i + 1].info.start_lsn),
             seg.name);
    }
  }

  // In-chain lsn order (strictly increasing; gaps are legal — rotation
  // compaction drops aborted transactions' payload records) and payload
  // decodability past the replay floor.
  uint64_t prev_lsn = 0;
  uint64_t max_lsn = 0;
  for (size_t i = 0; i < scan_limit; ++i) {
    const LoadedSegment& seg = segments[i];
    for (const wal::Frame& frame : seg.contents.frames) {
      if (prev_lsn != 0 && frame.lsn <= prev_lsn) {
        Report(pass, "CAD313", Severity::kError,
               "lsn went backwards (" + std::to_string(frame.lsn) +
                   " after " + std::to_string(prev_lsn) + ")",
               seg.name);
      }
      prev_lsn = frame.lsn;
      max_lsn = std::max(max_lsn, frame.lsn);
      if (frame.lsn > pass->replay_floor) {
        Result<wal::Record> record = wal::Record::Decode(frame.payload);
        if (!record.ok()) {
          // The frame's CRC matched, so this is not a crash artifact:
          // replay will fail loudly on it.
          Report(pass, "CAD314", Severity::kError,
                 "lsn " + std::to_string(frame.lsn) + ": " +
                     record.status().message(),
                 seg.name);
        }
      }
    }
  }

  // Cross-artifact: the records the checkpoint does NOT cover must still
  // be on disk.
  if (!segments.empty() && pass->replay_floor != 0 &&
      segments.front().info.start_lsn > pass->replay_floor + 1) {
    Report(pass, "CAD318", Severity::kError,
           "replay needs lsn " + std::to_string(pass->replay_floor + 1) +
               " (checkpoint lsn " + std::to_string(pass->newest.lsn) +
               ") but the oldest segment starts at lsn " +
               std::to_string(segments.front().info.start_lsn),
           segments.front().name);
  }
  pass->durable_horizon = std::max(pass->newest.lsn, max_lsn);
}

// ---- Pass C: pages.db on the healed view ----

/// First line of an object payload is "obj <surrogate> ..."; the record key
/// must agree with it.
bool PayloadSurrogate(const std::string& payload, uint64_t* id) {
  unsigned long long value = 0;
  if (std::sscanf(payload.c_str(), "obj %llu", &value) != 1) return false;
  *id = value;
  return true;
}

void AuditPages(VerifyPass* pass) {
  namespace hr = storage::heap_record;
  const std::string path =
      (fs::path(pass->dir) / storage::kPageFileName).string();

  storage::FileManagerOptions fm_options;
  fm_options.read_only = true;
  Result<std::unique_ptr<storage::FileManager>> fm_or =
      storage::FileManager::Open(path, fm_options);
  if (!fm_or.ok()) {
    Report(pass, "CAD310", Severity::kError, fm_or.status().message(),
           storage::kPageFileName);
    return;
  }
  storage::FileManager* fm = fm_or->get();
  Result<uint64_t> size_or = fm->FileSizeBytes();
  if (!size_or.ok()) {
    Report(pass, "CAD310", Severity::kError, size_or.status().message(),
           storage::kPageFileName);
    return;
  }
  const uint64_t file_bytes = *size_or;
  if (file_bytes % storage::kPageSize != 0) {
    // A crash mid-append left a partial tail page. It can never parse and
    // a writable open performs the identical trim, so truncation is safe.
    uint64_t keep = file_bytes - (file_bytes % storage::kPageSize);
    Report(pass, "CAD310", Severity::kWarning,
           "file is " + std::to_string(file_bytes) +
               " bytes — not a multiple of the " +
               std::to_string(storage::kPageSize) + "-byte page size",
           storage::kPageFileName);
    PlannedFix fix;
    fix.op = PlannedFix::Op::kTruncatePageTail;
    fix.path = path;
    fix.truncate_to = keep;
    fix.action.kind = "fix-page-tail";
    fix.action.code = "CAD310";
    fix.action.description =
        std::string(storage::kPageFileName) + ": truncate the " +
        std::to_string(file_bytes % storage::kPageSize) +
        "-byte partial tail page";
    pass->fixes.push_back(std::move(fix));
  }
  const uint32_t file_pages =
      static_cast<uint32_t>(file_bytes / storage::kPageSize);

  // The healed view: the newest checkpoint's double-write images take
  // precedence over the file, exactly as a writable open reconstructs it.
  // Images may also extend past EOF (a crash before phase-five in-place
  // writes) — that is normal, not corruption.
  const std::map<uint32_t, std::string>& images = pass->newest.pages;
  uint32_t total_pages = file_pages;
  for (const auto& [id, image] : images) {
    if (image.size() == storage::kPageSize && id >= total_pages) {
      total_pages = id + 1;
    }
  }

  struct OverflowNode {
    bool head = false;
    uint64_t id = 0;
    uint32_t next = hr::kNoChainPage;
  };
  std::map<uint32_t, OverflowNode> overflow;
  std::set<uint32_t> free_pages;

  for (uint32_t id = 0; id < total_pages; ++id) {
    ++pass->pages_scanned;
    const std::string entity =
        std::string(storage::kPageFileName) + " page " + std::to_string(id);
    std::string raw;
    if (id < file_pages) {
      Result<std::string> raw_or = fm->ReadPage(id);
      if (!raw_or.ok()) {
        Report(pass, "CAD301", Severity::kError, raw_or.status().message(),
               entity);
        continue;
      }
      raw = std::move(*raw_or);
    } else {
      raw.assign(storage::kPageSize, '\0');
    }

    auto image_it = images.find(id);
    const bool healed_by_image =
        image_it != images.end() &&
        image_it->second.size() == storage::kPageSize;

    // Raw-layer audit of the file's own bytes. A page the newest
    // checkpoint carries an image of is allowed to be torn — the crash
    // landed mid-phase-five and the image heals it on open.
    if (id < file_pages && !storage::Page::IsAllZero(raw)) {
      Result<storage::Page::RawHeader> header = storage::Page::PeekHeader(raw);
      if (!header->crc_ok) {
        Report(pass, "CAD301",
               healed_by_image ? Severity::kWarning : Severity::kError,
               std::string("page checksum mismatch") +
                   (healed_by_image
                        ? " (torn in-place write; healed from the newest "
                          "checkpoint's image on open)"
                        : " and no checkpoint image covers the page"),
               entity);
        if (!healed_by_image) continue;
      } else if (header->stored_id != id) {
        Report(pass, "CAD302",
               healed_by_image ? Severity::kWarning : Severity::kError,
               "header claims page id " + std::to_string(header->stored_id) +
                   (healed_by_image ? " (healed from the newest checkpoint's "
                                      "image on open)"
                                    : ""),
               entity);
        if (!healed_by_image) continue;
      }
    }

    const std::string& healed = healed_by_image ? image_it->second : raw;
    if (storage::Page::IsAllZero(healed)) {
      free_pages.insert(id);
      continue;
    }
    Result<storage::Page> page = storage::Page::Parse(id, healed);
    if (!page.ok()) {
      if (healed_by_image) continue;  // already reported as CAD317
      Report(pass, "CAD303", Severity::kError, page.status().message(),
             entity);
      continue;
    }
    if (page->lsn() > pass->durable_horizon) {
      Report(pass, "CAD309", Severity::kError,
             "page lsn " + std::to_string(page->lsn()) +
                 " is beyond the durable horizon " +
                 std::to_string(pass->durable_horizon) +
                 " — the log covering it is gone",
             entity);
    }

    // Slot-directory byte audit: Parse bounds each slot, but two live
    // slots may still overlap each other (or the header/record heap of a
    // hand-corrupted page). Verify the packing byte-exactly.
    Result<std::vector<std::pair<uint16_t, uint16_t>>> dir_or =
        storage::Page::RawSlotDirectory(healed);
    std::vector<std::pair<uint16_t, uint16_t>> live_extents;
    if (dir_or.ok()) {
      for (const auto& [offset, length] : *dir_or) {
        if (offset == storage::kDeadSlotOffset) continue;
        live_extents.emplace_back(offset, length);
      }
    }
    std::sort(live_extents.begin(), live_extents.end());
    for (size_t i = 0; i + 1 < live_extents.size(); ++i) {
      if (static_cast<size_t>(live_extents[i].first) +
              live_extents[i].second >
          live_extents[i + 1].first) {
        Report(pass, "CAD303", Severity::kError,
               "live slots overlap at offset " +
                   std::to_string(live_extents[i + 1].first),
               entity);
        break;
      }
    }

    switch (page->kind()) {
      case storage::PageKind::kFree:
        if (page->live_records() > 0) {
          Report(pass, "CAD308", Severity::kError,
                 "free page still holds " +
                     std::to_string(page->live_records()) +
                     " live record(s)",
                 entity);
        } else {
          free_pages.insert(id);
        }
        break;
      case storage::PageKind::kSlotted:
        for (uint16_t slot : page->LiveSlots()) {
          const std::string& record = **page->Read(slot);
          const std::string where = entity + " slot " + std::to_string(slot);
          if (record.size() < hr::kDataHeaderBytes) {
            Report(pass, "CAD304", Severity::kError,
                   "record of " + std::to_string(record.size()) +
                       " bytes is shorter than its header",
                   where);
            continue;
          }
          uint64_t object = hr::GetU64(record.data());
          uint64_t payload_id = 0;
          if (!PayloadSurrogate(record.substr(hr::kDataHeaderBytes),
                                &payload_id)) {
            Report(pass, "CAD304", Severity::kError,
                   "record payload is not an encoded object", where);
          } else if (payload_id != object) {
            Report(pass, "CAD304", Severity::kError,
                   "record is keyed @" + std::to_string(object) +
                       " but its payload encodes @" +
                       std::to_string(payload_id),
                   where);
          }
          auto [it, inserted] =
              pass->directory.emplace(object, std::make_pair(id, slot));
          if (!inserted) {
            Report(pass, "CAD307", Severity::kError,
                   "object @" + std::to_string(object) +
                       " already has a live record on page " +
                       std::to_string(it->second.first) + " slot " +
                       std::to_string(it->second.second),
                   where);
          }
        }
        break;
      case storage::PageKind::kOverflow: {
        std::vector<uint16_t> slots = page->LiveSlots();
        if (slots.size() != 1) {
          Report(pass, "CAD303", Severity::kError,
                 "overflow page holds " + std::to_string(slots.size()) +
                     " records, want exactly 1",
                 entity);
          break;
        }
        const std::string& record = **page->Read(slots[0]);
        hr::OverflowView view;
        if (!hr::ParseOverflow(record, &view)) {
          Report(pass, "CAD304", Severity::kError,
                 "overflow record of " + std::to_string(record.size()) +
                     " bytes is shorter than its header",
                 entity);
          break;
        }
        overflow[id] = OverflowNode{view.head, view.id, view.next};
        break;
      }
    }
  }

  // Overflow chains: walk every head, verifying each hop stays inside the
  // overflow population, keeps the object id, never revisits a page and
  // never re-enters a head.
  std::set<uint32_t> reachable;
  for (const auto& [head_page, node] : overflow) {
    if (!node.head) continue;
    const std::string chain =
        "overflow chain of @" + std::to_string(node.id) + " (head page " +
        std::to_string(head_page) + ")";
    auto [it, inserted] = pass->directory.emplace(
        node.id,
        std::make_pair(head_page, storage::PagedHeap::kOverflowSlotPublic));
    if (!inserted) {
      Report(pass, "CAD307", Severity::kError,
             "object @" + std::to_string(node.id) +
                 " already has a live record on page " +
                 std::to_string(it->second.first),
             chain);
      continue;
    }
    reachable.insert(head_page);
    uint32_t next = node.next;
    std::set<uint32_t> visited{head_page};
    while (next != hr::kNoChainPage) {
      if (visited.count(next) != 0) {
        Report(pass, "CAD305", Severity::kError,
               "chain cycles back to page " + std::to_string(next), chain);
        break;
      }
      if (free_pages.count(next) != 0) {
        Report(pass, "CAD308", Severity::kError,
               "chain links to free page " + std::to_string(next), chain);
        break;
      }
      auto node_it = overflow.find(next);
      if (node_it == overflow.end()) {
        Report(pass, "CAD305", Severity::kError,
               "chain links to page " + std::to_string(next) +
                   ", which is not an overflow page",
               chain);
        break;
      }
      if (node_it->second.head) {
        Report(pass, "CAD305", Severity::kError,
               "chain runs into page " + std::to_string(next) +
                   ", the head of another chain",
               chain);
        break;
      }
      if (node_it->second.id != node.id) {
        Report(pass, "CAD305", Severity::kError,
               "page " + std::to_string(next) + " belongs to @" +
                   std::to_string(node_it->second.id),
               chain);
        break;
      }
      visited.insert(next);
      reachable.insert(next);
      next = node_it->second.next;
    }
  }
  for (const auto& [page_id, node] : overflow) {
    if (node.head || reachable.count(page_id) != 0) continue;
    // LoadAll refuses to open a store around an orphan, so this is an
    // error — but reclamation is provably safe: nothing reaches the page,
    // so zeroing it only returns a hole to the freelist.
    const std::string entity = std::string(storage::kPageFileName) +
                               " page " + std::to_string(page_id);
    Report(pass, "CAD306", Severity::kError,
           "overflow page (claims @" + std::to_string(node.id) +
               ") is unreachable from every chain head — the store "
               "refuses to open around it",
           entity);
    PlannedFix fix;
    fix.op = PlannedFix::Op::kZeroPage;
    fix.path = path;
    fix.page_id = page_id;
    fix.action.kind = "fix-orphan-page";
    fix.action.code = "CAD306";
    fix.action.description = "zero orphaned overflow page " +
                             std::to_string(page_id) +
                             " (reclaim as a freelist hole)";
    pass->fixes.push_back(std::move(fix));
  }
}

// ---- Pass D: MANIFEST / replica artifacts ----

void AuditManifest(VerifyPass* pass) {
  const std::string path =
      (fs::path(pass->dir) / replication::kManifestFileName).string();
  Result<std::string> text = wal::ReadFileToString(path);
  if (!text.ok()) {
    if (text.status().code() == Code::kNotFound) return;  // primary dir
    pass->manifest_present = true;
    Report(pass, "CAD320", Severity::kError, text.status().message(),
           replication::kManifestFileName);
    return;
  }
  pass->manifest_present = true;
  Result<replication::Manifest> manifest =
      replication::Manifest::Decode(*text);
  if (!manifest.ok()) {
    Report(pass, "CAD320", Severity::kError, manifest.status().message(),
           replication::kManifestFileName);
    return;
  }
  Status valid = manifest->Validate();
  if (!valid.ok()) {
    Report(pass, "CAD320", Severity::kError, valid.message(),
           replication::kManifestFileName);
    return;
  }

  // Each named artifact must exist with (at least) the shipped prefix and
  // the prefix must match its CRC. The checkpoint and page file are
  // shipped whole, segments as valid-frame prefixes of the live tail.
  auto check_artifact = [&](const std::string& file, uint64_t bytes,
                            uint32_t crc, bool exact) {
    Result<std::string> content =
        wal::ReadFileToString((fs::path(pass->dir) / file).string());
    if (!content.ok()) {
      Report(pass, "CAD321", Severity::kError, content.status().message(),
             replication::kManifestFileName);
      return;
    }
    if (content->size() < bytes || (exact && content->size() != bytes)) {
      Report(pass, "CAD321", Severity::kError,
             file + " is " + std::to_string(content->size()) +
                 " bytes, manifest shipped " + std::to_string(bytes),
             replication::kManifestFileName);
      return;
    }
    if (wal::Crc32c(content->data(), bytes) != crc) {
      Report(pass, "CAD321", Severity::kError,
             file + ": shipped prefix fails the manifest's crc",
             replication::kManifestFileName);
    }
  };
  check_artifact(manifest->checkpoint.file, manifest->checkpoint.bytes,
                 manifest->checkpoint.crc, /*exact=*/true);
  if (manifest->pagefile.present) {
    check_artifact(manifest->pagefile.file, manifest->pagefile.bytes,
                   manifest->pagefile.crc, /*exact=*/true);
  }
  for (const replication::ManifestSegment& segment : manifest->segments) {
    check_artifact(segment.file, segment.bytes, segment.crc,
                   /*exact=*/false);
  }

  // Cross-artifact: the staged checkpoint the manifest anchors on must
  // agree with the manifest's own lsn and generation.
  wal::CheckpointFileInfo info;
  info.path = (fs::path(pass->dir) / manifest->checkpoint.file).string();
  info.lsn = manifest->checkpoint.lsn;
  Result<wal::LoadedCheckpoint> staged = wal::ReadCheckpointFile(info);
  if (staged.ok()) {
    if (staged->generation != manifest->generation) {
      Report(pass, "CAD319", Severity::kError,
             "manifest claims generation " +
                 std::to_string(manifest->generation) +
                 " but the staged checkpoint was written in generation " +
                 std::to_string(staged->generation),
             replication::kManifestFileName);
    }
    if (manifest->seq == 0) {
      Report(pass, "CAD319", Severity::kError,
             "manifest seq 0 can never be applied (followers ignore "
             "seq <= last applied)",
             replication::kManifestFileName);
    }
  }
  // An unreadable staged checkpoint was already reported by check_artifact
  // / the checkpoint pass (the shipped file shares the directory).
}

// ---- Pass E: quarantine + temp debris ----

void AuditDirectoryDebris(VerifyPass* pass) {
  const fs::path quarantine = fs::path(pass->dir) / kQuarantineFileName;
  std::error_code ec;
  if (fs::exists(quarantine, ec)) {
    Result<std::string> verdict = wal::ReadFileToString(quarantine.string());
    std::string detail = verdict.ok() ? *verdict : std::string();
    size_t eol = detail.find('\n');
    if (eol != std::string::npos) detail.resize(eol);
    Report(pass, "CAD322", Severity::kWarning,
           detail.empty() ? "replica carries a persisted divergence verdict"
                          : detail,
           kQuarantineFileName);
  }

  std::vector<std::string> stale;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(pass->dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale.push_back(name);
    }
  }
  std::sort(stale.begin(), stale.end());
  for (const std::string& name : stale) {
    Report(pass, "CAD323", Severity::kWarning,
           "stale temp file — debris of an interrupted atomic publish",
           name);
    PlannedFix fix;
    fix.op = PlannedFix::Op::kRemoveTmp;
    fix.path = (fs::path(pass->dir) / name).string();
    fix.action.kind = "fix-stale-tmp";
    fix.action.code = "CAD323";
    fix.action.description = "remove stale temp file " + name;
    pass->fixes.push_back(std::move(fix));
  }
}

void RunPasses(const std::string& dir, VerifyPass* pass) {
  pass->dir = dir;
  AuditCheckpoints(pass);
  AuditWal(pass);
  AuditPages(pass);
  AuditManifest(pass);
  AuditDirectoryDebris(pass);
  pass->bag.Sort();
}

// ---- Apply ----

Status ApplyFix(PlannedFix* fix) {
  switch (fix->op) {
    case PlannedFix::Op::kTruncateWalTail: {
      // Re-check the guard against the file's current bytes: the valid
      // prefix must still end where the plan said and nothing decodable
      // may live past it.
      CADDB_ASSIGN_OR_RETURN(std::string data,
                             wal::ReadFileToString(fix->path));
      wal::SegmentContents contents = wal::DecodeFrames(data);
      if (contents.tail_error.empty() ||
          contents.bytes_scanned != fix->truncate_to ||
          wal::HasValidFrameAfter(data, contents.bytes_scanned)) {
        return FailedPrecondition(
            "segment changed since planning; refusing to truncate");
      }
      if (::truncate(fix->path.c_str(),
                     static_cast<off_t>(fix->truncate_to)) != 0) {
        return InternalError("truncate '" + fix->path +
                             "': " + std::strerror(errno));
      }
      return OkStatus();
    }
    case PlannedFix::Op::kTruncatePageTail: {
      struct stat st;
      if (::stat(fix->path.c_str(), &st) != 0) {
        return InternalError("stat '" + fix->path +
                             "': " + std::strerror(errno));
      }
      if (static_cast<uint64_t>(st.st_size) % storage::kPageSize == 0 ||
          static_cast<uint64_t>(st.st_size) -
                  (static_cast<uint64_t>(st.st_size) % storage::kPageSize) !=
              fix->truncate_to) {
        return FailedPrecondition(
            "page file changed since planning; refusing to truncate");
      }
      if (::truncate(fix->path.c_str(),
                     static_cast<off_t>(fix->truncate_to)) != 0) {
        return InternalError("truncate '" + fix->path +
                             "': " + std::strerror(errno));
      }
      return OkStatus();
    }
    case PlannedFix::Op::kZeroPage: {
      int fd = ::open(fix->path.c_str(), O_RDWR);
      if (fd < 0) {
        return InternalError("open '" + fix->path +
                             "': " + std::strerror(errno));
      }
      std::string zeros(storage::kPageSize, '\0');
      size_t done = 0;
      while (done < zeros.size()) {
        ssize_t n = ::pwrite(
            fd, zeros.data() + done, zeros.size() - done,
            static_cast<off_t>(fix->page_id) * storage::kPageSize + done);
        if (n < 0) {
          if (errno == EINTR) continue;
          Status s = InternalError("pwrite '" + fix->path +
                                   "': " + std::strerror(errno));
          ::close(fd);
          return s;
        }
        done += static_cast<size_t>(n);
      }
      if (::fsync(fd) != 0) {
        Status s = InternalError("fsync '" + fix->path +
                                 "': " + std::strerror(errno));
        ::close(fd);
        return s;
      }
      ::close(fd);
      return OkStatus();
    }
    case PlannedFix::Op::kRemoveTmp: {
      std::error_code ec;
      fs::remove(fix->path, ec);
      if (ec) {
        return InternalError("remove '" + fix->path + "': " + ec.message());
      }
      return OkStatus();
    }
  }
  return InternalError("unhandled repair kind");
}

}  // namespace

std::string DiskVerifyReport::RenderText() const {
  std::ostringstream out;
  out << "scanned: " << pages_scanned << " page(s), " << segments_scanned
      << " wal segment(s), " << checkpoints_scanned << " checkpoint(s)"
      << (manifest_present ? ", manifest" : "") << "\n";
  if (!diagnostics.empty()) out << diagnostics.RenderText();
  if (!plan.empty()) {
    out << "repair plan:\n";
    for (const RepairAction& action : plan) {
      out << "  [" << (action.applied ? "applied" : "dry-run") << "] "
          << action.kind << " (" << action.code << "): " << action.description
          << "\n";
    }
  }
  if (fix_applied) {
    out << "post-fix: " << post_fix.Summary() << "\n";
  } else {
    out << "result: " << diagnostics.Summary() << "\n";
  }
  return out.str();
}

std::string DiskVerifyReport::RenderJson() const {
  std::ostringstream out;
  out << "{\"pages\":" << pages_scanned
      << ",\"segments\":" << segments_scanned
      << ",\"checkpoints\":" << checkpoints_scanned << ",\"manifest\":"
      << (manifest_present ? "true" : "false")
      << ",\"clean\":" << (Clean() ? "true" : "false")
      << ",\"report\":" << diagnostics.RenderJson() << ",\"plan\":[";
  for (size_t i = 0; i < plan.size(); ++i) {
    if (i != 0) out << ",";
    out << "{\"kind\":\"" << JsonEscape(plan[i].kind) << "\",\"code\":\""
        << JsonEscape(plan[i].code) << "\",\"description\":\""
        << JsonEscape(plan[i].description) << "\",\"applied\":"
        << (plan[i].applied ? "true" : "false") << "}";
  }
  out << "]";
  if (fix_applied) out << ",\"post_fix\":" << post_fix.RenderJson();
  out << "}";
  return out.str();
}

Result<DiskVerifyReport> VerifyDiskArtifacts(const std::string& dir,
                                             const DiskVerifyOptions& options) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return NotFound("'" + dir + "' is not a directory");
  }

  VerifyPass pass;
  RunPasses(dir, &pass);

  DiskVerifyReport report;
  report.diagnostics = std::move(pass.bag);
  report.pages_scanned = pass.pages_scanned;
  report.segments_scanned = pass.segments_scanned;
  report.checkpoints_scanned = pass.checkpoints_scanned;
  report.manifest_present = pass.manifest_present;
  report.directory = std::move(pass.directory);

  bool any_applied = false;
  for (PlannedFix& fix : pass.fixes) {
    if (options.fix) {
      Status applied = ApplyFix(&fix);
      if (applied.ok()) {
        fix.action.applied = true;
        any_applied = true;
      } else {
        report.diagnostics.Add(fix.action.code, Severity::kNote,
                               "repair skipped: " + applied.message(),
                               SourceLoc{}, fix.action.description);
      }
    }
    report.plan.push_back(fix.action);
  }
  if (any_applied) {
    // Re-verify from scratch: the repairs must leave nothing behind (and
    // must not have introduced anything).
    report.fix_applied = true;
    VerifyPass recheck;
    RunPasses(dir, &recheck);
    report.post_fix = std::move(recheck.bag);
  }
  return report;
}

}  // namespace analysis
}  // namespace caddb

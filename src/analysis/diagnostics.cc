#include "analysis/diagnostics.h"

#include <algorithm>

namespace caddb {
namespace analysis {

namespace {

int SeverityRank(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return 0;
    case Severity::kWarning:
      return 1;
    case Severity::kNote:
      return 2;
  }
  return 3;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(c >> 4) & 0xf]);
          out->push_back(kHex[c & 0xf]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string Plural(size_t n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

const std::vector<DiagnosticCodeInfo>& CodeRegistry() {
  // The one authoritative table of diagnostic codes. DESIGN.md's rendered
  // tables and every analyzer emission are checked against it in
  // analysis_test — adding a code means adding it here (append-only) and in
  // DESIGN.md, or the suite fails.
  static const std::vector<DiagnosticCodeInfo> kRegistry = {
      {"CAD001", "inheritance cycle (inheritor-in / transmitter chain)"},
      {"CAD002", "inher-rel-type names an unknown transmitter type"},
      {"CAD003", "inher-rel-type names an unknown inheritor type"},
      {"CAD004", "obj-type is inheritor-in an unknown inher-rel-type"},
      {"CAD005", "inheritor type mismatch (rel requires a different "
                 "inheritor)"},
      {"CAD006", "inheriting clause names no attribute/subclass of "
                 "transmitter"},
      {"CAD007", "local declaration shadows an inherited item"},
      {"CAD008", "constraint expression references an unknown name"},
      {"CAD009", "subclass has an unknown element type"},
      {"CAD010", "subrel has an unknown rel-type"},
      {"CAD011", "participant role has an unknown object type"},
      {"CAD012", "unresolved domain reference"},
      {"CAD013", "inher-rel-type is never used as anyone's inheritor-in"},
      {"CAD014", "inheritor-type restriction no type can ever satisfy"},
      {"CAD101", "dangling surrogate reference"},
      {"CAD102", "orphaned subobject (containment back-pointer broken)"},
      {"CAD103", "locally stored value for an inherited (read-only) "
                 "attribute"},
      {"CAD104", "live object of an unregistered type"},
      {"CAD105", "inheritance binding inconsistency"},
      {"CAD106", "store index inconsistency (extent / class / where-used)"},
      {"CAD107", "resolution-cache entry disagrees with a fresh resolution"},
      {"CAD201", "primary log generation moved backwards"},
      {"CAD202", "checkpoint anchor moved backwards within one generation"},
      {"CAD203", "replayed log prefix no longer matches what was applied"},
      {"CAD204", "manifest structurally inconsistent"},
      {"CAD205", "shipped state fails replay or fsck despite valid "
                 "checksums"},
      {"CAD301", "page checksum mismatch (torn write or bit rot)"},
      {"CAD302", "page header claims a different page id than its position"},
      {"CAD303", "page slot directory malformed (overrun, overlap, or "
                 "out-of-bounds slot)"},
      {"CAD304", "page record malformed (short, undecodable, or keyed to a "
                 "different surrogate)"},
      {"CAD305", "overflow chain broken (dangling next, id mismatch, or "
                 "cycle)"},
      {"CAD306", "orphaned overflow page unreachable from any chain head"},
      {"CAD307", "surrogate mapped by more than one live record (directory "
                 "bijection violated)"},
      {"CAD308", "live data references a free page (freelist and mapped "
                 "pages intersect)"},
      {"CAD309", "page lsn beyond the log's durable horizon"},
      {"CAD310", "page file has a torn tail (size not a page multiple)"},
      {"CAD311", "wal segment torn or corrupt mid-chain (later records "
                 "stranded)"},
      {"CAD312", "wal tail segment torn past the last valid frame"},
      {"CAD313", "wal lsn discontinuity (in-segment regression or seam "
                 "gap/overlap)"},
      {"CAD314", "wal frame payload undecodable despite a valid checksum"},
      {"CAD315", "checkpoint file damaged (header, crc, or name mismatch)"},
      {"CAD316", "checkpoint body malformed (v3 structure or replay floor "
                 "past the cover lsn)"},
      {"CAD317", "checkpoint page image invalid (size, parse, id, or lsn)"},
      {"CAD318", "checkpoint replay floor not covered by the retained "
                 "segments"},
      {"CAD319", "manifest seq/generation inconsistent with the staged "
                 "checkpoint"},
      {"CAD320", "manifest damaged (decode, crc, or structural validation "
                 "failure)"},
      {"CAD321", "manifest names a missing or mismatched artifact"},
      {"CAD322", "replica is quarantined (persisted divergence verdict)"},
      {"CAD323", "stale temp files (debris of an interrupted atomic "
                 "publish)"},
  };
  return kRegistry;
}

const DiagnosticCodeInfo* FindCodeInfo(const std::string& code) {
  const std::vector<DiagnosticCodeInfo>& registry = CodeRegistry();
  auto it = std::lower_bound(
      registry.begin(), registry.end(), code,
      [](const DiagnosticCodeInfo& info, const std::string& key) {
        return key.compare(info.code) > 0;
      });
  if (it == registry.end() || code != it->code) return nullptr;
  return &*it;
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

void DiagnosticBag::Add(std::string code, Severity severity,
                        std::string message, SourceLoc loc, std::string entity,
                        std::string hint) {
  diagnostics_.push_back({std::move(code), severity, std::move(message), loc,
                          std::move(entity), std::move(hint)});
}

void DiagnosticBag::Merge(const DiagnosticBag& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

bool DiagnosticBag::Has(const std::string& code) const {
  return std::any_of(
      diagnostics_.begin(), diagnostics_.end(),
      [&code](const Diagnostic& d) { return d.code == code; });
}

size_t DiagnosticBag::Count(Severity severity) const {
  return static_cast<size_t>(std::count_if(
      diagnostics_.begin(), diagnostics_.end(),
      [severity](const Diagnostic& d) { return d.severity == severity; }));
}

void DiagnosticBag::Sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (SeverityRank(a.severity) != SeverityRank(b.severity)) {
                       return SeverityRank(a.severity) < SeverityRank(b.severity);
                     }
                     if (a.loc.line != b.loc.line) {
                       return a.loc.line < b.loc.line;
                     }
                     return a.code < b.code;
                   });
}

std::string DiagnosticBag::RenderText() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.code;
    out += " ";
    out += SeverityName(d.severity);
    out += ": ";
    out += d.message;
    if (!d.entity.empty() || d.loc.valid()) {
      out += " [";
      out += d.entity;
      if (d.loc.valid()) {
        if (!d.entity.empty()) out += " @ ";
        out += d.loc.ToString();
      }
      out += "]";
    }
    out += "\n";
    if (!d.hint.empty()) {
      out += "    hint: ";
      out += d.hint;
      out += "\n";
    }
  }
  return out;
}

std::string DiagnosticBag::RenderJson() const {
  std::string out = "{\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i > 0) out += ",";
    out += "{\"code\":";
    AppendJsonString(&out, d.code);
    out += ",\"severity\":";
    AppendJsonString(&out, SeverityName(d.severity));
    out += ",\"message\":";
    AppendJsonString(&out, d.message);
    if (d.loc.valid()) {
      out += ",\"line\":" + std::to_string(d.loc.line);
      out += ",\"column\":" + std::to_string(d.loc.column);
    }
    out += ",\"entity\":";
    AppendJsonString(&out, d.entity);
    if (!d.hint.empty()) {
      out += ",\"hint\":";
      AppendJsonString(&out, d.hint);
    }
    out += "}";
  }
  out += "],\"errors\":" + std::to_string(error_count());
  out += ",\"warnings\":" + std::to_string(warning_count());
  out += ",\"notes\":" + std::to_string(Count(Severity::kNote));
  out += "}";
  return out;
}

std::string DiagnosticBag::Summary() const {
  if (diagnostics_.empty()) return "clean";
  std::string out;
  if (error_count() > 0) out += Plural(error_count(), "error");
  if (warning_count() > 0) {
    if (!out.empty()) out += ", ";
    out += Plural(warning_count(), "warning");
  }
  size_t notes = Count(Severity::kNote);
  if (notes > 0) {
    if (!out.empty()) out += ", ";
    out += Plural(notes, "note");
  }
  return out;
}

}  // namespace analysis
}  // namespace caddb

#include "analysis/diagnostics.h"

#include <algorithm>

namespace caddb {
namespace analysis {

namespace {

int SeverityRank(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return 0;
    case Severity::kWarning:
      return 1;
    case Severity::kNote:
      return 2;
  }
  return 3;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(c >> 4) & 0xf]);
          out->push_back(kHex[c & 0xf]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string Plural(size_t n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

void DiagnosticBag::Add(std::string code, Severity severity,
                        std::string message, SourceLoc loc, std::string entity,
                        std::string hint) {
  diagnostics_.push_back({std::move(code), severity, std::move(message), loc,
                          std::move(entity), std::move(hint)});
}

void DiagnosticBag::Merge(const DiagnosticBag& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

bool DiagnosticBag::Has(const std::string& code) const {
  return std::any_of(
      diagnostics_.begin(), diagnostics_.end(),
      [&code](const Diagnostic& d) { return d.code == code; });
}

size_t DiagnosticBag::Count(Severity severity) const {
  return static_cast<size_t>(std::count_if(
      diagnostics_.begin(), diagnostics_.end(),
      [severity](const Diagnostic& d) { return d.severity == severity; }));
}

void DiagnosticBag::Sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (SeverityRank(a.severity) != SeverityRank(b.severity)) {
                       return SeverityRank(a.severity) < SeverityRank(b.severity);
                     }
                     if (a.loc.line != b.loc.line) {
                       return a.loc.line < b.loc.line;
                     }
                     return a.code < b.code;
                   });
}

std::string DiagnosticBag::RenderText() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.code;
    out += " ";
    out += SeverityName(d.severity);
    out += ": ";
    out += d.message;
    if (!d.entity.empty() || d.loc.valid()) {
      out += " [";
      out += d.entity;
      if (d.loc.valid()) {
        if (!d.entity.empty()) out += " @ ";
        out += d.loc.ToString();
      }
      out += "]";
    }
    out += "\n";
    if (!d.hint.empty()) {
      out += "    hint: ";
      out += d.hint;
      out += "\n";
    }
  }
  return out;
}

std::string DiagnosticBag::RenderJson() const {
  std::string out = "{\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i > 0) out += ",";
    out += "{\"code\":";
    AppendJsonString(&out, d.code);
    out += ",\"severity\":";
    AppendJsonString(&out, SeverityName(d.severity));
    out += ",\"message\":";
    AppendJsonString(&out, d.message);
    if (d.loc.valid()) {
      out += ",\"line\":" + std::to_string(d.loc.line);
      out += ",\"column\":" + std::to_string(d.loc.column);
    }
    out += ",\"entity\":";
    AppendJsonString(&out, d.entity);
    if (!d.hint.empty()) {
      out += ",\"hint\":";
      AppendJsonString(&out, d.hint);
    }
    out += "}";
  }
  out += "],\"errors\":" + std::to_string(error_count());
  out += ",\"warnings\":" + std::to_string(warning_count());
  out += ",\"notes\":" + std::to_string(Count(Severity::kNote));
  out += "}";
  return out;
}

std::string DiagnosticBag::Summary() const {
  if (diagnostics_.empty()) return "clean";
  std::string out;
  if (error_count() > 0) out += Plural(error_count(), "error");
  if (warning_count() > 0) {
    if (!out.empty()) out += ", ";
    out += Plural(warning_count(), "warning");
  }
  size_t notes = Count(Severity::kNote);
  if (notes > 0) {
    if (!out.empty()) out += ", ";
    out += Plural(notes, "note");
  }
  return out;
}

}  // namespace analysis
}  // namespace caddb

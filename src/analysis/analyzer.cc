#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/ast.h"
#include "inherit/inheritance.h"
#include "store/store.h"

namespace caddb {
namespace analysis {

namespace {

// ---------------------------------------------------------------------------
// Fix-it hints
// ---------------------------------------------------------------------------

size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t next = std::min({row[j] + 1, row[j - 1] + 1,
                              diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

/// "did you mean 'X'?" for the candidate closest to `target`, or "" when
/// nothing is plausibly a typo of it.
std::string NearestName(const std::string& target,
                        const std::vector<std::string>& candidates) {
  const size_t limit = std::max<size_t>(2, target.size() / 4);
  size_t best = limit + 1;
  const std::string* winner = nullptr;
  for (const std::string& c : candidates) {
    if (c == target) continue;
    size_t d = EditDistance(target, c);
    if (d < best) {
      best = d;
      winner = &c;
    }
  }
  if (winner == nullptr) return "";
  return "did you mean '" + *winner + "'?";
}

std::vector<std::string> Keys(const std::set<std::string>& s) {
  return std::vector<std::string>(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// Schema passes
// ---------------------------------------------------------------------------

class SchemaAnalyzer {
 public:
  SchemaAnalyzer(const Catalog& catalog, DiagnosticBag* bag)
      : catalog_(catalog), bag_(bag) {}

  void Run() {
    CollectEnumSymbols();
    CheckCycles();
    for (const std::string& name : catalog_.InherRelTypeNames()) {
      CheckInherRelType(*catalog_.FindInherRelType(name));
    }
    for (const std::string& name : catalog_.ObjectTypeNames()) {
      CheckObjectType(*catalog_.FindObjectType(name));
    }
    for (const std::string& name : catalog_.RelTypeNames()) {
      CheckRelType(*catalog_.FindRelType(name));
    }
  }

 private:
  /// Best-effort effective item set of an object type: every pass keeps
  /// going past defects, so this must not fail where
  /// Catalog::EffectiveSchemaFor would — a broken or cyclic transmitter
  /// chain leaves `resolved` false (inheritance-dependent passes skip the
  /// type) while local items stay usable for scope checks.
  struct ItemSet {
    bool resolved = false;
    std::map<std::string, const AttributeDef*> attrs;
    std::map<std::string, const SubclassDef*> subclasses;
    std::set<std::string> subrels;
    struct Origin {
      std::string type;  // where the item is locally declared
      std::string rel;   // direct inher-rel it arrived through
    };
    std::map<std::string, Origin> inherited;
  };

  /// Every inher-rel-type some obj-type declares itself inheritor-in.
  /// Computed once: a per-relationship scan would make the pass quadratic
  /// in schema size (bench_analysis pins the near-linear behavior).
  const std::set<std::string>& UsedInherRels() {
    if (!used_inher_rels_computed_) {
      used_inher_rels_computed_ = true;
      for (const std::string& name : catalog_.ObjectTypeNames()) {
        const std::string& rel = catalog_.FindObjectType(name)->inheritor_in;
        if (!rel.empty()) used_inher_rels_.insert(rel);
      }
    }
    return used_inher_rels_;
  }

  const ItemSet& Items(const std::string& type_name) {
    auto it = memo_.find(type_name);
    // A placeholder found mid-recursion means a cycle: unresolved.
    if (it != memo_.end()) return it->second;
    memo_[type_name];  // placeholder breaks recursion (map refs are stable)

    ItemSet s;
    const ObjectTypeDef* def = catalog_.FindObjectType(type_name);
    if (def == nullptr) return memo_[type_name];

    s.resolved = true;
    if (!def->inheritor_in.empty()) {
      const InherRelTypeDef* rel = catalog_.FindInherRelType(def->inheritor_in);
      if (rel == nullptr || catalog_.FindObjectType(rel->transmitter_type) ==
                                nullptr) {
        s.resolved = false;
      } else {
        const ItemSet& base = Items(rel->transmitter_type);
        if (!base.resolved) {
          s.resolved = false;
        } else {
          for (const std::string& item : rel->inheriting) {
            ItemSet::Origin origin{rel->transmitter_type, rel->name};
            auto inh = base.inherited.find(item);
            if (inh != base.inherited.end()) origin.type = inh->second.type;
            auto a = base.attrs.find(item);
            if (a != base.attrs.end()) {
              s.attrs[item] = a->second;
              s.inherited[item] = origin;
              continue;
            }
            auto c = base.subclasses.find(item);
            if (c != base.subclasses.end()) {
              s.subclasses[item] = c->second;
              s.inherited[item] = origin;
            }
            // Unknown items are CAD006, reported at the inher-rel-type.
          }
        }
      }
    }
    // Local declarations. On a shadowing collision (CAD007, reported at the
    // object type) the inherited item wins here, matching the provenance the
    // store would see if the shadow were removed.
    for (const AttributeDef& a : def->attributes) {
      if (s.inherited.count(a.name) == 0) s.attrs[a.name] = &a;
    }
    for (const SubclassDef& c : def->subclasses) {
      if (s.inherited.count(c.name) == 0) s.subclasses[c.name] = &c;
    }
    for (const SubrelDef& r : def->subrels) s.subrels.insert(r.name);

    return memo_[type_name] = std::move(s);
  }

  // ---- CAD001: type-level inheritance cycles (all of them, each once) ----
  void CheckCycles() {
    std::set<std::string> reported;
    for (const std::string& start : catalog_.ObjectTypeNames()) {
      std::vector<std::string> path;
      std::map<std::string, size_t> pos;
      std::string cur = start;
      while (true) {
        auto seen = pos.find(cur);
        if (seen != pos.end()) {
          ReportCycle(
              std::vector<std::string>(path.begin() + seen->second, path.end()),
              &reported);
          break;
        }
        const ObjectTypeDef* def = catalog_.FindObjectType(cur);
        if (def == nullptr || def->inheritor_in.empty()) break;
        const InherRelTypeDef* rel =
            catalog_.FindInherRelType(def->inheritor_in);
        if (rel == nullptr) break;
        pos[cur] = path.size();
        path.push_back(cur);
        cur = rel->transmitter_type;
      }
    }
  }

  void ReportCycle(std::vector<std::string> cycle,
                   std::set<std::string>* reported) {
    // Canonical form: rotate the smallest member to the front so every entry
    // point into the same cycle dedupes to one report.
    auto smallest = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), smallest, cycle.end());
    std::string rendered = cycle.front();
    for (size_t i = 1; i < cycle.size(); ++i) rendered += " -> " + cycle[i];
    rendered += " -> " + cycle.front();
    if (!reported->insert(rendered).second) return;
    const ObjectTypeDef* def = catalog_.FindObjectType(cycle.front());
    bag_->Add("CAD001", Severity::kError,
              "type-level inheritance cycle: " + rendered,
              def != nullptr ? def->loc : SourceLoc{},
              "obj-type " + cycle.front());
  }

  // ---- CAD002/003/006/012/013/014 + members of inher-rel-types ----
  void CheckInherRelType(const InherRelTypeDef& def) {
    const std::string entity = "inher-rel-type " + def.name;

    if (catalog_.FindObjectType(def.transmitter_type) == nullptr) {
      bag_->Add("CAD002", Severity::kError,
                "unknown transmitter type '" + def.transmitter_type + "'",
                def.transmitter_loc.valid() ? def.transmitter_loc : def.loc,
                entity,
                NearestName(def.transmitter_type, catalog_.ObjectTypeNames()));
    }
    if (!def.inheritor_type.empty()) {
      const ObjectTypeDef* inheritor =
          catalog_.FindObjectType(def.inheritor_type);
      if (inheritor == nullptr) {
        bag_->Add("CAD003", Severity::kError,
                  "unknown inheritor type '" + def.inheritor_type + "'",
                  def.inheritor_loc.valid() ? def.inheritor_loc : def.loc,
                  entity,
                  NearestName(def.inheritor_type, catalog_.ObjectTypeNames()));
      } else if (inheritor->inheritor_in != def.name) {
        bag_->Add(
            "CAD014", Severity::kWarning,
            "restricts inheritors to type '" + def.inheritor_type +
                "', but that type declares " +
                (inheritor->inheritor_in.empty()
                     ? "no inheritor-in clause"
                     : "inheritor-in '" + inheritor->inheritor_in + "'") +
                ", so no binding through this relationship can ever be "
                "created",
            def.inheritor_loc.valid() ? def.inheritor_loc : def.loc, entity);
      }
    }

    // CAD006: the permeability list must name effective items of the
    // transmitter. Skipped when the transmitter chain itself is broken —
    // those defects already got their own diagnostic.
    const ItemSet& transmitter = Items(def.transmitter_type);
    if (transmitter.resolved) {
      std::set<std::string> provided;
      for (const auto& [name, a] : transmitter.attrs) provided.insert(name);
      for (const auto& [name, c] : transmitter.subclasses)
        provided.insert(name);
      for (size_t i = 0; i < def.inheriting.size(); ++i) {
        const std::string& item = def.inheriting[i];
        if (provided.count(item) > 0) continue;
        SourceLoc loc =
            i < def.inheriting_locs.size() ? def.inheriting_locs[i] : def.loc;
        bag_->Add("CAD006", Severity::kError,
                  "inherits '" + item +
                      "' which is neither an attribute nor a subclass of "
                      "transmitter type '" +
                      def.transmitter_type + "'",
                  loc, entity, NearestName(item, Keys(provided)));
      }
    }

    // CAD013: a relationship type nobody is inheritor-in can never bind.
    if (UsedInherRels().count(def.name) == 0) {
      bag_->Add("CAD013", Severity::kWarning,
                "no obj-type declares inheritor-in '" + def.name +
                    "'; the relationship type can never be instantiated",
                def.loc, entity);
    }

    for (const AttributeDef& a : def.attributes) {
      CheckDomainTree(a.domain, a.loc.valid() ? a.loc : def.loc, entity,
                      a.name);
    }
    for (const SubclassDef& c : def.subclasses) {
      CheckSubclassDef(c, def.loc, entity);
    }
    std::set<std::string> scope = {"transmitter", "inheritor"};
    for (const AttributeDef& a : def.attributes) scope.insert(a.name);
    for (const SubclassDef& c : def.subclasses) scope.insert(c.name);
    CheckConstraints(def.constraints, scope, entity);
  }

  // ---- CAD004/005/007/008/009/010/012 on object types ----
  void CheckObjectType(const ObjectTypeDef& def) {
    const std::string entity = "obj-type " + def.name;

    if (!def.inheritor_in.empty()) {
      const InherRelTypeDef* rel = catalog_.FindInherRelType(def.inheritor_in);
      SourceLoc loc =
          def.inheritor_in_loc.valid() ? def.inheritor_in_loc : def.loc;
      if (rel == nullptr) {
        bag_->Add(
            "CAD004", Severity::kError,
            "inheritor-in unknown inher-rel-type '" + def.inheritor_in + "'",
            loc, entity,
            NearestName(def.inheritor_in, catalog_.InherRelTypeNames()));
      } else if (!rel->inheritor_type.empty() &&
                 rel->inheritor_type != def.name) {
        bag_->Add("CAD005", Severity::kError,
                  "declares inheritor-in '" + rel->name +
                      "' which requires inheritor type '" +
                      rel->inheritor_type + "'",
                  loc, entity);
      }
    }

    // CAD007: shadowing. Only decidable when the inherited closure resolved.
    const ItemSet& items = Items(def.name);
    if (items.resolved) {
      auto shadow = [&](const std::string& name, SourceLoc loc,
                        const char* what) {
        auto inh = items.inherited.find(name);
        if (inh == items.inherited.end()) return;
        bag_->Add("CAD007", Severity::kError,
                  std::string("local ") + what + " '" + name +
                      "' shadows an item inherited from '" + inh->second.type +
                      "' through '" + inh->second.rel + "'",
                  loc.valid() ? loc : def.loc, entity);
      };
      for (const AttributeDef& a : def.attributes)
        shadow(a.name, a.loc, "attribute");
      for (const SubclassDef& c : def.subclasses)
        shadow(c.name, c.loc, "subclass");
      for (const SubrelDef& r : def.subrels) shadow(r.name, r.loc, "subrel");
    }

    for (const AttributeDef& a : def.attributes) {
      CheckDomainTree(a.domain, a.loc.valid() ? a.loc : def.loc, entity,
                      a.name);
    }
    for (const SubclassDef& c : def.subclasses) {
      CheckSubclassDef(c, def.loc, entity);
    }
    for (const SubrelDef& r : def.subrels) {
      if (catalog_.FindRelType(r.rel_type) == nullptr) {
        bag_->Add("CAD010", Severity::kError,
                  "subrel '" + r.name + "' has unknown rel-type '" +
                      r.rel_type + "'",
                  r.loc.valid() ? r.loc : def.loc, entity,
                  NearestName(r.rel_type, catalog_.RelTypeNames()));
      }
    }

    // Constraint scope: every effective attribute/subclass plus local
    // subrels plus quantifier variables. Binding variables accumulate
    // across a constraints section in the evaluator, so all of them are
    // collected up front.
    std::set<std::string> scope;
    for (const auto& [name, a] : items.attrs) scope.insert(name);
    for (const auto& [name, c] : items.subclasses) scope.insert(name);
    for (const std::string& r : items.subrels) scope.insert(r);
    CheckConstraints(def.constraints, scope, entity);

    // Subrel where-clauses: the member is addressable via the subrel name,
    // its singular form, and the rel-type name; member roles and attributes
    // resolve before the owner's scope.
    for (const SubrelDef& r : def.subrels) {
      if (r.where == nullptr) continue;
      std::set<std::string> where_scope = scope;
      where_scope.insert(r.name);
      if (r.name.size() > 1 && r.name.back() == 's') {
        where_scope.insert(r.name.substr(0, r.name.size() - 1));
      }
      where_scope.insert(r.rel_type);
      if (const RelTypeDef* rel = catalog_.FindRelType(r.rel_type)) {
        for (const ParticipantDef& p : rel->participants)
          where_scope.insert(p.role);
        for (const AttributeDef& a : rel->attributes)
          where_scope.insert(a.name);
      }
      CollectBindingVars(*r.where, &where_scope);
      const std::string label =
          r.where_text.empty() ? "where-clause of subrel '" + r.name + "'"
                               : r.where_text;
      CheckExpr(*r.where, where_scope, entity,
                r.loc.valid() ? r.loc : def.loc, label);
    }
  }

  // ---- CAD008/009/011/012 on relationship types ----
  void CheckRelType(const RelTypeDef& def) {
    const std::string entity = "rel-type " + def.name;
    for (const ParticipantDef& p : def.participants) {
      if (!p.object_type.empty() &&
          catalog_.FindObjectType(p.object_type) == nullptr) {
        bag_->Add("CAD011", Severity::kError,
                  "role '" + p.role + "' has unknown object type '" +
                      p.object_type + "'",
                  p.loc.valid() ? p.loc : def.loc, entity,
                  NearestName(p.object_type, catalog_.ObjectTypeNames()));
      }
    }
    for (const AttributeDef& a : def.attributes) {
      CheckDomainTree(a.domain, a.loc.valid() ? a.loc : def.loc, entity,
                      a.name);
    }
    for (const SubclassDef& c : def.subclasses) {
      CheckSubclassDef(c, def.loc, entity);
    }
    std::set<std::string> scope;
    for (const ParticipantDef& p : def.participants) scope.insert(p.role);
    for (const AttributeDef& a : def.attributes) scope.insert(a.name);
    for (const SubclassDef& c : def.subclasses) scope.insert(c.name);
    CheckConstraints(def.constraints, scope, entity);
  }

  // ---- CAD009: subclass element types ----
  void CheckSubclassDef(const SubclassDef& c, SourceLoc fallback,
                        const std::string& entity) {
    if (catalog_.FindObjectType(c.element_type) != nullptr) return;
    bag_->Add("CAD009", Severity::kError,
              "subclass '" + c.name + "' has unknown element type '" +
                  c.element_type + "'",
              c.loc.valid() ? c.loc : fallback, entity,
              NearestName(c.element_type, catalog_.ObjectTypeNames()));
  }

  // ---- CAD012: domain trees ----
  void CheckDomainTree(const Domain& d, SourceLoc loc,
                       const std::string& entity, const std::string& attr) {
    switch (d.kind()) {
      case Domain::Kind::kNamed:
        if (!catalog_.ResolveDomain(d.name()).ok()) {
          bag_->Add("CAD012", Severity::kError,
                    "attribute '" + attr + "' references unresolved domain '" +
                        d.name() + "'",
                    loc, entity, NearestName(d.name(), catalog_.DomainNames()));
        }
        return;
      case Domain::Kind::kRef:
        if (!d.name().empty() &&
            catalog_.FindObjectType(d.name()) == nullptr &&
            catalog_.FindRelType(d.name()) == nullptr) {
          bag_->Add("CAD012", Severity::kError,
                    "attribute '" + attr +
                        "' references unknown object type '" + d.name() + "'",
                    loc, entity,
                    NearestName(d.name(), catalog_.ObjectTypeNames()));
        }
        return;
      case Domain::Kind::kRecord:
        for (const auto& [field, sub] : d.record_fields()) {
          CheckDomainTree(sub, loc, entity, attr + "." + field);
        }
        return;
      case Domain::Kind::kListOf:
      case Domain::Kind::kSetOf:
      case Domain::Kind::kMatrixOf:
        CheckDomainTree(d.element(), loc, entity, attr);
        return;
      default:
        return;
    }
  }

  // ---- CAD008: constraint expressions ----
  void CheckConstraints(const std::vector<ConstraintDef>& constraints,
                        std::set<std::string> scope,
                        const std::string& entity) {
    // The evaluator accumulates `for`/`exists` bindings across a constraints
    // section, so every variable of the section is in scope everywhere.
    for (const ConstraintDef& c : constraints) {
      if (c.predicate != nullptr) CollectBindingVars(*c.predicate, &scope);
    }
    for (const ConstraintDef& c : constraints) {
      if (c.predicate == nullptr) continue;
      CheckExpr(*c.predicate, scope, entity, c.loc,
                c.label.empty() ? c.predicate->ToString() : c.label);
    }
  }

  static void CollectBindingVars(const expr::Expr& e,
                                 std::set<std::string>* out) {
    for (const expr::Binding& b : e.bindings()) out->insert(b.var);
    for (const expr::ExprPtr& child : e.children()) {
      if (child != nullptr) CollectBindingVars(*child, out);
    }
    if (e.filter() != nullptr) CollectBindingVars(*e.filter(), out);
  }

  void CheckExpr(const expr::Expr& e, const std::set<std::string>& scope,
                 const std::string& entity, SourceLoc loc,
                 const std::string& label) {
    switch (e.kind()) {
      case expr::Expr::Kind::kLiteral:
        return;
      case expr::Expr::Kind::kPath: {
        if (e.segments().empty()) return;
        const std::string& head = e.segments().front();
        if (scope.count(head) > 0) return;
        if (e.segments().size() == 1) {
          // The evaluator falls back to treating an unresolved bare
          // identifier as an enumeration symbol, so this can only be wrong
          // intent, never a runtime failure: warn unless the symbol is
          // declared by some domain in the catalog.
          if (enum_symbols_.count(head) > 0) return;
          bag_->Add("CAD008", Severity::kWarning,
                    "constraint '" + label + "' references '" + head +
                        "', which is neither an item in scope nor a known "
                        "enumeration symbol; it will evaluate as the enum "
                        "symbol (" +
                        head + ")",
                    loc, entity, NearestName(head, Keys(scope)));
        } else {
          bag_->Add("CAD008", Severity::kError,
                    "constraint '" + label + "' references unknown name '" +
                        head + "' (in path '" + e.ToString() + "')",
                    loc, entity, NearestName(head, Keys(scope)));
        }
        return;
      }
      case expr::Expr::Kind::kForAll:
      case expr::Expr::Kind::kExists: {
        std::set<std::string> inner = scope;
        for (const expr::Binding& b : e.bindings()) {
          if (b.collection != nullptr) {
            CheckExpr(*b.collection, scope, entity, loc, label);
          }
          inner.insert(b.var);
        }
        if (!e.children().empty() && e.children()[0] != nullptr) {
          CheckExpr(*e.children()[0], inner, entity, loc, label);
        }
        return;
      }
      case expr::Expr::Kind::kCount:
      case expr::Expr::Kind::kSum:
      case expr::Expr::Kind::kMin:
      case expr::Expr::Kind::kMax: {
        const expr::ExprPtr& collection =
            e.children().empty() ? nullptr : e.children()[0];
        if (collection != nullptr) {
          CheckExpr(*collection, scope, entity, loc, label);
        }
        if (e.filter() != nullptr) {
          // The filter's implicit variable is the last segment of the
          // collection path (`count(Pins) ... where Pins.InOut = IN`).
          std::set<std::string> inner = scope;
          if (collection != nullptr &&
              collection->kind() == expr::Expr::Kind::kPath &&
              !collection->segments().empty()) {
            inner.insert(collection->segments().back());
          }
          CheckExpr(*e.filter(), inner, entity, loc, label);
        }
        return;
      }
      default:
        for (const expr::ExprPtr& child : e.children()) {
          if (child != nullptr) CheckExpr(*child, scope, entity, loc, label);
        }
        return;
    }
  }

  // ---- Enumeration symbols (suppress CAD008 on intended symbols) ----
  void CollectEnumSymbols() {
    std::set<std::string> visited_named;
    for (const std::string& name : catalog_.DomainNames()) {
      Result<Domain> d = catalog_.ResolveDomain(name);
      if (d.ok()) CollectSymbols(*d, &visited_named);
    }
    auto from_attrs = [&](const std::vector<AttributeDef>& attrs) {
      for (const AttributeDef& a : attrs) CollectSymbols(a.domain,
                                                         &visited_named);
    };
    for (const std::string& name : catalog_.ObjectTypeNames()) {
      from_attrs(catalog_.FindObjectType(name)->attributes);
    }
    for (const std::string& name : catalog_.RelTypeNames()) {
      from_attrs(catalog_.FindRelType(name)->attributes);
    }
    for (const std::string& name : catalog_.InherRelTypeNames()) {
      from_attrs(catalog_.FindInherRelType(name)->attributes);
    }
  }

  void CollectSymbols(const Domain& d, std::set<std::string>* visited_named) {
    switch (d.kind()) {
      case Domain::Kind::kEnum:
        enum_symbols_.insert(d.symbols().begin(), d.symbols().end());
        return;
      case Domain::Kind::kRecord:
        for (const auto& [field, sub] : d.record_fields()) {
          CollectSymbols(sub, visited_named);
        }
        return;
      case Domain::Kind::kListOf:
      case Domain::Kind::kSetOf:
      case Domain::Kind::kMatrixOf:
        CollectSymbols(d.element(), visited_named);
        return;
      case Domain::Kind::kNamed: {
        if (!visited_named->insert(d.name()).second) return;
        Result<Domain> resolved = catalog_.ResolveDomain(d.name());
        if (resolved.ok()) CollectSymbols(*resolved, visited_named);
        return;
      }
      default:
        return;
    }
  }

  const Catalog& catalog_;
  DiagnosticBag* bag_;
  std::map<std::string, ItemSet> memo_;
  bool used_inher_rels_computed_ = false;
  std::set<std::string> used_inher_rels_;
  std::set<std::string> enum_symbols_;
};

// ---------------------------------------------------------------------------
// Store passes (fsck)
// ---------------------------------------------------------------------------

class StoreAnalyzer {
 public:
  StoreAnalyzer(const ObjectStore& store, const InheritanceManager* inheritance,
                DiagnosticBag* bag)
      : store_(store), inheritance_(inheritance), bag_(bag) {}

  void Run() {
    for (Surrogate s : store_.AllObjects()) {
      Result<const DbObject*> obj = store_.Get(s);
      if (!obj.ok()) continue;
      CheckObject(**obj);
    }
    CheckObjectCycles();
    for (const std::string& finding : store_.AuditIndexes()) {
      bag_->Add("CAD106", Severity::kError, finding, {}, "store index");
    }
    if (inheritance_ != nullptr) {
      for (const std::string& finding : inheritance_->AuditCache()) {
        bag_->Add("CAD107", Severity::kError, finding, {}, "resolution cache");
      }
    }
  }

 private:
  static std::string Entity(const DbObject& obj) {
    return std::string(ObjKindName(obj.kind())) + " @" +
           std::to_string(obj.surrogate().id) + " (" + obj.type_name() + ")";
  }

  void CheckObject(const DbObject& obj) {
    const Catalog& catalog = store_.catalog();
    const std::string entity = Entity(obj);

    // CAD104: the type must still be registered under the matching kind.
    bool type_known = true;
    switch (obj.kind()) {
      case ObjKind::kObject:
        type_known = catalog.FindObjectType(obj.type_name()) != nullptr;
        break;
      case ObjKind::kRelationship:
        type_known = catalog.FindRelType(obj.type_name()) != nullptr;
        break;
      case ObjKind::kInherRel:
        type_known = catalog.FindInherRelType(obj.type_name()) != nullptr;
        break;
    }
    if (!type_known) {
      bag_->Add("CAD104", Severity::kError,
                "live object of unregistered type '" + obj.type_name() + "'",
                {}, entity);
    }

    CheckContainment(obj, entity);
    CheckMemberLists(obj, entity);
    CheckParticipants(obj, entity);
    for (const auto& [name, value] : obj.attributes()) {
      CheckValueRefs(value, name, entity);
    }
    if (obj.kind() == ObjKind::kObject && type_known) {
      CheckLocalAttributes(obj, entity);
      CheckBinding(obj, entity);
    }
    if (obj.kind() == ObjKind::kInherRel) CheckInherRel(obj, entity);
  }

  // CAD101/CAD102: the parent back-pointer must target a live object whose
  // matching subclass/subrel member list contains this object.
  void CheckContainment(const DbObject& obj, const std::string& entity) {
    if (!obj.IsSubobject()) return;
    Result<const DbObject*> parent = store_.Get(obj.parent());
    if (!parent.ok()) {
      bag_->Add("CAD102", Severity::kError,
                "orphaned subobject: parent @" +
                    std::to_string(obj.parent().id) + " does not exist",
                {}, entity);
      return;
    }
    const std::vector<Surrogate>* members =
        (*parent)->Subclass(obj.parent_subclass());
    if (members == nullptr) members = (*parent)->Subrel(obj.parent_subclass());
    bool listed =
        members != nullptr &&
        std::find(members->begin(), members->end(), obj.surrogate()) !=
            members->end();
    if (!listed) {
      bag_->Add("CAD102", Severity::kError,
                "orphaned subobject: parent " + Entity(**parent) +
                    " does not list it in subclass/subrel '" +
                    obj.parent_subclass() + "'",
                {}, entity);
    }
  }

  // CAD101/CAD102: every listed member must be live and point back here.
  void CheckMemberLists(const DbObject& obj, const std::string& entity) {
    auto check = [&](const std::string& name, Surrogate member,
                     const char* what) {
      Result<const DbObject*> m = store_.Get(member);
      if (!m.ok()) {
        bag_->Add("CAD101", Severity::kError,
                  std::string(what) + " '" + name +
                      "' lists dangling surrogate @" +
                      std::to_string(member.id),
                  {}, entity);
        return;
      }
      if ((*m)->parent() != obj.surrogate() ||
          (*m)->parent_subclass() != name) {
        bag_->Add("CAD102", Severity::kError,
                  std::string(what) + " '" + name + "' lists " + Entity(**m) +
                      " whose containment back-pointer targets @" +
                      std::to_string((*m)->parent().id) + " '" +
                      (*m)->parent_subclass() + "'",
                  {}, entity);
      }
    };
    for (const auto& [name, members] : obj.subclasses()) {
      for (Surrogate member : members) check(name, member, "subclass");
    }
    for (const auto& [name, members] : obj.subrels()) {
      for (Surrogate member : members) check(name, member, "subrel");
    }
  }

  // CAD101: participant targets of relationship objects must be live.
  void CheckParticipants(const DbObject& obj, const std::string& entity) {
    for (const auto& [role, members] : obj.participants()) {
      for (Surrogate member : members) {
        if (!store_.Exists(member)) {
          bag_->Add("CAD101", Severity::kError,
                    "role '" + role + "' references dangling surrogate @" +
                        std::to_string(member.id),
                    {}, entity);
        }
      }
    }
  }

  // CAD101: kRef attribute values (recursively) must target live objects.
  void CheckValueRefs(const Value& v, const std::string& attr,
                      const std::string& entity) {
    switch (v.kind()) {
      case Value::Kind::kRef:
        if (v.AsRef().valid() && !store_.Exists(v.AsRef())) {
          bag_->Add("CAD101", Severity::kError,
                    "attribute '" + attr +
                        "' references dangling surrogate @" +
                        std::to_string(v.AsRef().id),
                    {}, entity);
        }
        return;
      case Value::Kind::kRecord:
        for (const auto& [field, sub] : v.fields()) {
          CheckValueRefs(sub, attr + "." + field, entity);
        }
        return;
      case Value::Kind::kList:
      case Value::Kind::kSet:
      case Value::Kind::kMatrix:
        for (const Value& e : v.elements()) CheckValueRefs(e, attr, entity);
        return;
      default:
        return;
    }
  }

  // CAD103: local storage must respect the effective schema — inherited
  // attributes are read-only views, and unknown attributes have no domain.
  void CheckLocalAttributes(const DbObject& obj, const std::string& entity) {
    Result<const EffectiveSchema*> schema =
        store_.catalog().FindEffectiveSchema(obj.type_name());
    if (!schema.ok()) return;  // schema defects are CAD0xx findings
    for (const auto& [name, value] : obj.attributes()) {
      if ((*schema)->FindAttribute(name) == nullptr) {
        bag_->Add("CAD103", Severity::kError,
                  "stores a value for '" + name +
                      "', which is not an attribute of its effective schema",
                  {}, entity);
      } else if ((*schema)->IsInherited(name)) {
        bag_->Add("CAD103", Severity::kError,
                  "stores a local value for inherited (read-only) attribute '" +
                      name + "'",
                  {}, entity);
      }
    }
  }

  // CAD101/CAD105: inheritor-side binding symmetry.
  void CheckBinding(const DbObject& obj, const std::string& entity) {
    Surrogate rel_s = obj.bound_inher_rel();
    if (!rel_s.valid()) return;
    Result<const DbObject*> rel = store_.Get(rel_s);
    if (!rel.ok()) {
      bag_->Add("CAD101", Severity::kError,
                "bound to dangling inheritance relationship @" +
                    std::to_string(rel_s.id),
                {}, entity);
      return;
    }
    if ((*rel)->kind() != ObjKind::kInherRel) {
      bag_->Add("CAD105", Severity::kError,
                "bound_inher_rel targets " + Entity(**rel) +
                    ", which is not an inheritance relationship",
                {}, entity);
      return;
    }
    if ((*rel)->Participant("inheritor") != obj.surrogate()) {
      bag_->Add("CAD105", Severity::kError,
                "bound to " + Entity(**rel) +
                    " whose inheritor participant is @" +
                    std::to_string((*rel)->Participant("inheritor").id),
                {}, entity);
    }
  }

  // CAD105: transmitter-side consistency of inheritance relationships.
  void CheckInherRel(const DbObject& rel, const std::string& entity) {
    const Catalog& catalog = store_.catalog();
    Surrogate transmitter_s = rel.Participant("transmitter");
    Surrogate inheritor_s = rel.Participant("inheritor");
    if (!transmitter_s.valid() || !inheritor_s.valid()) {
      bag_->Add("CAD105", Severity::kError,
                "lacks a transmitter or inheritor participant", {}, entity);
      return;
    }
    Result<const DbObject*> transmitter = store_.Get(transmitter_s);
    Result<const DbObject*> inheritor = store_.Get(inheritor_s);
    if (!transmitter.ok() || !inheritor.ok()) return;  // CAD101 already fired
    if ((*inheritor)->bound_inher_rel() != rel.surrogate()) {
      bag_->Add("CAD105", Severity::kError,
                "its inheritor " + Entity(**inheritor) +
                    " is bound to @" +
                    std::to_string((*inheritor)->bound_inher_rel().id) +
                    " instead",
                {}, entity);
    }
    const InherRelTypeDef* def = catalog.FindInherRelType(rel.type_name());
    if (def == nullptr) return;  // CAD104 already fired
    if ((*transmitter)->type_name() != def->transmitter_type) {
      bag_->Add("CAD105", Severity::kError,
                "transmitter " + Entity(**transmitter) +
                    " is not of required type '" + def->transmitter_type + "'",
                {}, entity);
    }
    if (!def->inheritor_type.empty() &&
        (*inheritor)->type_name() != def->inheritor_type) {
      bag_->Add("CAD105", Severity::kError,
                "inheritor " + Entity(**inheritor) +
                    " is not of required type '" + def->inheritor_type + "'",
                {}, entity);
    }
    const ObjectTypeDef* inheritor_type =
        catalog.FindObjectType((*inheritor)->type_name());
    if (inheritor_type != nullptr && inheritor_type->inheritor_in != def->name) {
      bag_->Add("CAD105", Severity::kError,
                "inheritor type '" + (*inheritor)->type_name() +
                    "' does not declare inheritor-in '" + def->name + "'",
                {}, entity);
    }
  }

  // CAD105: object-level inheritance cycles (each reported once).
  void CheckObjectCycles() {
    std::set<uint64_t> on_reported_cycle;
    for (Surrogate start : store_.AllObjects()) {
      Result<const DbObject*> obj = store_.Get(start);
      if (!obj.ok() || (*obj)->kind() != ObjKind::kObject) continue;
      std::map<uint64_t, size_t> pos;
      std::vector<uint64_t> path;
      Surrogate cur = start;
      while (cur.valid()) {
        auto seen = pos.find(cur.id);
        if (seen != pos.end()) {
          ReportObjectCycle(
              std::vector<uint64_t>(path.begin() + seen->second, path.end()),
              &on_reported_cycle);
          break;
        }
        pos[cur.id] = path.size();
        path.push_back(cur.id);
        Result<const DbObject*> node = store_.Get(cur);
        if (!node.ok() || !(*node)->bound_inher_rel().valid()) break;
        Result<const DbObject*> rel = store_.Get((*node)->bound_inher_rel());
        if (!rel.ok()) break;
        cur = (*rel)->Participant("transmitter");
      }
    }
  }

  void ReportObjectCycle(const std::vector<uint64_t>& cycle,
                         std::set<uint64_t>* on_reported_cycle) {
    for (uint64_t id : cycle) {
      if (on_reported_cycle->count(id) > 0) return;
    }
    on_reported_cycle->insert(cycle.begin(), cycle.end());
    uint64_t anchor = *std::min_element(cycle.begin(), cycle.end());
    std::string rendered;
    for (uint64_t id : cycle) rendered += "@" + std::to_string(id) + " -> ";
    rendered += "@" + std::to_string(cycle.front());
    bag_->Add("CAD105", Severity::kError,
              "object-level inheritance cycle: " + rendered, {},
              "object @" + std::to_string(anchor));
  }

  const ObjectStore& store_;
  const InheritanceManager* inheritance_;
  DiagnosticBag* bag_;
};

}  // namespace

DiagnosticBag AnalyzeSchema(const Catalog& catalog) {
  DiagnosticBag bag;
  SchemaAnalyzer(catalog, &bag).Run();
  bag.Sort();
  return bag;
}

DiagnosticBag AnalyzeStore(const ObjectStore& store,
                           const InheritanceManager* inheritance) {
  DiagnosticBag bag;
  StoreAnalyzer(store, inheritance, &bag).Run();
  bag.Sort();
  return bag;
}

DiagnosticBag AnalyzeDatabase(const ObjectStore& store,
                              const InheritanceManager* inheritance) {
  DiagnosticBag bag = AnalyzeSchema(store.catalog());
  bag.Merge(AnalyzeStore(store, inheritance));
  bag.Sort();
  return bag;
}

}  // namespace analysis
}  // namespace caddb

#ifndef CADDB_ANALYSIS_DIAGNOSTICS_H_
#define CADDB_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/source_loc.h"

namespace caddb {
namespace analysis {

enum class Severity {
  kError,    // the schema/store is broken; operations will misbehave
  kWarning,  // legal but almost certainly unintended
  kNote,     // supplementary information attached to another finding
};

const char* SeverityName(Severity severity);

/// Stable diagnostic codes. Values are part of the tool's contract:
/// scripts filter on them, tests pin them, and renumbering breaks both —
/// append new codes, never reuse retired ones.
///
/// The single source of truth for the code families is CodeRegistry()
/// below (diagnostics.cc): every code any analyzer emits must be registered
/// there with a one-line description, the table in DESIGN.md §8/§13 is kept
/// in sync with the registry by analysis_test, and nothing else documents
/// the codes. Families:
///
///   CAD0xx  schema-level (catalog) findings
///   CAD1xx  store-level (live fsck) findings
///   CAD2xx  replication divergence (Follower quarantine verdicts)
///   CAD3xx  offline disk verification (`check disk`, disk_verifier.h):
///           pages.db / WAL / checkpoint / MANIFEST single-artifact audits
///           plus the cross-artifact invariants between them

/// One row of the code registry: the machine-stable code plus its
/// human-readable one-liner (what the DESIGN.md table renders).
struct DiagnosticCodeInfo {
  const char* code;
  const char* summary;
};

/// Every registered diagnostic code, ordered by code. Append-only.
const std::vector<DiagnosticCodeInfo>& CodeRegistry();

/// Registry lookup; nullptr for an unregistered code (a bug — the registry
/// test fails on any emitted-but-unregistered code).
const DiagnosticCodeInfo* FindCodeInfo(const std::string& code);

/// One finding of the static analyzer.
struct Diagnostic {
  std::string code;     // "CAD001", ...
  Severity severity = Severity::kError;
  std::string message;  // human-readable, single line
  SourceLoc loc;        // DDL position when known
  std::string entity;   // owning construct, e.g. "obj-type Gate" or "@12"
  std::string hint;     // optional fix-it, e.g. "did you mean 'Length'?"
};

/// Ordered collection of findings plus the text / JSON renderers.
class DiagnosticBag {
 public:
  void Add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void Add(std::string code, Severity severity, std::string message,
           SourceLoc loc = {}, std::string entity = "", std::string hint = "");

  /// Appends every finding of `other`.
  void Merge(const DiagnosticBag& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }
  size_t error_count() const { return Count(Severity::kError); }
  size_t warning_count() const { return Count(Severity::kWarning); }
  bool HasErrors() const { return error_count() > 0; }

  /// True when some finding carries `code` ("CAD005").
  bool Has(const std::string& code) const;

  /// Stable order for rendering: errors before warnings before notes,
  /// then by source line, then by code. Insertion order breaks ties.
  void Sort();

  /// One line per finding:
  ///   CAD005 error: <message> [obj-type Gate @ line 3, column 7]
  ///       hint: did you mean 'Length'?
  std::string RenderText() const;

  /// {"diagnostics":[{"code":...,"severity":...,"message":...,
  ///   "line":...,"column":...,"entity":...,"hint":...},...],
  ///  "errors":N,"warnings":N,"notes":N}
  /// `line`/`column` are present only for located findings, `hint` only
  /// when non-empty. Output is valid JSON (strings escaped).
  std::string RenderJson() const;

  /// "clean" or "3 errors, 1 warning".
  std::string Summary() const;

 private:
  size_t Count(Severity severity) const;

  std::vector<Diagnostic> diagnostics_;
};

}  // namespace analysis
}  // namespace caddb

#endif  // CADDB_ANALYSIS_DIAGNOSTICS_H_

#ifndef CADDB_ANALYSIS_DIAGNOSTICS_H_
#define CADDB_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/source_loc.h"

namespace caddb {
namespace analysis {

enum class Severity {
  kError,    // the schema/store is broken; operations will misbehave
  kWarning,  // legal but almost certainly unintended
  kNote,     // supplementary information attached to another finding
};

const char* SeverityName(Severity severity);

/// Stable diagnostic codes. Values are part of the tool's contract:
/// scripts filter on them, tests pin them, and renumbering breaks both —
/// append new codes, never reuse retired ones. CAD0xx are schema-level
/// (catalog) findings, CAD1xx are store-level (fsck) findings.
///
///   CAD001  inheritance cycle (inheritor-in / transmitter chain)
///   CAD002  inher-rel-type names an unknown transmitter type
///   CAD003  inher-rel-type names an unknown inheritor type
///   CAD004  obj-type is inheritor-in an unknown inher-rel-type
///   CAD005  inheritor type mismatch (rel requires a different inheritor)
///   CAD006  inheriting clause names no attribute/subclass of transmitter
///   CAD007  local declaration shadows an inherited item
///   CAD008  constraint expression references an unknown name
///   CAD009  subclass has an unknown element type
///   CAD010  subrel has an unknown rel-type
///   CAD011  participant role has an unknown object type
///   CAD012  unresolved domain reference
///   CAD013  inher-rel-type is never used as anyone's inheritor-in
///   CAD014  inheritor-type restriction no type can ever satisfy
///   CAD101  dangling surrogate reference
///   CAD102  orphaned subobject (containment back-pointer broken)
///   CAD103  locally stored value for an inherited (read-only) attribute
///   CAD104  live object of an unregistered type
///   CAD105  inheritance binding inconsistency
///   CAD106  store index inconsistency (extent / class / where-used)
///   CAD107  resolution-cache entry disagrees with a fresh resolution
///
/// CAD2xx are replication findings, raised by replication::Follower when it
/// refuses to apply shipped state (the replica quarantines itself rather
/// than diverge silently):
///
///   CAD201  primary log generation moved backwards
///   CAD202  checkpoint anchor moved backwards within one generation
///   CAD203  replayed log prefix no longer matches what was applied
///           (history rewritten under the follower's feet)
///   CAD204  manifest structurally inconsistent (overlapping/backwards
///           segments, tail before checkpoint, ...)
///   CAD205  shipped state fails replay or fsck despite valid checksums

/// One finding of the static analyzer.
struct Diagnostic {
  std::string code;     // "CAD001", ...
  Severity severity = Severity::kError;
  std::string message;  // human-readable, single line
  SourceLoc loc;        // DDL position when known
  std::string entity;   // owning construct, e.g. "obj-type Gate" or "@12"
  std::string hint;     // optional fix-it, e.g. "did you mean 'Length'?"
};

/// Ordered collection of findings plus the text / JSON renderers.
class DiagnosticBag {
 public:
  void Add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void Add(std::string code, Severity severity, std::string message,
           SourceLoc loc = {}, std::string entity = "", std::string hint = "");

  /// Appends every finding of `other`.
  void Merge(const DiagnosticBag& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }
  size_t error_count() const { return Count(Severity::kError); }
  size_t warning_count() const { return Count(Severity::kWarning); }
  bool HasErrors() const { return error_count() > 0; }

  /// True when some finding carries `code` ("CAD005").
  bool Has(const std::string& code) const;

  /// Stable order for rendering: errors before warnings before notes,
  /// then by source line, then by code. Insertion order breaks ties.
  void Sort();

  /// One line per finding:
  ///   CAD005 error: <message> [obj-type Gate @ line 3, column 7]
  ///       hint: did you mean 'Length'?
  std::string RenderText() const;

  /// {"diagnostics":[{"code":...,"severity":...,"message":...,
  ///   "line":...,"column":...,"entity":...,"hint":...},...],
  ///  "errors":N,"warnings":N,"notes":N}
  /// `line`/`column` are present only for located findings, `hint` only
  /// when non-empty. Output is valid JSON (strings escaped).
  std::string RenderJson() const;

  /// "clean" or "3 errors, 1 warning".
  std::string Summary() const;

 private:
  size_t Count(Severity severity) const;

  std::vector<Diagnostic> diagnostics_;
};

}  // namespace analysis
}  // namespace caddb

#endif  // CADDB_ANALYSIS_DIAGNOSTICS_H_

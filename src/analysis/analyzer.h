#ifndef CADDB_ANALYSIS_ANALYZER_H_
#define CADDB_ANALYSIS_ANALYZER_H_

#include "analysis/diagnostics.h"

namespace caddb {

class Catalog;
class InheritanceManager;
class ObjectStore;

namespace analysis {

/// Static integrity analyzer (`caddb check`). Two groups of passes:
///
///  * Schema passes (CAD0xx) walk the catalog and report *every* defect —
///    unlike Catalog::Validate(), which stops at the first — with DDL
///    source locations and nearest-name fix-it hints: inheritance-graph
///    cycles, dangling transmitter/inheritor/inheritor-in references,
///    permeability clauses naming nothing the transmitter provides,
///    shadowing across multi-level hierarchies, constraint expressions
///    referencing unknown names, unresolved domains/element types/roles,
///    and never-bindable inheritance relationship types.
///
///  * Store passes (CAD1xx, "fsck") walk every live object and verify the
///    invariants the store maintains incrementally: no dangling surrogates,
///    containment back-pointers match member lists, no locally stored
///    values for inherited (read-only) attributes, binding symmetry of
///    inheritance relationships, index consistency (extents / classes /
///    where-used), and — when an InheritanceManager is supplied — that
///    every still-valid resolution-cache entry agrees with a fresh
///    uncached resolution.
///
/// All passes are read-only and report into a DiagnosticBag; they never
/// repair. Diagnostics come back sorted (errors first, then by line).

/// Runs every schema pass over `catalog`.
DiagnosticBag AnalyzeSchema(const Catalog& catalog);

/// Runs every store pass over `store`. `inheritance` may be null; when
/// given, its resolution cache is audited against fresh resolutions
/// (CAD107).
DiagnosticBag AnalyzeStore(const ObjectStore& store,
                           const InheritanceManager* inheritance = nullptr);

/// Schema passes followed by store passes, merged and sorted.
DiagnosticBag AnalyzeDatabase(const ObjectStore& store,
                              const InheritanceManager* inheritance = nullptr);

}  // namespace analysis
}  // namespace caddb

#endif  // CADDB_ANALYSIS_ANALYZER_H_

#include "values/value.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace caddb {

Value Value::Null() { return Value(); }

Value Value::Int(int64_t v) {
  Value out;
  out.kind_ = Kind::kInt;
  out.int_ = v;
  return out;
}

Value Value::Real(double v) {
  Value out;
  out.kind_ = Kind::kReal;
  out.real_ = v;
  return out;
}

Value Value::Bool(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.int_ = v ? 1 : 0;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.str_ = std::move(v);
  return out;
}

Value Value::Enum(std::string symbol) {
  Value out;
  out.kind_ = Kind::kEnum;
  out.str_ = std::move(symbol);
  return out;
}

Value Value::Record(std::vector<Field> fields) {
  Value out;
  out.kind_ = Kind::kRecord;
  out.record_ = std::move(fields);
  return out;
}

Value Value::List(std::vector<Value> elements) {
  Value out;
  out.kind_ = Kind::kList;
  out.elems_ = std::move(elements);
  return out;
}

Value Value::Set(std::vector<Value> elements) {
  Value out;
  out.kind_ = Kind::kSet;
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  out.elems_ = std::move(elements);
  return out;
}

Value Value::Matrix(size_t rows, size_t cols, std::vector<Value> elements) {
  assert(elements.size() == rows * cols);
  Value out;
  out.kind_ = Kind::kMatrix;
  out.rows_ = rows;
  out.cols_ = cols;
  out.elems_ = std::move(elements);
  return out;
}

Value Value::Ref(Surrogate s) {
  Value out;
  out.kind_ = Kind::kRef;
  out.int_ = static_cast<int64_t>(s.id);
  return out;
}

Value Value::Point(int64_t x, int64_t y) {
  return Record({{"X", Int(x)}, {"Y", Int(y)}});
}

int64_t Value::AsInt() const {
  assert(kind_ == Kind::kInt || kind_ == Kind::kBool);
  return int_;
}

double Value::AsReal() const {
  assert(kind_ == Kind::kReal || kind_ == Kind::kInt);
  return kind_ == Kind::kReal ? real_ : static_cast<double>(int_);
}

bool Value::AsBool() const {
  assert(kind_ == Kind::kBool);
  return int_ != 0;
}

const std::string& Value::AsString() const {
  assert(kind_ == Kind::kString || kind_ == Kind::kEnum);
  return str_;
}

Surrogate Value::AsRef() const {
  assert(kind_ == Kind::kRef);
  return Surrogate(static_cast<uint64_t>(int_));
}

const std::vector<Value::Field>& Value::fields() const {
  assert(kind_ == Kind::kRecord);
  return record_;
}

const std::vector<Value>& Value::elements() const {
  assert(kind_ == Kind::kList || kind_ == Kind::kSet ||
         kind_ == Kind::kMatrix);
  return elems_;
}

Result<Value> Value::Field_(const std::string& name) const {
  if (kind_ != Kind::kRecord) {
    return TypeMismatch("field access '" + name + "' on non-record value " +
                        ToString());
  }
  for (const Field& f : record_) {
    if (f.first == name) return f.second;
  }
  return NotFound("record has no field '" + name + "'");
}

size_t Value::size() const {
  switch (kind_) {
    case Kind::kList:
    case Kind::kSet:
    case Kind::kMatrix:
      return elems_.size();
    case Kind::kRecord:
      return record_.size();
    default:
      return 0;
  }
}

bool Value::Contains(const Value& v) const {
  if (kind_ == Kind::kSet) {
    return std::binary_search(elems_.begin(), elems_.end(), v);
  }
  if (kind_ == Kind::kList || kind_ == Kind::kMatrix) {
    return std::find(elems_.begin(), elems_.end(), v) != elems_.end();
  }
  return false;
}

void Value::SetInsert(Value v) {
  assert(kind_ == Kind::kSet);
  auto it = std::lower_bound(elems_.begin(), elems_.end(), v);
  if (it != elems_.end() && *it == v) return;
  elems_.insert(it, std::move(v));
}

void Value::ListAppend(Value v) {
  assert(kind_ == Kind::kList);
  elems_.push_back(std::move(v));
}

namespace {

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  // Numeric kinds compare cross-kind by value so `3 = 3.0` holds; all other
  // kind mixes order by kind tag.
  bool self_num = kind_ == Kind::kInt || kind_ == Kind::kReal;
  bool other_num = other.kind_ == Kind::kInt || other.kind_ == Kind::kReal;
  if (self_num && other_num) {
    if (kind_ == Kind::kInt && other.kind_ == Kind::kInt) {
      return Cmp(int_, other.int_);
    }
    return Cmp(AsReal(), other.AsReal());
  }
  if (kind_ != other.kind_) {
    return Cmp(static_cast<int>(kind_), static_cast<int>(other.kind_));
  }
  switch (kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kInt:
    case Kind::kBool:
    case Kind::kRef:
      return Cmp(int_, other.int_);
    case Kind::kReal:
      return Cmp(real_, other.real_);
    case Kind::kString:
    case Kind::kEnum:
      return str_.compare(other.str_);
    case Kind::kRecord: {
      int c = Cmp(record_.size(), other.record_.size());
      if (c != 0) return c;
      for (size_t i = 0; i < record_.size(); ++i) {
        c = record_[i].first.compare(other.record_[i].first);
        if (c != 0) return c;
        c = record_[i].second.Compare(other.record_[i].second);
        if (c != 0) return c;
      }
      return 0;
    }
    case Kind::kList:
    case Kind::kSet:
    case Kind::kMatrix: {
      if (kind_ == Kind::kMatrix) {
        int c = Cmp(rows_, other.rows_);
        if (c != 0) return c;
        c = Cmp(cols_, other.cols_);
        if (c != 0) return c;
      }
      int c = Cmp(elems_.size(), other.elems_.size());
      if (c != 0) return c;
      for (size_t i = 0; i < elems_.size(); ++i) {
        c = elems_[i].Compare(other.elems_[i]);
        if (c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kReal: {
      std::string s = std::to_string(real_);
      return s;
    }
    case Kind::kBool:
      return int_ ? "true" : "false";
    case Kind::kString:
      return "\"" + str_ + "\"";
    case Kind::kEnum:
      return str_;
    case Kind::kRef:
      return "@" + std::to_string(int_);
    case Kind::kRecord: {
      std::string out = "{";
      for (size_t i = 0; i < record_.size(); ++i) {
        if (i > 0) out += ", ";
        out += record_[i].first + ": " + record_[i].second.ToString();
      }
      return out + "}";
    }
    case Kind::kList:
    case Kind::kSet: {
      std::string out = kind_ == Kind::kList ? "[" : "{|";
      for (size_t i = 0; i < elems_.size(); ++i) {
        if (i > 0) out += ", ";
        out += elems_[i].ToString();
      }
      return out + (kind_ == Kind::kList ? "]" : "|}");
    }
    case Kind::kMatrix: {
      std::string out = "matrix(" + std::to_string(rows_) + "x" +
                        std::to_string(cols_) + ")[";
      for (size_t i = 0; i < elems_.size(); ++i) {
        if (i > 0) out += ", ";
        out += elems_[i].ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

const char* ValueKindName(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kNull:
      return "null";
    case Value::Kind::kInt:
      return "int";
    case Value::Kind::kReal:
      return "real";
    case Value::Kind::kBool:
      return "bool";
    case Value::Kind::kString:
      return "string";
    case Value::Kind::kEnum:
      return "enum";
    case Value::Kind::kRecord:
      return "record";
    case Value::Kind::kList:
      return "list";
    case Value::Kind::kSet:
      return "set";
    case Value::Kind::kMatrix:
      return "matrix";
    case Value::Kind::kRef:
      return "ref";
  }
  return "?";
}

}  // namespace caddb

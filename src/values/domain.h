#ifndef CADDB_VALUES_DOMAIN_H_
#define CADDB_VALUES_DOMAIN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "values/value.h"

namespace caddb {

/// Structural description of an attribute's legal values. Domains "may be
/// simple (integer, string, etc.) or structured (using constructors as
/// record, list-of, set-of, etc.)" (paper section 3).
///
/// Domains are value types; nested structure is shared via shared_ptr so
/// copies of deep domains stay cheap.
class Domain {
 public:
  enum class Kind {
    kInt,
    kReal,
    kBool,
    kString,  // covers the paper's `char`
    kEnum,    // (IN, OUT) style symbol list
    kRecord,
    kListOf,
    kSetOf,
    kMatrixOf,
    kRef,    // surrogate reference, optionally restricted to one object type
    kNamed,  // deferred reference to a catalog-registered domain name
  };

  using RecordField = std::pair<std::string, Domain>;

  Domain() : kind_(Kind::kInt) {}

  static Domain Int();
  static Domain Real();
  static Domain Bool();
  static Domain String();
  static Domain Enum(std::vector<std::string> symbols);
  static Domain Record(std::vector<RecordField> fields);
  static Domain ListOf(Domain element);
  static Domain SetOf(Domain element);
  static Domain MatrixOf(Domain element);
  /// `type_name` empty means a reference to any object.
  static Domain Ref(std::string type_name = "");
  /// Reference to a domain registered in the catalog under `name`; resolved
  /// at validation time through a DomainResolver.
  static Domain Named(std::string name);
  /// The (X, Y: integer) point record used throughout the paper.
  static Domain Point();

  Kind kind() const { return kind_; }
  const std::vector<std::string>& symbols() const { return symbols_; }
  const std::vector<RecordField>& record_fields() const { return fields_; }
  const Domain& element() const { return *element_; }
  const std::string& name() const { return name_; }  // kNamed / kRef type

  /// Resolves kNamed domains. Implemented by the catalog.
  class Resolver {
   public:
    virtual ~Resolver() = default;
    virtual Result<Domain> ResolveDomain(const std::string& name) const = 0;
  };

  /// Checks that `v` structurally satisfies this domain. Null is accepted for
  /// every domain (attributes start unset). `resolver` may be null when the
  /// domain tree contains no kNamed nodes.
  Status Validate(const Value& v, const Resolver* resolver = nullptr) const;

  /// A canonical "empty" value: 0 / false / "" / first enum symbol / empty
  /// collection / null-ref / record of defaults.
  Value DefaultValue(const Resolver* resolver = nullptr) const;

  /// Readable form, e.g. `set-of {PinId: integer, InOut: (IN, OUT)}`.
  std::string ToString() const;

 private:
  Kind kind_;
  std::vector<std::string> symbols_;   // kEnum
  std::vector<RecordField> fields_;    // kRecord
  std::shared_ptr<Domain> element_;    // kListOf / kSetOf / kMatrixOf
  std::string name_;                   // kNamed name or kRef type restriction
};

}  // namespace caddb

#endif  // CADDB_VALUES_DOMAIN_H_

#ifndef CADDB_VALUES_VALUE_H_
#define CADDB_VALUES_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace caddb {

/// System-wide object identifier ("any object has an attribute called
/// surrogate which allows a system-wide identification", paper section 3).
/// Strongly typed wrapper so surrogates cannot be confused with integers.
struct Surrogate {
  uint64_t id = 0;

  constexpr Surrogate() = default;
  constexpr explicit Surrogate(uint64_t v) : id(v) {}

  constexpr bool valid() const { return id != 0; }
  static constexpr Surrogate Invalid() { return Surrogate(); }

  friend constexpr bool operator==(Surrogate a, Surrogate b) {
    return a.id == b.id;
  }
  friend constexpr bool operator!=(Surrogate a, Surrogate b) {
    return a.id != b.id;
  }
  friend constexpr bool operator<(Surrogate a, Surrogate b) {
    return a.id < b.id;
  }
};

/// Tagged, deeply comparable attribute value. Covers the paper's simple
/// domains (integer, boolean, char/string, enumeration symbols) and its
/// structured constructors (record, list-of, set-of, matrix-of) plus
/// surrogate references for relating objects.
class Value {
 public:
  enum class Kind {
    kNull,
    kInt,
    kReal,
    kBool,
    kString,
    kEnum,    // an enumeration symbol such as IN, OUT, AND, wood
    kRecord,  // named fields, canonical order = declaration order
    kList,    // ordered, duplicates allowed
    kSet,     // unordered semantics; stored sorted & deduplicated
    kMatrix,  // rows x cols, row-major elements
    kRef,     // surrogate reference to another object
  };

  using Field = std::pair<std::string, Value>;

  Value() : kind_(Kind::kNull) {}

  static Value Null();
  static Value Int(int64_t v);
  static Value Real(double v);
  static Value Bool(bool v);
  static Value String(std::string v);
  static Value Enum(std::string symbol);
  static Value Record(std::vector<Field> fields);
  static Value List(std::vector<Value> elements);
  /// Sorts and deduplicates `elements` into canonical set form.
  static Value Set(std::vector<Value> elements);
  static Value Matrix(size_t rows, size_t cols, std::vector<Value> elements);
  static Value Ref(Surrogate s);
  /// Convenience for the ubiquitous (X, Y: integer) Point record.
  static Value Point(int64_t x, int64_t y);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Scalar accessors; preconditions checked with assert in debug builds.
  int64_t AsInt() const;
  double AsReal() const;
  bool AsBool() const;
  const std::string& AsString() const;  // kString or kEnum symbol
  Surrogate AsRef() const;

  // Structured accessors.
  const std::vector<Field>& fields() const;          // kRecord
  const std::vector<Value>& elements() const;        // kList/kSet/kMatrix
  size_t rows() const { return rows_; }              // kMatrix
  size_t cols() const { return cols_; }              // kMatrix

  /// Record field lookup by name; kNotFound if absent or not a record.
  Result<Value> Field_(const std::string& name) const;

  /// List/set element count; 0 for non-collections.
  size_t size() const;

  /// Set membership / list containment by deep equality.
  bool Contains(const Value& v) const;

  /// Inserts into a set value keeping canonical order; no-op on duplicates.
  /// Precondition: kind() == kSet.
  void SetInsert(Value v);
  /// Appends to a list value. Precondition: kind() == kList.
  void ListAppend(Value v);

  /// Total order over all values: first by kind, then by content. Gives the
  /// canonical set ordering and a deterministic sort for query output.
  int Compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

  /// Display form, e.g. {X: 3, Y: 4}, [1, 2], (IN), "abc", @17.
  std::string ToString() const;

 private:
  Kind kind_;
  int64_t int_ = 0;  // also Bool (0/1) and Ref (surrogate id)
  double real_ = 0.0;
  std::string str_;                  // kString / kEnum
  std::vector<Field> record_;        // kRecord
  std::vector<Value> elems_;         // kList / kSet / kMatrix
  size_t rows_ = 0, cols_ = 0;       // kMatrix
};

/// Kind name for diagnostics ("int", "set", ...).
const char* ValueKindName(Value::Kind kind);

}  // namespace caddb

#endif  // CADDB_VALUES_VALUE_H_

#include "values/domain.h"

#include <algorithm>

namespace caddb {

Domain Domain::Int() {
  Domain d;
  d.kind_ = Kind::kInt;
  return d;
}

Domain Domain::Real() {
  Domain d;
  d.kind_ = Kind::kReal;
  return d;
}

Domain Domain::Bool() {
  Domain d;
  d.kind_ = Kind::kBool;
  return d;
}

Domain Domain::String() {
  Domain d;
  d.kind_ = Kind::kString;
  return d;
}

Domain Domain::Enum(std::vector<std::string> symbols) {
  Domain d;
  d.kind_ = Kind::kEnum;
  d.symbols_ = std::move(symbols);
  return d;
}

Domain Domain::Record(std::vector<RecordField> fields) {
  Domain d;
  d.kind_ = Kind::kRecord;
  d.fields_ = std::move(fields);
  return d;
}

Domain Domain::ListOf(Domain element) {
  Domain d;
  d.kind_ = Kind::kListOf;
  d.element_ = std::make_shared<Domain>(std::move(element));
  return d;
}

Domain Domain::SetOf(Domain element) {
  Domain d;
  d.kind_ = Kind::kSetOf;
  d.element_ = std::make_shared<Domain>(std::move(element));
  return d;
}

Domain Domain::MatrixOf(Domain element) {
  Domain d;
  d.kind_ = Kind::kMatrixOf;
  d.element_ = std::make_shared<Domain>(std::move(element));
  return d;
}

Domain Domain::Ref(std::string type_name) {
  Domain d;
  d.kind_ = Kind::kRef;
  d.name_ = std::move(type_name);
  return d;
}

Domain Domain::Named(std::string name) {
  Domain d;
  d.kind_ = Kind::kNamed;
  d.name_ = std::move(name);
  return d;
}

Domain Domain::Point() {
  return Record({{"X", Int()}, {"Y", Int()}});
}

Status Domain::Validate(const Value& v, const Resolver* resolver) const {
  if (v.is_null()) return OkStatus();  // unset attribute
  switch (kind_) {
    case Kind::kInt:
      if (v.kind() != Value::Kind::kInt) {
        return TypeMismatch("expected integer, got " + v.ToString());
      }
      return OkStatus();
    case Kind::kReal:
      if (v.kind() != Value::Kind::kReal && v.kind() != Value::Kind::kInt) {
        return TypeMismatch("expected real, got " + v.ToString());
      }
      return OkStatus();
    case Kind::kBool:
      if (v.kind() != Value::Kind::kBool) {
        return TypeMismatch("expected boolean, got " + v.ToString());
      }
      return OkStatus();
    case Kind::kString:
      if (v.kind() != Value::Kind::kString) {
        return TypeMismatch("expected string, got " + v.ToString());
      }
      return OkStatus();
    case Kind::kEnum: {
      if (v.kind() != Value::Kind::kEnum && v.kind() != Value::Kind::kString) {
        return TypeMismatch("expected enum symbol, got " + v.ToString());
      }
      const std::string& sym = v.AsString();
      if (std::find(symbols_.begin(), symbols_.end(), sym) == symbols_.end()) {
        return TypeMismatch("symbol '" + sym + "' not in enumeration " +
                            ToString());
      }
      return OkStatus();
    }
    case Kind::kRecord: {
      if (v.kind() != Value::Kind::kRecord) {
        return TypeMismatch("expected record " + ToString() + ", got " +
                            v.ToString());
      }
      // Every value field must correspond to a declared field and validate;
      // missing fields are treated as unset (null) and therefore legal.
      for (const auto& vf : v.fields()) {
        const Domain* fd = nullptr;
        for (const auto& df : fields_) {
          if (df.first == vf.first) {
            fd = &df.second;
            break;
          }
        }
        if (fd == nullptr) {
          return TypeMismatch("record field '" + vf.first +
                              "' not declared in " + ToString());
        }
        CADDB_RETURN_IF_ERROR(fd->Validate(vf.second, resolver));
      }
      return OkStatus();
    }
    case Kind::kListOf:
    case Kind::kSetOf:
    case Kind::kMatrixOf: {
      Value::Kind want = kind_ == Kind::kListOf    ? Value::Kind::kList
                         : kind_ == Kind::kSetOf   ? Value::Kind::kSet
                                                   : Value::Kind::kMatrix;
      if (v.kind() != want) {
        return TypeMismatch("expected " + ToString() + ", got " +
                            v.ToString());
      }
      for (const Value& e : v.elements()) {
        CADDB_RETURN_IF_ERROR(element_->Validate(e, resolver));
      }
      return OkStatus();
    }
    case Kind::kRef:
      if (v.kind() != Value::Kind::kRef) {
        return TypeMismatch("expected object reference, got " + v.ToString());
      }
      // Type restriction (name_) is checked by the store, which knows the
      // referenced object's type.
      return OkStatus();
    case Kind::kNamed: {
      if (resolver == nullptr) {
        return InternalError("named domain '" + name_ +
                             "' validated without a resolver");
      }
      Result<Domain> resolved = resolver->ResolveDomain(name_);
      if (!resolved.ok()) return resolved.status();
      return resolved->Validate(v, resolver);
    }
  }
  return InternalError("unhandled domain kind");
}

Value Domain::DefaultValue(const Resolver* resolver) const {
  switch (kind_) {
    case Kind::kInt:
      return Value::Int(0);
    case Kind::kReal:
      return Value::Real(0.0);
    case Kind::kBool:
      return Value::Bool(false);
    case Kind::kString:
      return Value::String("");
    case Kind::kEnum:
      return symbols_.empty() ? Value::Null() : Value::Enum(symbols_[0]);
    case Kind::kRecord: {
      std::vector<Value::Field> fields;
      fields.reserve(fields_.size());
      for (const auto& f : fields_) {
        fields.emplace_back(f.first, f.second.DefaultValue(resolver));
      }
      return Value::Record(std::move(fields));
    }
    case Kind::kListOf:
      return Value::List({});
    case Kind::kSetOf:
      return Value::Set({});
    case Kind::kMatrixOf:
      return Value::Matrix(0, 0, {});
    case Kind::kRef:
      return Value::Ref(Surrogate::Invalid());
    case Kind::kNamed: {
      if (resolver != nullptr) {
        Result<Domain> resolved = resolver->ResolveDomain(name_);
        if (resolved.ok()) return resolved->DefaultValue(resolver);
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

std::string Domain::ToString() const {
  switch (kind_) {
    case Kind::kInt:
      return "integer";
    case Kind::kReal:
      return "real";
    case Kind::kBool:
      return "boolean";
    case Kind::kString:
      return "string";
    case Kind::kEnum: {
      std::string out = "(";
      for (size_t i = 0; i < symbols_.size(); ++i) {
        if (i > 0) out += ", ";
        out += symbols_[i];
      }
      return out + ")";
    }
    case Kind::kRecord: {
      std::string out = "{";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields_[i].first + ": " + fields_[i].second.ToString();
      }
      return out + "}";
    }
    case Kind::kListOf:
      return "list-of " + element_->ToString();
    case Kind::kSetOf:
      return "set-of " + element_->ToString();
    case Kind::kMatrixOf:
      return "matrix-of " + element_->ToString();
    case Kind::kRef:
      return name_.empty() ? "object" : ("object-of-type " + name_);
    case Kind::kNamed:
      return name_;
  }
  return "?";
}

}  // namespace caddb

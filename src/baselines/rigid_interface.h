#ifndef CADDB_BASELINES_RIGID_INTERFACE_H_
#define CADDB_BASELINES_RIGID_INTERFACE_H_

#include <set>
#include <string>

#include "inherit/inheritance.h"
#include "util/result.h"

namespace caddb {

/// Baseline B3: the *rigid* interface concept the paper argues against
/// (section 4.2; cf. the version generalization of [BaKi85]). Under this
/// regime:
///   - an interface type must be a single abstraction level (it may not
///     itself inherit from a more abstract interface), and
///   - an interface object is *frozen* as soon as it has implementations:
///     every update is rejected "to avoid inconsistencies".
/// Evolving a frozen interface therefore requires creating a brand-new
/// interface object and rebinding every implementation — the operation count
/// the flexible model avoids (measured in bench_inheritance).
class RigidInterfaceRegistry {
 public:
  /// `manager` is not owned and must outlive the registry.
  explicit RigidInterfaceRegistry(InheritanceManager* manager)
      : manager_(manager) {}

  RigidInterfaceRegistry(const RigidInterfaceRegistry&) = delete;
  RigidInterfaceRegistry& operator=(const RigidInterfaceRegistry&) = delete;

  /// Declares `type_name` a rigid interface type. Fails if the type itself
  /// declares inheritor-in (rigid interfaces are single-level).
  Status DeclareRigidInterface(const std::string& type_name);
  bool IsRigidInterfaceType(const std::string& type_name) const;

  /// True when `s` is an instance of a rigid interface type with at least
  /// one bound inheritor (and therefore frozen).
  Result<bool> IsFrozen(Surrogate s) const;

  /// SetAttribute guarded by the freeze rule; delegates to the inheritance
  /// manager otherwise.
  Status GuardedSetAttribute(Surrogate s, const std::string& attr, Value v);

  /// The rigid evolution path: creates a fresh interface object of the same
  /// type, copies all attributes (with `attr` set to `v`), rebinds every
  /// implementation to it, and returns the new interface. The returned
  /// operation count (out parameter) is 1 create + N attribute copies +
  /// 2 * M rebinds — the price of rigidity.
  Result<Surrogate> EvolveFrozenInterface(Surrogate old_interface,
                                          const std::string& attr, Value v,
                                          size_t* operation_count);

 private:
  InheritanceManager* manager_;
  std::set<std::string> rigid_types_;
};

}  // namespace caddb

#endif  // CADDB_BASELINES_RIGID_INTERFACE_H_

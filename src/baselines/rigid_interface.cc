#include "baselines/rigid_interface.h"

namespace caddb {

Status RigidInterfaceRegistry::DeclareRigidInterface(
    const std::string& type_name) {
  const ObjectTypeDef* def =
      manager_->store()->catalog().FindObjectType(type_name);
  if (def == nullptr) {
    return NotFound("object type '" + type_name + "' is not registered");
  }
  if (!def->inheritor_in.empty()) {
    return FailedPrecondition(
        "rigid interfaces are single-level: type '" + type_name +
        "' is itself an inheritor (in '" + def->inheritor_in + "')");
  }
  rigid_types_.insert(type_name);
  return OkStatus();
}

bool RigidInterfaceRegistry::IsRigidInterfaceType(
    const std::string& type_name) const {
  return rigid_types_.count(type_name) > 0;
}

Result<bool> RigidInterfaceRegistry::IsFrozen(Surrogate s) const {
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, manager_->store()->Get(s));
  if (!IsRigidInterfaceType(obj->type_name())) return false;
  CADDB_ASSIGN_OR_RETURN(std::vector<Surrogate> inheritors,
                         manager_->InheritorsOf(s));
  return !inheritors.empty();
}

Status RigidInterfaceRegistry::GuardedSetAttribute(Surrogate s,
                                                   const std::string& attr,
                                                   Value v) {
  CADDB_ASSIGN_OR_RETURN(bool frozen, IsFrozen(s));
  if (frozen) {
    return FailedPrecondition(
        "rigid interface @" + std::to_string(s.id) +
        " is frozen (it has implementations); updates are forbidden — evolve "
        "by creating a new interface object");
  }
  return manager_->SetAttribute(s, attr, std::move(v));
}

Result<Surrogate> RigidInterfaceRegistry::EvolveFrozenInterface(
    Surrogate old_interface, const std::string& attr, Value v,
    size_t* operation_count) {
  size_t ops = 0;
  ObjectStore* store = manager_->store();
  CADDB_ASSIGN_OR_RETURN(const DbObject* old_obj, store->Get(old_interface));
  const std::string type = old_obj->type_name();
  if (!IsRigidInterfaceType(type)) {
    return FailedPrecondition("type '" + type +
                              "' is not a declared rigid interface type");
  }

  // 1 op: create the successor interface object.
  CADDB_ASSIGN_OR_RETURN(Surrogate fresh, store->CreateObject(type));
  ++ops;

  // N ops: copy every attribute, applying the evolution to `attr`.
  Result<EffectiveSchema> schema =
      store->catalog().EffectiveSchemaFor(type);
  if (!schema.ok()) return schema.status();
  for (const AttributeDef& a : schema->attributes) {
    Value value;
    if (a.name == attr) {
      value = v;
    } else {
      CADDB_ASSIGN_OR_RETURN(value,
                             manager_->GetAttribute(old_interface, a.name));
    }
    if (value.is_null()) continue;
    CADDB_RETURN_IF_ERROR(manager_->SetAttribute(fresh, a.name, value));
    ++ops;
  }

  // 2*M ops: rebind every implementation (unbind + bind).
  CADDB_ASSIGN_OR_RETURN(std::vector<Surrogate> implementations,
                         manager_->InheritorsOf(old_interface));
  for (Surrogate impl : implementations) {
    CADDB_ASSIGN_OR_RETURN(Surrogate rel_s, manager_->BindingOf(impl));
    CADDB_ASSIGN_OR_RETURN(const DbObject* rel, store->Get(rel_s));
    const std::string rel_type = rel->type_name();
    CADDB_RETURN_IF_ERROR(manager_->Unbind(impl));
    ++ops;
    Result<Surrogate> rebound = manager_->Bind(impl, fresh, rel_type);
    if (!rebound.ok()) return rebound.status();
    ++ops;
  }

  if (operation_count != nullptr) *operation_count = ops;
  return fresh;
}

}  // namespace caddb

#include "baselines/copy_import.h"

namespace caddb {

Status CopyImportManager::CopyNow(CopyImport* import) {
  const ObjectStore* store = manager_->store();
  CADDB_ASSIGN_OR_RETURN(const DbObject* source, store->Get(import->source));
  for (const std::string& item : import->items) {
    CADDB_ASSIGN_OR_RETURN(Value v,
                           manager_->GetAttribute(import->source, item));
    CADDB_RETURN_IF_ERROR(manager_->SetAttribute(import->target, item, v));
  }
  import->source_version_at_copy = source->version();
  return OkStatus();
}

Result<uint64_t> CopyImportManager::ImportByCopy(
    Surrogate target, Surrogate source, const std::vector<std::string>& items) {
  if (items.empty()) {
    return InvalidArgument("copy import without items");
  }
  CopyImport import;
  import.id = next_id_++;
  import.target = target;
  import.source = source;
  import.items = items;
  CADDB_RETURN_IF_ERROR(CopyNow(&import));
  uint64_t id = import.id;
  imports_[id] = std::move(import);
  return id;
}

Result<bool> CopyImportManager::IsStale(uint64_t import_id) const {
  auto it = imports_.find(import_id);
  if (it == imports_.end()) {
    return NotFound("no copy import with id " + std::to_string(import_id));
  }
  CADDB_ASSIGN_OR_RETURN(const DbObject* source,
                         manager_->store()->Get(it->second.source));
  return source->version() != it->second.source_version_at_copy;
}

Status CopyImportManager::Refresh(uint64_t import_id) {
  auto it = imports_.find(import_id);
  if (it == imports_.end()) {
    return NotFound("no copy import with id " + std::to_string(import_id));
  }
  return CopyNow(&it->second);
}

Result<size_t> CopyImportManager::RefreshAllFrom(Surrogate source) {
  size_t refreshed = 0;
  for (auto& [id, import] : imports_) {
    if (import.source != source) continue;
    CADDB_RETURN_IF_ERROR(CopyNow(&import));
    ++refreshed;
  }
  return refreshed;
}

Result<size_t> CopyImportManager::CountStale() const {
  size_t stale = 0;
  for (const auto& [id, import] : imports_) {
    CADDB_ASSIGN_OR_RETURN(bool is_stale, IsStale(id));
    if (is_stale) ++stale;
  }
  return stale;
}

std::vector<CopyImport> CopyImportManager::imports() const {
  std::vector<CopyImport> out;
  out.reserve(imports_.size());
  for (const auto& [id, import] : imports_) out.push_back(import);
  return out;
}

}  // namespace caddb

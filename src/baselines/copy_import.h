#ifndef CADDB_BASELINES_COPY_IMPORT_H_
#define CADDB_BASELINES_COPY_IMPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "inherit/inheritance.h"
#include "util/result.h"

namespace caddb {

/// One copy-based import: `items` of `source` were copied into `target`'s
/// local attributes at a point in time.
struct CopyImport {
  uint64_t id = 0;
  Surrogate target;
  Surrogate source;
  std::vector<std::string> items;
  /// `source`'s object version when last copied; staleness = the source has
  /// moved past this.
  uint64_t source_version_at_copy = 0;
};

/// Baseline B1 (paper section 2): importing a component by *copying* its
/// data into a local subobject of the composite. The paper's two criticisms
/// are directly observable with this class:
///   1. "O is not informed when updates of the component C occur" — copies
///      go stale (IsStale) and must be refreshed by hand (Refresh /
///      RefreshAllFrom), paying O(#copies) per source update;
///   2. the copy severs the connection — `source` gains no where-used entry.
/// Used as the comparison point in bench_inheritance / bench_composition.
class CopyImportManager {
 public:
  /// `manager` is not owned and must outlive this object.
  explicit CopyImportManager(InheritanceManager* manager)
      : manager_(manager) {}

  CopyImportManager(const CopyImportManager&) = delete;
  CopyImportManager& operator=(const CopyImportManager&) = delete;

  /// Copies the current (effective) values of `items` from `source` into
  /// same-named *own* attributes of `target`. The target's type must declare
  /// those attributes itself — the whole point of the baseline is that the
  /// schema duplicates the component's structure.
  Result<uint64_t> ImportByCopy(Surrogate target, Surrogate source,
                                const std::vector<std::string>& items);

  /// True when `source` changed since the last copy.
  Result<bool> IsStale(uint64_t import_id) const;

  /// Re-copies one import (the manual adaptation step).
  Status Refresh(uint64_t import_id);

  /// Re-copies every import taken from `source`; returns how many were
  /// refreshed. This is the cost a copy-based system pays per source update.
  Result<size_t> RefreshAllFrom(Surrogate source);

  /// Count of imports whose source has changed since their last copy.
  Result<size_t> CountStale() const;

  std::vector<CopyImport> imports() const;

 private:
  Status CopyNow(CopyImport* import);

  InheritanceManager* manager_;
  std::map<uint64_t, CopyImport> imports_;
  uint64_t next_id_ = 1;
};

}  // namespace caddb

#endif  // CADDB_BASELINES_COPY_IMPORT_H_

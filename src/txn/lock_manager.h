#ifndef CADDB_TXN_LOCK_MANAGER_H_
#define CADDB_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "obs/observability.h"
#include "util/status.h"
#include "values/value.h"

namespace caddb {

using TxnId = uint64_t;

enum class LockMode { kShared, kExclusive };

const char* LockModeName(LockMode mode);

/// A lockable unit: a whole object, or the *exported part* of an object —
/// the attribute/subclass set permeable through one inheritance relationship
/// type. Partial locks implement the paper's lock-inheritance: "the parts of
/// the component which are visible in the composite object have to be
/// read-locked when the data is touched in the composite object" (section 6).
struct LockItem {
  Surrogate object;
  /// Empty = whole object; otherwise an inher-rel-type name identifying the
  /// exported item set (its `inheriting` clause).
  std::string part;

  static LockItem Whole(Surrogate s) { return {s, ""}; }
  static LockItem Exported(Surrogate s, std::string inher_rel_type) {
    return {s, std::move(inher_rel_type)};
  }
  bool whole() const { return part.empty(); }
};

/// Strict two-phase lock manager with shared/exclusive modes on whole
/// objects and exported parts, waits-for deadlock detection (the requester
/// closing a cycle is the victim) and bounded waiting.
///
/// Part-vs-part conflicts are decided by permeability overlap: two exported
/// parts of the same object conflict only if their `inheriting` sets
/// intersect; a whole-object item overlaps everything on that object.
///
/// Thread-safe.
class LockManager {
 public:
  /// `catalog` is used to compare exported item sets; not owned. `obs` (not
  /// owned) receives lock counters and wait timings; null falls back to the
  /// process-global obs::Default() bundle.
  explicit LockManager(const Catalog* catalog,
                       obs::Observability* obs = nullptr);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Blocks until granted, deadlock (kDeadlock; requester is victim and holds
  /// nothing new) or timeout (kFailedPrecondition). Re-acquisition by the
  /// same transaction is a no-op; S->X upgrade is supported.
  Status Acquire(TxnId txn, const LockItem& item, LockMode mode,
                 std::chrono::milliseconds timeout =
                     std::chrono::milliseconds(2000));

  /// Releases everything `txn` holds (commit/abort).
  void ReleaseAll(TxnId txn);

  /// Non-blocking check used by tests: would Acquire grant immediately?
  bool WouldGrant(TxnId txn, const LockItem& item, LockMode mode) const;

  /// Number of lock entries held by `txn`.
  size_t HeldCount(TxnId txn) const;
  /// Total granted lock entries.
  size_t TotalHeld() const;

 private:
  struct Entry {
    TxnId txn;
    LockMode mode;
    std::string part;
  };

  bool ItemsOverlap(const std::string& part_a, const std::string& part_b) const;
  bool ModesConflict(LockMode a, LockMode b) const {
    return a == LockMode::kExclusive || b == LockMode::kExclusive;
  }
  /// Conflicting holders of `item` other than `txn` (requires mu_).
  std::vector<TxnId> Blockers(TxnId txn, const LockItem& item,
                              LockMode mode) const;
  /// True if `from` can reach `to` in the waits-for graph (requires mu_).
  bool Reaches(TxnId from, TxnId to) const;

  const Catalog* catalog_;

  obs::Observability* obs_;
  obs::Counter* m_acquires_;
  obs::Counter* m_waits_;
  obs::Counter* m_deadlocks_;
  obs::Counter* m_timeouts_;
  obs::Histogram* m_wait_us_;  // filled only by acquires that blocked

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, std::vector<Entry>> held_;     // object id -> entries
  std::map<TxnId, std::set<TxnId>> waits_for_;
};

}  // namespace caddb

#endif  // CADDB_TXN_LOCK_MANAGER_H_

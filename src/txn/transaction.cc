#include "txn/transaction.h"

#include "wal/wal.h"

namespace caddb {

Result<TxnId> TransactionManager::Begin(const std::string& user) {
  if (user.empty()) return InvalidArgument("transaction without a user");
  std::lock_guard<std::mutex> lock(mu_);
  TxnId id = next_txn_++;
  txns_[id] = TxnState{user, {}};
  return id;
}

Status TransactionManager::Commit(TxnId txn) {
  bool begin_logged = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return NotFound("transaction " + std::to_string(txn) + " is not active");
    }
    begin_logged = it->second.begin_logged;
    if (wal_ == nullptr || !begin_logged) txns_.erase(it);
  }
  // The commit marker goes to the log *before* the locks fall: any
  // conflicting write of another transaction can only be logged after it,
  // so log order stays consistent with the 2PL serialization order.
  if (wal_ != nullptr && begin_logged) {
    Status logged;
    {
      // Marker-lsn assignment and removal from the active set happen
      // atomically with respect to checkpoint capture (which snapshots
      // last_lsn and the undo sets under the same gate). Otherwise a
      // capture could see this transaction as still active while its
      // marker lsn is already at or below the checkpoint lsn — its writes
      // would be masked with before-images AND skipped on replay: a lost
      // update. The fsync wait stays outside the gate.
      std::lock_guard<std::mutex> gate(*store_mu_);
      Result<uint64_t> lsn = wal_->AppendCommitRecord(wal::Record::Commit(txn));
      logged = lsn.ok() ? OkStatus() : lsn.status();
      std::lock_guard<std::mutex> lock(mu_);
      txns_.erase(txn);
    }
    if (logged.ok()) logged = wal_->FinishCommit();
    if (!logged.ok()) {
      locks_->ReleaseAll(txn);
      return logged;
    }
  }
  locks_->ReleaseAll(txn);
  return OkStatus();
}

Status TransactionManager::Abort(TxnId txn) {
  TxnState state;
  {
    // Removal from the active set and the before-image restores happen in
    // one gate hold: a checkpoint capture either still sees the
    // transaction active (and masks its writes with the same before-images
    // the restores are about to apply) or sees the fully restored store —
    // never restored-but-unmasked uncommitted state.
    std::lock_guard<std::mutex> gate(*store_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = txns_.find(txn);
      if (it == txns_.end()) {
        return NotFound("transaction " + std::to_string(txn) +
                        " is not active");
      }
      state = std::move(it->second);
      txns_.erase(it);
    }
    // Restore before-images newest-first while still holding the X-locks.
    for (auto it = state.undo.rbegin(); it != state.undo.rend(); ++it) {
      // Restoration also re-notifies inheritors: their view changed back.
      Status restored =
          manager_->SetAttribute(it->object, it->attr, it->before);
      (void)restored;  // the object may have been deleted meanwhile
    }
  }
  if (wal_ != nullptr && state.begin_logged) {
    // The restores above are not logged; the abort marker tells recovery to
    // skip this transaction's records wholesale. No fsync — an abort that
    // evaporates in a crash aborts again implicitly (no commit marker).
    Result<uint64_t> logged = wal_->Append(wal::Record::Abort(txn));
    if (!logged.ok()) {
      locks_->ReleaseAll(txn);
      return logged.status();
    }
  }
  locks_->ReleaseAll(txn);
  return OkStatus();
}

TransactionManager::UndoSnapshot TransactionManager::SnapshotUndo() const {
  UndoSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, state] : txns_) {
    if (!state.begin_logged) continue;  // no logged writes, nothing to mask
    if (out.oldest_begin_lsn == 0 || state.begin_lsn < out.oldest_begin_lsn) {
      out.oldest_begin_lsn = state.begin_lsn;
    }
    for (const UndoRecord& undo : state.undo) {
      // First write wins: undo records are appended in write order, so the
      // earliest record per (object, attr) holds the pre-transaction value.
      out.masks[undo.object.id].emplace(undo.attr, undo.before);
    }
  }
  return out;
}

bool TransactionManager::IsActive(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return txns_.count(txn) > 0;
}

Status TransactionManager::LockInheritanceChain(TxnId txn, Surrogate s,
                                                const std::string& attr) {
  const ObjectStore* store = manager_->store();
  Surrogate current = s;
  std::string item = attr;
  while (true) {
    const DbObject* obj;
    {
      std::lock_guard<std::mutex> lock(*store_mu_);
      Result<const DbObject*> r = store->Get(current);
      if (!r.ok()) return r.status();
      obj = *r;
    }
    if (obj->kind() != ObjKind::kObject) return OkStatus();
    Result<EffectiveSchema> schema =
        store->catalog().EffectiveSchemaFor(obj->type_name());
    if (!schema.ok()) return schema.status();
    if (!schema->IsInherited(item)) return OkStatus();
    Surrogate rel_s = obj->bound_inher_rel();
    if (!rel_s.valid()) return OkStatus();
    Surrogate transmitter;
    std::string rel_type;
    {
      std::lock_guard<std::mutex> lock(*store_mu_);
      Result<const DbObject*> rel = store->Get(rel_s);
      if (!rel.ok()) return rel.status();
      transmitter = (*rel)->Participant("transmitter");
      rel_type = (*rel)->type_name();
    }
    // Lock inheritance: read-lock the transmitter's exported part.
    CADDB_RETURN_IF_ERROR(locks_->Acquire(
        txn, LockItem::Exported(transmitter, rel_type), LockMode::kShared));
    current = transmitter;
  }
}

Result<Value> TransactionManager::Read(TxnId txn, Surrogate s,
                                       const std::string& attr) {
  std::string user;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return NotFound("transaction " + std::to_string(txn) + " is not active");
    }
    user = it->second.user;
  }
  {
    std::lock_guard<std::mutex> lock(*store_mu_);
    CADDB_RETURN_IF_ERROR(acl_->CheckRead(user, s, *manager_->store()));
  }
  CADDB_RETURN_IF_ERROR(
      locks_->Acquire(txn, LockItem::Whole(s), LockMode::kShared));
  CADDB_RETURN_IF_ERROR(LockInheritanceChain(txn, s, attr));
  std::lock_guard<std::mutex> lock(*store_mu_);
  return manager_->GetAttribute(s, attr);
}

Status TransactionManager::Write(TxnId txn, Surrogate s,
                                 const std::string& attr, Value v) {
  std::string user;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return NotFound("transaction " + std::to_string(txn) + " is not active");
    }
    user = it->second.user;
  }
  {
    std::lock_guard<std::mutex> lock(*store_mu_);
    // The lock manager only grants what access control admits (section 6):
    // an X-lock for a user without update rights is refused outright.
    CADDB_RETURN_IF_ERROR(acl_->CheckUpdate(user, s, *manager_->store()));
  }
  CADDB_RETURN_IF_ERROR(
      locks_->Acquire(txn, LockItem::Whole(s), LockMode::kExclusive));

  std::lock_guard<std::mutex> store_lock(*store_mu_);
  Result<Value> before = manager_->store()->GetLocalAttribute(s, attr);
  if (!before.ok()) return before.status();
  Value logged_value = wal_ != nullptr ? v : Value();
  CADDB_RETURN_IF_ERROR(manager_->SetAttribute(s, attr, std::move(v)));
  bool need_begin = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txns_.find(txn);
    if (it != txns_.end()) {
      it->second.undo.push_back(UndoRecord{s, attr, std::move(*before)});
      if (wal_ != nullptr && !it->second.begin_logged) {
        it->second.begin_logged = true;
        need_begin = true;
      }
    }
  }
  // Logged while still under store_mu_, so log order matches the physical
  // mutation order. Durability rides on the later commit marker — no sync
  // here.
  if (wal_ != nullptr) {
    if (need_begin) {
      CADDB_ASSIGN_OR_RETURN(uint64_t begin_lsn,
                             wal_->Append(wal::Record::Begin(txn)));
      std::lock_guard<std::mutex> lock(mu_);
      auto it = txns_.find(txn);
      if (it != txns_.end()) it->second.begin_lsn = begin_lsn;
    }
    CADDB_RETURN_IF_ERROR(
        wal_->Append(wal::Record::SetAttribute(txn, s.id, attr,
                                               std::move(logged_value)))
            .status());
  }
  return OkStatus();
}

Result<size_t> TransactionManager::LockExpansion(TxnId txn, Surrogate root,
                                                 LockMode desired) {
  std::string user;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return NotFound("transaction " + std::to_string(txn) + " is not active");
    }
    user = it->second.user;
  }

  std::vector<Surrogate> targets;
  {
    std::lock_guard<std::mutex> lock(*store_mu_);
    Expander expander(manager_);
    ExpandOptions options;
    options.materialize_attributes = false;  // structure walk only
    CADDB_ASSIGN_OR_RETURN(ExpansionNode tree, expander.Expand(root, options));
    Expander::CollectSurrogates(tree, &targets);
  }

  size_t locked = 0;
  for (Surrogate s : targets) {
    Rights rights;
    {
      std::lock_guard<std::mutex> lock(*store_mu_);
      rights = acl_->EffectiveRights(user, s, *manager_->store());
    }
    if (!rights.read) {
      return PermissionDenied("user '" + user + "' may not read @" +
                              std::to_string(s.id) +
                              " inside the expansion of @" +
                              std::to_string(root.id));
    }
    // Downgrade: never grant a lock allowing more than access control
    // admits. Standard objects in the expansion are locked in read-mode.
    LockMode mode = desired;
    if (mode == LockMode::kExclusive && !rights.update) {
      mode = LockMode::kShared;
    }
    CADDB_RETURN_IF_ERROR(locks_->Acquire(txn, LockItem::Whole(s), mode));
    ++locked;
  }
  return locked;
}

}  // namespace caddb

#include "txn/workspace.h"

#include "wal/wal.h"

namespace caddb {

Result<WorkspaceId> WorkspaceManager::Create(const std::string& user) {
  if (user.empty()) return InvalidArgument("workspace without a user");
  WorkspaceId id = next_id_++;
  workspaces_[id] = Workspace{user, {}};
  return id;
}

Status WorkspaceManager::Discard(WorkspaceId ws) {
  auto it = workspaces_.find(ws);
  if (it == workspaces_.end()) {
    return NotFound("workspace " + std::to_string(ws) + " does not exist");
  }
  for (const auto& [object_id, state] : it->second.objects) {
    checkout_owner_.erase(object_id);
  }
  workspaces_.erase(it);
  return OkStatus();
}

Status WorkspaceManager::Checkout(WorkspaceId ws, Surrogate object) {
  auto it = workspaces_.find(ws);
  if (it == workspaces_.end()) {
    return NotFound("workspace " + std::to_string(ws) + " does not exist");
  }
  auto owner = checkout_owner_.find(object.id);
  if (owner != checkout_owner_.end()) {
    if (owner->second == ws) {
      return AlreadyExists("@" + std::to_string(object.id) +
                           " is already checked out by this workspace");
    }
    return ConflictError("@" + std::to_string(object.id) +
                         " is checked out by workspace " +
                         std::to_string(owner->second));
  }
  std::lock_guard<std::mutex> gate(*store_mu_);
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, manager_->store()->Get(object));
  CheckedOutObject state;
  state.base_version = obj->version();
  CADDB_ASSIGN_OR_RETURN(state.copy, manager_->Snapshot(object));
  it->second.objects[object.id] = std::move(state);
  checkout_owner_[object.id] = ws;
  return OkStatus();
}

bool WorkspaceManager::IsCheckedOut(Surrogate object) const {
  return checkout_owner_.count(object.id) > 0;
}

std::vector<Surrogate> WorkspaceManager::CheckedOutBy(WorkspaceId ws) const {
  std::vector<Surrogate> out;
  auto it = workspaces_.find(ws);
  if (it == workspaces_.end()) return out;
  for (const auto& [object_id, state] : it->second.objects) {
    out.push_back(Surrogate(object_id));
  }
  return out;
}

Status WorkspaceManager::Set(WorkspaceId ws, Surrogate object,
                             const std::string& attr, Value v) {
  auto it = workspaces_.find(ws);
  if (it == workspaces_.end()) {
    return NotFound("workspace " + std::to_string(ws) + " does not exist");
  }
  auto obj_it = it->second.objects.find(object.id);
  if (obj_it == it->second.objects.end()) {
    return FailedPrecondition("@" + std::to_string(object.id) +
                              " is not checked out by workspace " +
                              std::to_string(ws));
  }
  // Schema / domain / read-only validation against the live type.
  std::lock_guard<std::mutex> gate(*store_mu_);
  CADDB_ASSIGN_OR_RETURN(const DbObject* obj, manager_->store()->Get(object));
  if (obj->kind() == ObjKind::kObject) {
    Result<EffectiveSchema> schema =
        manager_->store()->catalog().EffectiveSchemaFor(obj->type_name());
    if (!schema.ok()) return schema.status();
    const AttributeDef* def = schema->FindAttribute(attr);
    if (def == nullptr) {
      return NotFound("type '" + obj->type_name() + "' has no attribute '" +
                      attr + "'");
    }
    if (schema->IsInherited(attr)) {
      return InheritedReadOnly("attribute '" + attr +
                               "' is inherited and read-only, even in a "
                               "workspace");
    }
    CADDB_RETURN_IF_ERROR(
        def->domain.Validate(v, &manager_->store()->catalog()));
  }
  obj_it->second.copy[attr] = v;
  obj_it->second.dirty[attr] = std::move(v);
  return OkStatus();
}

Result<Value> WorkspaceManager::Get(WorkspaceId ws, Surrogate object,
                                    const std::string& attr) const {
  auto it = workspaces_.find(ws);
  if (it == workspaces_.end()) {
    return NotFound("workspace " + std::to_string(ws) + " does not exist");
  }
  auto obj_it = it->second.objects.find(object.id);
  if (obj_it == it->second.objects.end()) {
    return FailedPrecondition("@" + std::to_string(object.id) +
                              " is not checked out by workspace " +
                              std::to_string(ws));
  }
  auto attr_it = obj_it->second.copy.find(attr);
  if (attr_it == obj_it->second.copy.end()) {
    return NotFound("no attribute '" + attr + "' in the checked-out copy");
  }
  return attr_it->second;
}

Status WorkspaceManager::Checkin(WorkspaceId ws) {
  // The whole checkin — validation, the applies, and the group's commit
  // marker — runs under the store gate: the group is not a
  // transaction-manager transaction, so a checkpoint capture could not
  // mask a half-applied batch; instead it must never observe one. Only the
  // commit's durability wait runs outside the gate.
  uint64_t group = 0;
  Status result;
  {
    std::lock_guard<std::mutex> gate(*store_mu_);
    result = CheckinLocked(ws, &group);
  }
  if (wal_ != nullptr && group != 0) {
    Status durable = wal_->FinishCommit();
    if (result.ok()) result = durable;
  }
  return result;
}

Status WorkspaceManager::CheckinLocked(WorkspaceId ws, uint64_t* group_out) {
  auto it = workspaces_.find(ws);
  if (it == workspaces_.end()) {
    return NotFound("workspace " + std::to_string(ws) + " does not exist");
  }
  // Phase 1: validate — every object unchanged in the store since checkout.
  for (const auto& [object_id, state] : it->second.objects) {
    Result<const DbObject*> obj = manager_->store()->Get(Surrogate(object_id));
    if (!obj.ok()) {
      return ConflictError("@" + std::to_string(object_id) +
                           " was deleted during the design transaction");
    }
    if ((*obj)->version() != state.base_version) {
      return ConflictError("@" + std::to_string(object_id) +
                           " changed in the database during the design "
                           "transaction (lost update prevented)");
    }
  }
  // Phase 2: apply dirty attributes and release checkouts. The writes are
  // logged as one bracketed group under a pseudo-transaction id, so a crash
  // mid-checkin replays either the whole batch or none of it.
  uint64_t& group = *group_out;
  auto log = [&](wal::Record record) -> Status {
    if (wal_ == nullptr) return OkStatus();
    if (group == 0) {
      group = wal_->AllocateGroupTxn();
      CADDB_RETURN_IF_ERROR(wal_->Append(wal::Record::Begin(group)).status());
    }
    record.txn = group;
    return wal_->Append(std::move(record)).status();
  };
  // The marker is appended here under the gate; Checkin waits for
  // durability (FinishCommit) after releasing it.
  auto commit_group = [&]() -> Status {
    if (group == 0) return OkStatus();
    return wal_->AppendCommitRecord(wal::Record::Commit(group)).status();
  };
  for (auto& [object_id, state] : it->second.objects) {
    for (auto& [attr, value] : state.dirty) {
      Status applied =
          manager_->SetAttribute(Surrogate(object_id), attr, value);
      if (!applied.ok()) {
        // Seal what was already applied so the log matches the store.
        CADDB_RETURN_IF_ERROR(commit_group());
        return applied;
      }
      CADDB_RETURN_IF_ERROR(log(
          wal::Record::SetAttribute(wal::kAutoCommitTxn, object_id, attr,
                                    value)));
    }
    checkout_owner_.erase(object_id);
  }
  workspaces_.erase(it);
  return commit_group();
}

}  // namespace caddb

#ifndef CADDB_TXN_WORKSPACE_H_
#define CADDB_TXN_WORKSPACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "inherit/inheritance.h"
#include "util/result.h"

namespace caddb {

namespace wal {
class Wal;
}

using WorkspaceId = uint64_t;

/// Long design transactions via checkout/checkin (paper section 6 cites
/// [KLMP84], [KSUW85]): a designer checks objects out into a private
/// workspace, works on the copies for however long the design takes, and
/// checks the changes back in. Checkout is exclusive per object (classic
/// engineering checkout), and checkin detects lost updates by comparing the
/// object's version counter against the checkout-time base.
class WorkspaceManager {
 public:
  /// `manager` is not owned and must outlive the workspace manager.
  explicit WorkspaceManager(InheritanceManager* manager)
      : manager_(manager) {}

  WorkspaceManager(const WorkspaceManager&) = delete;
  WorkspaceManager& operator=(const WorkspaceManager&) = delete;

  Result<WorkspaceId> Create(const std::string& user);
  /// Discards all private changes and releases checkouts.
  Status Discard(WorkspaceId ws);

  /// Copies the object's effective attributes (inherited values
  /// materialized) into the workspace and marks it checked out. Fails with
  /// kConflict when another workspace holds it.
  Status Checkout(WorkspaceId ws, Surrogate object);
  /// True if `object` is checked out by any workspace.
  bool IsCheckedOut(Surrogate object) const;
  std::vector<Surrogate> CheckedOutBy(WorkspaceId ws) const;

  /// Updates the private copy. Inherited attributes stay read-only even in
  /// the workspace — adaptation happens on local data only.
  Status Set(WorkspaceId ws, Surrogate object, const std::string& attr,
             Value v);
  /// Reads the private copy (checkout-time value unless overwritten).
  Result<Value> Get(WorkspaceId ws, Surrogate object,
                    const std::string& attr) const;

  /// Writes all dirty attributes back and releases the workspace's
  /// checkouts. Fails with kConflict — touching nothing — when any
  /// checked-out object changed in the store since checkout.
  Status Checkin(WorkspaceId ws);

  /// Attaches (or with nullptr, detaches) the write-ahead log. Workspace
  /// state itself is transient by design (like locks, it is not dumped),
  /// but a checkin mutates the store — those writes are logged as one
  /// Begin/Commit-bracketed group (pseudo-transaction id from the Wal), so
  /// recovery replays a checkin all-or-nothing with one durability point.
  void set_wal(wal::Wal* wal) { wal_ = wal; }

  /// Shares the database-wide store gate (see
  /// TransactionManager::set_store_gate). Checkout/Set/Get/Checkin take it
  /// around store access — with demand paging even a read may fault an
  /// object in — and Checkin holds it across the whole apply+log batch so
  /// a checkpoint capture never snapshots a half-applied checkin.
  void set_store_gate(std::mutex* gate) { store_mu_ = gate; }

 private:
  Status CheckinLocked(WorkspaceId ws, uint64_t* group);

  struct CheckedOutObject {
    uint64_t base_version = 0;                // store version at checkout
    std::map<std::string, Value> copy;        // private attribute values
    std::map<std::string, Value> dirty;       // changed in the workspace
  };
  struct Workspace {
    std::string user;
    std::map<uint64_t, CheckedOutObject> objects;
  };

  InheritanceManager* manager_;
  wal::Wal* wal_ = nullptr;  // not owned; null = non-durable
  mutable std::mutex own_store_mu_;
  std::mutex* store_mu_ = &own_store_mu_;
  std::map<WorkspaceId, Workspace> workspaces_;
  std::map<uint64_t, WorkspaceId> checkout_owner_;  // object -> workspace
  WorkspaceId next_id_ = 1;
};

}  // namespace caddb

#endif  // CADDB_TXN_WORKSPACE_H_

#ifndef CADDB_TXN_ACCESS_CONTROL_H_
#define CADDB_TXN_ACCESS_CONTROL_H_

#include <map>
#include <set>
#include <string>

#include "store/store.h"
#include "util/status.h"
#include "values/value.h"

namespace caddb {

/// What a user may do with an object.
struct Rights {
  bool read = false;
  bool update = false;

  static Rights None() { return {false, false}; }
  static Rights ReadOnly() { return {true, false}; }
  static Rights ReadWrite() { return {true, true}; }
};

/// Access-control manager (paper section 6): heavily shared "standard
/// objects" (bolts, nuts, VLSI standard cells) are protected from updates by
/// normal users; the lock manager consults these rights so that implicit
/// locks taken by complex operations never exceed what access control admits.
///
/// Resolution order (most specific wins): per-object grant, per-type grant,
/// per-user default, global default. Standard-object protection caps the
/// result at read-only for everyone but the object's registered owners.
class AccessControl {
 public:
  AccessControl() = default;

  AccessControl(const AccessControl&) = delete;
  AccessControl& operator=(const AccessControl&) = delete;

  /// Rights for users with no grant at all (defaults to read+update: an
  /// unconfigured database behaves like one without access control).
  void SetGlobalDefault(Rights rights) { global_default_ = rights; }

  void GrantUserDefault(const std::string& user, Rights rights);
  void GrantOnType(const std::string& user, const std::string& type_name,
                   Rights rights);
  void GrantOnObject(const std::string& user, Surrogate object, Rights rights);

  /// Marks `object` as a protected standard object: read-only for everyone
  /// except `owner` (who keeps full rights).
  void ProtectStandardObject(Surrogate object, const std::string& owner);
  bool IsStandardObject(Surrogate object) const;

  /// Effective rights of `user` on `object` (store resolves the type).
  Rights EffectiveRights(const std::string& user, Surrogate object,
                         const ObjectStore& store) const;

  Status CheckRead(const std::string& user, Surrogate object,
                   const ObjectStore& store) const;
  Status CheckUpdate(const std::string& user, Surrogate object,
                     const ObjectStore& store) const;

 private:
  Rights global_default_ = Rights::ReadWrite();
  std::map<std::string, Rights> user_defaults_;
  std::map<std::string, std::map<std::string, Rights>> type_grants_;
  std::map<std::string, std::map<uint64_t, Rights>> object_grants_;
  std::map<uint64_t, std::string> standard_objects_;  // object -> owner
};

}  // namespace caddb

#endif  // CADDB_TXN_ACCESS_CONTROL_H_

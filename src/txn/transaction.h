#ifndef CADDB_TXN_TRANSACTION_H_
#define CADDB_TXN_TRANSACTION_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "inherit/inheritance.h"
#include "query/expansion.h"
#include "txn/access_control.h"
#include "txn/lock_manager.h"
#include "util/result.h"

namespace caddb {

namespace wal {
class Wal;
}

/// Transactional facade over the inheritance-aware store: strict 2PL with
/// lock-inheritance (paper section 6), access-control-mediated lock grants,
/// before-image undo on abort, and expansion locking as a complex operation.
///
/// Reading inherited data in a composite/implementation read-locks the
/// *exported part* of every transmitter on the resolution chain ("lock
/// inheritance in the reverse direction of data inheritance"). Writes
/// X-lock the whole object and are checked against the access-control
/// manager; complex operations downgrade to read-mode on objects the user
/// may not update, exactly as section 6 prescribes for standard objects.
///
/// Thread-safe: logical isolation via locks, physical safety via a short
/// internal mutex around each store access.
class TransactionManager {
 public:
  /// None of the pointers are owned; all must outlive the manager.
  TransactionManager(InheritanceManager* manager, LockManager* locks,
                     AccessControl* acl)
      : manager_(manager), locks_(locks), acl_(acl) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  Result<TxnId> Begin(const std::string& user);
  Status Commit(TxnId txn);
  /// Rolls back all writes (before-images) and releases locks.
  Status Abort(TxnId txn);
  bool IsActive(TxnId txn) const;
  size_t ActiveCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return txns_.size();
  }

  /// Attaches (or with nullptr, detaches) the write-ahead log. While
  /// attached, every Write appends a redo record bracketed by a lazily
  /// logged BEGIN and a COMMIT/ABORT marker; the commit marker is the
  /// transaction's durability point (fsync per the wal's sync policy).
  /// Undo restores on abort are deliberately NOT logged — recovery simply
  /// skips every record of an aborted or uncommitted transaction.
  void set_wal(wal::Wal* wal) { wal_ = wal; }

  /// Shares the database-wide store gate: the mutex serializing all
  /// physical store access across the transaction manager, the database's
  /// auto-committed convenience operations, workspace checkin, and
  /// checkpoint capture. Defaults to a private mutex for stand-alone use.
  /// Must be called before any transaction starts.
  void set_store_gate(std::mutex* gate) { store_mu_ = gate; }

  /// Checkpoint capture: before-images of every uncommitted attribute
  /// write, plus the begin lsn of the oldest logged transaction still
  /// active. The checkpoint masks captured objects with these
  /// before-images (the page image must never contain uncommitted state)
  /// and retains log segments back to oldest_begin_lsn so a spanning
  /// transaction's records survive truncation. Call with the store gate
  /// held.
  struct UndoSnapshot {
    /// object id -> (attribute -> before-image); first write wins, so the
    /// value is the state from before the transaction's first touch.
    std::map<uint64_t, std::map<std::string, Value>> masks;
    /// 0 when no logged transaction is active.
    uint64_t oldest_begin_lsn = 0;
  };
  UndoSnapshot SnapshotUndo() const;

  /// Inheritance-aware read under S-locks: whole-object S-lock on `s`, plus
  /// exported-part S-locks up the transmitter chain when `attr` is
  /// inherited.
  Result<Value> Read(TxnId txn, Surrogate s, const std::string& attr);

  /// Write under whole-object X-lock with access control and undo logging.
  Status Write(TxnId txn, Surrogate s, const std::string& attr, Value v);

  /// Complex operation (paper section 6): locks the entire expansion of a
  /// composite object in `desired` mode, downgrading to S on objects the
  /// user may only read. Fails with kPermissionDenied if some object is not
  /// even readable. Returns the number of objects locked.
  Result<size_t> LockExpansion(TxnId txn, Surrogate root, LockMode desired);

  /// Locks held by a transaction (diagnostics).
  size_t LockCount(TxnId txn) const { return locks_->HeldCount(txn); }

 private:
  struct UndoRecord {
    Surrogate object;
    std::string attr;
    Value before;
  };
  struct TxnState {
    std::string user;
    std::vector<UndoRecord> undo;
    /// BEGIN is logged lazily at the first write, so read-only
    /// transactions leave no trace in the log.
    bool begin_logged = false;
    /// Lsn of the logged BEGIN record (0 until begin_logged).
    uint64_t begin_lsn = 0;
  };

  /// S-locks the exported parts up the inheritance chain for an inherited
  /// attribute read.
  Status LockInheritanceChain(TxnId txn, Surrogate s, const std::string& attr);

  InheritanceManager* manager_;
  LockManager* locks_;
  AccessControl* acl_;
  wal::Wal* wal_ = nullptr;  // not owned; null = non-durable

  mutable std::mutex mu_;  // guards txns_ and next id
  /// Serializes physical store access. Points at the database-wide store
  /// gate when set_store_gate was called; otherwise at own_store_mu_.
  /// Lock order: store gate before mu_, never the reverse.
  mutable std::mutex own_store_mu_;
  std::mutex* store_mu_ = &own_store_mu_;
  std::map<TxnId, TxnState> txns_;
  TxnId next_txn_ = 1;
};

}  // namespace caddb

#endif  // CADDB_TXN_TRANSACTION_H_

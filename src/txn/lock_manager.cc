#include "txn/lock_manager.h"

#include <algorithm>
#include <deque>

namespace caddb {

const char* LockModeName(LockMode mode) {
  return mode == LockMode::kShared ? "S" : "X";
}

LockManager::LockManager(const Catalog* catalog, obs::Observability* obs)
    : catalog_(catalog), obs_(obs != nullptr ? obs : obs::Default()) {
  m_acquires_ = obs_->metrics.GetCounter("caddb_lock_acquires_total",
                                         "Lock acquisitions granted");
  m_waits_ = obs_->metrics.GetCounter(
      "caddb_lock_waits_total", "Acquisitions that blocked on a conflict");
  m_deadlocks_ = obs_->metrics.GetCounter(
      "caddb_lock_deadlocks_total",
      "Acquisitions aborted as deadlock victims");
  m_timeouts_ = obs_->metrics.GetCounter("caddb_lock_timeouts_total",
                                         "Acquisitions that timed out");
  m_wait_us_ = obs_->metrics.GetHistogram(
      "caddb_lock_wait_us",
      "Blocked time of lock acquisitions that waited (granted or not)");
}

bool LockManager::ItemsOverlap(const std::string& part_a,
                               const std::string& part_b) const {
  if (part_a.empty() || part_b.empty()) return true;  // whole object involved
  if (part_a == part_b) return true;
  const InherRelTypeDef* a = catalog_->FindInherRelType(part_a);
  const InherRelTypeDef* b = catalog_->FindInherRelType(part_b);
  if (a == nullptr || b == nullptr) return true;  // unknown: be conservative
  for (const std::string& item : a->inheriting) {
    if (std::find(b->inheriting.begin(), b->inheriting.end(), item) !=
        b->inheriting.end()) {
      return true;
    }
  }
  return false;
}

std::vector<TxnId> LockManager::Blockers(TxnId txn, const LockItem& item,
                                         LockMode mode) const {
  std::vector<TxnId> out;
  auto it = held_.find(item.object.id);
  if (it == held_.end()) return out;
  for (const Entry& e : it->second) {
    if (e.txn == txn) continue;
    if (!ItemsOverlap(e.part, item.part)) continue;
    if (ModesConflict(e.mode, mode)) out.push_back(e.txn);
  }
  return out;
}

bool LockManager::Reaches(TxnId from, TxnId to) const {
  std::deque<TxnId> worklist{from};
  std::set<TxnId> seen{from};
  while (!worklist.empty()) {
    TxnId current = worklist.front();
    worklist.pop_front();
    if (current == to) return true;
    auto it = waits_for_.find(current);
    if (it == waits_for_.end()) continue;
    for (TxnId next : it->second) {
      if (seen.insert(next).second) worklist.push_back(next);
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, const LockItem& item, LockMode mode,
                            std::chrono::milliseconds timeout) {
  // Declared before the guard so the span (and any observer callback it
  // triggers) completes only after mu_ is released.
  obs::Span span(&obs_->trace, "lock.acquire");
  span.AddAttribute("object", item.object.id);
  if (!item.whole()) span.AddAttribute("part", item.part);
  uint64_t wait_start_us = 0;  // nonzero once this acquire has blocked
  auto record_wait = [this, &wait_start_us] {
    if (wait_start_us != 0) {
      m_wait_us_->Record(obs::Tracer::NowUs() - wait_start_us);
    }
  };
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + timeout;

  while (true) {
    // Re-acquisition / upgrade handling: find our own entry on this item.
    auto& entries = held_[item.object.id];
    Entry* own = nullptr;
    for (Entry& e : entries) {
      if (e.txn == txn && e.part == item.part) {
        own = &e;
        break;
      }
    }
    if (own != nullptr &&
        (own->mode == LockMode::kExclusive || mode == LockMode::kShared)) {
      record_wait();
      m_acquires_->Increment();
      return OkStatus();  // already strong enough
    }

    std::vector<TxnId> blockers = Blockers(txn, item, mode);
    if (blockers.empty()) {
      if (own != nullptr) {
        own->mode = LockMode::kExclusive;  // upgrade
      } else {
        entries.push_back(Entry{txn, mode, item.part});
      }
      waits_for_.erase(txn);
      record_wait();
      m_acquires_->Increment();
      return OkStatus();
    }

    // Record waits-for edges and detect a cycle through us: if any blocker
    // (transitively) waits for us, granting would deadlock — the requester
    // is the victim.
    auto& edges = waits_for_[txn];
    edges.clear();
    for (TxnId b : blockers) edges.insert(b);
    for (TxnId b : blockers) {
      if (Reaches(b, txn)) {
        waits_for_.erase(txn);
        cv_.notify_all();
        record_wait();
        m_deadlocks_->Increment();
        span.AddAttribute("outcome", "deadlock");
        return DeadlockError(
            "transaction " + std::to_string(txn) + " would deadlock on " +
            LockModeName(mode) + "-lock of @" +
            std::to_string(item.object.id) +
            (item.whole() ? "" : ("/" + item.part)));
      }
    }

    if (wait_start_us == 0) {
      wait_start_us = obs::Tracer::NowUs();
      m_waits_->Increment();
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One more check after the timeout to avoid a spurious failure.
      if (Blockers(txn, item, mode).empty()) continue;
      waits_for_.erase(txn);
      cv_.notify_all();
      record_wait();
      m_timeouts_->Increment();
      span.AddAttribute("outcome", "timeout");
      return FailedPrecondition(
          "lock wait timeout: transaction " + std::to_string(txn) + " on @" +
          std::to_string(item.object.id));
    }
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = held_.begin(); it != held_.end();) {
      auto& entries = it->second;
      entries.erase(std::remove_if(entries.begin(), entries.end(),
                                   [txn](const Entry& e) {
                                     return e.txn == txn;
                                   }),
                    entries.end());
      if (entries.empty()) {
        it = held_.erase(it);
      } else {
        ++it;
      }
    }
    waits_for_.erase(txn);
    for (auto& [waiter, targets] : waits_for_) targets.erase(txn);
  }
  cv_.notify_all();
}

bool LockManager::WouldGrant(TxnId txn, const LockItem& item,
                             LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Blockers(txn, item, mode).empty();
}

size_t LockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [object, entries] : held_) {
    for (const Entry& e : entries) {
      if (e.txn == txn) ++n;
    }
  }
  return n;
}

size_t LockManager::TotalHeld() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [object, entries] : held_) n += entries.size();
  return n;
}

}  // namespace caddb

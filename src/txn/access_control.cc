#include "txn/access_control.h"

namespace caddb {

void AccessControl::GrantUserDefault(const std::string& user, Rights rights) {
  user_defaults_[user] = rights;
}

void AccessControl::GrantOnType(const std::string& user,
                                const std::string& type_name, Rights rights) {
  type_grants_[user][type_name] = rights;
}

void AccessControl::GrantOnObject(const std::string& user, Surrogate object,
                                  Rights rights) {
  object_grants_[user][object.id] = rights;
}

void AccessControl::ProtectStandardObject(Surrogate object,
                                          const std::string& owner) {
  standard_objects_[object.id] = owner;
}

bool AccessControl::IsStandardObject(Surrogate object) const {
  return standard_objects_.count(object.id) > 0;
}

Rights AccessControl::EffectiveRights(const std::string& user,
                                      Surrogate object,
                                      const ObjectStore& store) const {
  Rights rights = global_default_;
  auto user_it = user_defaults_.find(user);
  if (user_it != user_defaults_.end()) rights = user_it->second;

  auto type_user = type_grants_.find(user);
  if (type_user != type_grants_.end()) {
    Result<const DbObject*> obj = store.Get(object);
    if (obj.ok()) {
      auto type_it = type_user->second.find((*obj)->type_name());
      if (type_it != type_user->second.end()) rights = type_it->second;
    }
  }

  auto obj_user = object_grants_.find(user);
  if (obj_user != object_grants_.end()) {
    auto obj_it = obj_user->second.find(object.id);
    if (obj_it != obj_user->second.end()) rights = obj_it->second;
  }

  // Standard-object protection caps everyone but the owner at read-only.
  auto std_it = standard_objects_.find(object.id);
  if (std_it != standard_objects_.end() && std_it->second != user) {
    rights.update = false;
  }
  return rights;
}

Status AccessControl::CheckRead(const std::string& user, Surrogate object,
                                const ObjectStore& store) const {
  if (!EffectiveRights(user, object, store).read) {
    return PermissionDenied("user '" + user + "' may not read @" +
                            std::to_string(object.id));
  }
  return OkStatus();
}

Status AccessControl::CheckUpdate(const std::string& user, Surrogate object,
                                  const ObjectStore& store) const {
  if (!EffectiveRights(user, object, store).update) {
    return PermissionDenied("user '" + user + "' may not update @" +
                            std::to_string(object.id));
  }
  return OkStatus();
}

}  // namespace caddb

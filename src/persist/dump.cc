#include "persist/dump.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "ddl/printer.h"
#include "persist/value_codec.h"
#include "util/string_util.h"

namespace caddb {
namespace persist {

Result<Value> RemapValueRefs(const Value& v,
                             const std::map<uint64_t, uint64_t>& mapping) {
  switch (v.kind()) {
    case Value::Kind::kRef: {
      Surrogate target = v.AsRef();
      if (!target.valid()) return v;
      auto it = mapping.find(target.id);
      if (it == mapping.end()) {
        return ParseError("value references unknown surrogate @" +
                          std::to_string(target.id));
      }
      return Value::Ref(Surrogate(it->second));
    }
    case Value::Kind::kRecord: {
      std::vector<Value::Field> fields;
      for (const auto& [name, field] : v.fields()) {
        CADDB_ASSIGN_OR_RETURN(Value mapped, RemapValueRefs(field, mapping));
        fields.emplace_back(name, std::move(mapped));
      }
      return Value::Record(std::move(fields));
    }
    case Value::Kind::kList:
    case Value::Kind::kSet:
    case Value::Kind::kMatrix: {
      std::vector<Value> elements;
      for (const Value& e : v.elements()) {
        CADDB_ASSIGN_OR_RETURN(Value mapped, RemapValueRefs(e, mapping));
        elements.push_back(std::move(mapped));
      }
      if (v.kind() == Value::Kind::kList) return Value::List(elements);
      if (v.kind() == Value::Kind::kSet) return Value::Set(elements);
      return Value::Matrix(v.rows(), v.cols(), elements);
    }
    default:
      return v;
  }
}

namespace {

/// Emits the version-manager block (design/version/vdefault/generic lines)
/// shared by the full dump and the v3 meta snapshot.
Status AppendVersionState(const Database& db, std::string* out) {
  const VersionManager& versions = db.versions();
  for (const std::string& name : versions.DesignObjectNames()) {
    CADDB_ASSIGN_OR_RETURN(const DesignObject* design, versions.Find(name));
    *out += "design " + name + " " + design->object_type() + "\n";
    std::vector<const VersionInfo*> ordered;
    for (const VersionInfo& v : design->versions()) ordered.push_back(&v);
    std::sort(ordered.begin(), ordered.end(),
              [](const VersionInfo* a, const VersionInfo* b) {
                return a->seq < b->seq;
              });
    for (const VersionInfo* v : ordered) {
      *out += "version " + name + " " + std::to_string(v->object.id) + " " +
              VersionStateName(v->state);
      for (Surrogate p : v->predecessors) {
        *out += " " + std::to_string(p.id);
      }
      *out += "\n";
    }
    if (design->default_version().valid()) {
      *out += "vdefault " + name + " " +
              std::to_string(design->default_version().id) + "\n";
    }
  }
  for (const VersionManager::GenericBinding& g : versions.GenericBindings()) {
    *out += "generic " + std::to_string(g.inheritor.id) + " " + g.design +
            " " + g.inher_rel_type;
    if (g.resolved_version.valid()) {
      *out += " " + std::to_string(g.resolved_version.id);
    }
    *out += "\n";
  }
  return OkStatus();
}

}  // namespace

Result<std::string> Dumper::Dump(const Database& db) {
  std::string out = "caddb-dump 1\n";
  const std::string schema = ddl::SchemaPrinter::Print(db.catalog());
  out += "schema " + std::to_string(schema.size()) + "\n" + schema;

  const ObjectStore& store = db.store();
  for (const std::string& name : store.ClassNames()) {
    CADDB_ASSIGN_OR_RETURN(std::string type, store.ClassType(name));
    out += "class " + name + " " + type + "\n";
  }

  std::vector<Surrogate> all = store.AllObjects();
  std::string attr_lines;
  for (Surrogate s : all) {
    CADDB_ASSIGN_OR_RETURN(const DbObject* obj, store.Get(s));
    switch (obj->kind()) {
      case ObjKind::kObject: {
        out += "O " + std::to_string(s.id) + " " + obj->type_name();
        if (obj->IsSubobject()) {
          out += " P " + std::to_string(obj->parent().id) + " " +
                 obj->parent_subclass();
        } else if (!obj->class_name().empty()) {
          out += " C " + obj->class_name();
        }
        out += "\n";
        break;
      }
      case ObjKind::kRelationship: {
        out += "R " + std::to_string(s.id) + " " + obj->type_name();
        if (obj->IsSubobject()) {
          out += " P " + std::to_string(obj->parent().id) + " " +
                 obj->parent_subclass();
        }
        for (const auto& [role, members] : obj->participants()) {
          out += " role " + role;
          for (Surrogate m : members) out += " " + std::to_string(m.id);
          out += " ;";
        }
        out += "\n";
        break;
      }
      case ObjKind::kInherRel: {
        out += "I " + std::to_string(s.id) + " " + obj->type_name() + " " +
               std::to_string(obj->Participant("transmitter").id) + " " +
               std::to_string(obj->Participant("inheritor").id) + "\n";
        break;
      }
    }
    for (const auto& [attr, value] : obj->attributes()) {
      if (value.is_null()) continue;
      attr_lines += "A " + std::to_string(s.id) + " " + attr + " " +
                    EncodeValue(value) + "\n";
    }
  }
  // Version-manager state: design objects, version graphs, generic
  // bindings. Emitted after the objects so the loader can map surrogates.
  CADDB_RETURN_IF_ERROR(AppendVersionState(db, &out));

  out += attr_lines;
  out += "end\n";
  return out;
}

Status Dumper::Load(const std::string& dump, Database* db) {
  return Load(dump, db, nullptr);
}

Status Dumper::Load(const std::string& dump, Database* db,
                    std::map<uint64_t, uint64_t>* mapping_out) {
  if (db->store().size() != 0) {
    return FailedPrecondition("Load requires an empty database");
  }
  size_t pos = 0;
  size_t line_no = 0;  // 1-based line of the most recent next_line()
  auto next_line = [&]() -> std::string {
    ++line_no;
    size_t eol = dump.find('\n', pos);
    std::string line = eol == std::string::npos
                           ? dump.substr(pos)
                           : dump.substr(pos, eol - pos);
    pos = eol == std::string::npos ? dump.size() : eol + 1;
    return line;
  };
  auto here = [&](Status status) {
    return Annotate("dump line " + std::to_string(line_no),
                    std::move(status));
  };

  if (next_line() != "caddb-dump 1") {
    return here(ParseError("not a caddb dump (bad magic line)"));
  }
  std::string schema_header = next_line();
  if (!StartsWith(schema_header, "schema ")) {
    return here(ParseError("missing schema section"));
  }
  size_t schema_size = 0;
  try {
    schema_size = static_cast<size_t>(std::stoull(schema_header.substr(7)));
  } catch (...) {
    return here(ParseError("bad schema byte count"));
  }
  if (pos + schema_size > dump.size()) {
    return here(ParseError("truncated schema section"));
  }
  std::string schema = dump.substr(pos, schema_size);
  pos += schema_size;
  ++line_no;  // errors in the schema body point at its first line
  CADDB_RETURN_IF_ERROR(here(db->ExecuteDdl(schema)));
  CADDB_RETURN_IF_ERROR(here(db->ValidateSchema()));
  // Skip past the schema body so the record lines below report accurately.
  const size_t schema_lines =
      static_cast<size_t>(std::count(schema.begin(), schema.end(), '\n')) +
      ((!schema.empty() && schema.back() != '\n') ? 1 : 0);
  line_no = 2 + schema_lines;

  std::map<uint64_t, uint64_t> mapping;  // old surrogate -> new surrogate
  auto map_id = [&](uint64_t old_id) -> Result<Surrogate> {
    auto it = mapping.find(old_id);
    if (it == mapping.end()) {
      return ParseError("dump references unknown surrogate @" +
                        std::to_string(old_id));
    }
    return Surrogate(it->second);
  };

  struct AttrRecord {
    uint64_t old_id;
    std::string attr;
    std::string encoded;
    size_t line;
  };
  std::vector<AttrRecord> attrs;

  while (pos < dump.size()) {
    std::string line = next_line();
    if (line.empty()) continue;
    if (line == "end") break;
    // One record per line; the lambda collects this line's errors so they
    // can all be stamped with the line number in a single place.
    Status line_status = [&]() -> Status {
    std::istringstream in(line);
    std::string tag;
    in >> tag;
    if (tag == "class") {
      std::string name, type;
      in >> name >> type;
      CADDB_RETURN_IF_ERROR(db->CreateClass(name, type));
    } else if (tag == "O") {
      uint64_t old_id;
      std::string type, marker;
      in >> old_id >> type;
      Surrogate created;
      if (in >> marker) {
        if (marker == "P") {
          uint64_t parent_id;
          std::string subclass;
          in >> parent_id >> subclass;
          CADDB_ASSIGN_OR_RETURN(Surrogate parent, map_id(parent_id));
          CADDB_ASSIGN_OR_RETURN(created,
                                 db->CreateSubobject(parent, subclass));
        } else if (marker == "C") {
          std::string class_name;
          in >> class_name;
          CADDB_ASSIGN_OR_RETURN(created, db->CreateObject(type, class_name));
        } else {
          return ParseError("bad object marker '" + marker + "'");
        }
      } else {
        CADDB_ASSIGN_OR_RETURN(created, db->CreateObject(type));
      }
      mapping[old_id] = created.id;
    } else if (tag == "R") {
      uint64_t old_id;
      std::string type;
      in >> old_id >> type;
      std::string token;
      bool has_parent = false;
      uint64_t parent_id = 0;
      std::string subrel;
      std::map<std::string, std::vector<Surrogate>> participants;
      while (in >> token) {
        if (token == "P") {
          has_parent = true;
          in >> parent_id >> subrel;
        } else if (token == "role") {
          std::string role;
          in >> role;
          std::vector<Surrogate>& members = participants[role];
          std::string member;
          while (in >> member && member != ";") {
            uint64_t member_id = 0;
            try {
              member_id = std::stoull(member);
            } catch (...) {
              return ParseError("bad participant id '" + member + "'");
            }
            CADDB_ASSIGN_OR_RETURN(Surrogate m, map_id(member_id));
            members.push_back(m);
          }
        } else {
          return ParseError("bad relationship token '" + token + "'");
        }
      }
      Surrogate created;
      if (has_parent) {
        CADDB_ASSIGN_OR_RETURN(Surrogate parent, map_id(parent_id));
        CADDB_ASSIGN_OR_RETURN(
            created, db->CreateSubrel(parent, subrel, participants));
      } else {
        CADDB_ASSIGN_OR_RETURN(created,
                               db->CreateRelationship(type, participants));
      }
      mapping[old_id] = created.id;
    } else if (tag == "I") {
      uint64_t old_id, transmitter_id, inheritor_id;
      std::string type;
      in >> old_id >> type >> transmitter_id >> inheritor_id;
      CADDB_ASSIGN_OR_RETURN(Surrogate transmitter, map_id(transmitter_id));
      CADDB_ASSIGN_OR_RETURN(Surrogate inheritor, map_id(inheritor_id));
      CADDB_ASSIGN_OR_RETURN(Surrogate created,
                             db->Bind(inheritor, transmitter, type));
      mapping[old_id] = created.id;
    } else if (tag == "design") {
      std::string name, type;
      in >> name >> type;
      CADDB_RETURN_IF_ERROR(db->versions().CreateDesignObject(name, type));
    } else if (tag == "version") {
      std::string design, state_name;
      uint64_t old_id;
      in >> design >> old_id >> state_name;
      CADDB_ASSIGN_OR_RETURN(Surrogate object, map_id(old_id));
      std::vector<Surrogate> predecessors;
      uint64_t pred;
      while (in >> pred) {
        CADDB_ASSIGN_OR_RETURN(Surrogate p, map_id(pred));
        predecessors.push_back(p);
      }
      CADDB_RETURN_IF_ERROR(
          db->versions().AddVersion(design, object, predecessors));
      CADDB_ASSIGN_OR_RETURN(VersionState state,
                             VersionStateFromName(state_name));
      CADDB_RETURN_IF_ERROR(db->versions().SetState(design, object, state));
    } else if (tag == "vdefault") {
      std::string design;
      uint64_t old_id;
      in >> design >> old_id;
      CADDB_ASSIGN_OR_RETURN(Surrogate object, map_id(old_id));
      CADDB_RETURN_IF_ERROR(
          db->versions().SetDefaultVersion(design, object));
    } else if (tag == "generic") {
      uint64_t inheritor_id;
      std::string design, rel_type;
      in >> inheritor_id >> design >> rel_type;
      CADDB_ASSIGN_OR_RETURN(Surrogate inheritor, map_id(inheritor_id));
      CADDB_ASSIGN_OR_RETURN(
          uint64_t binding,
          db->versions().BindGeneric(inheritor, design, rel_type));
      uint64_t resolved_id = 0;
      if (in >> resolved_id) {
        CADDB_ASSIGN_OR_RETURN(Surrogate resolved, map_id(resolved_id));
        CADDB_RETURN_IF_ERROR(db->versions().MarkResolved(binding, resolved));
      }
    } else if (tag == "A") {
      AttrRecord record;
      in >> record.old_id >> record.attr;
      // The remainder of the line (after the two fields and one space) is
      // the encoded value; values may contain spaces inside strings.
      std::string rest;
      std::getline(in, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      record.encoded = rest;
      record.line = line_no;
      attrs.push_back(std::move(record));
    } else {
      return ParseError("unknown dump record '" + tag + "'");
    }
    return OkStatus();
    }();
    CADDB_RETURN_IF_ERROR(here(std::move(line_status)));
  }

  for (const AttrRecord& record : attrs) {
    line_no = record.line;  // attributes apply after all objects exist
    Status attr_status = [&]() -> Status {
      CADDB_ASSIGN_OR_RETURN(Surrogate target, map_id(record.old_id));
      CADDB_ASSIGN_OR_RETURN(Value decoded, DecodeValue(record.encoded));
      CADDB_ASSIGN_OR_RETURN(Value remapped,
                             RemapValueRefs(decoded, mapping));
      return db->Set(target, record.attr, std::move(remapped));
    }();
    CADDB_RETURN_IF_ERROR(here(std::move(attr_status)));
  }
  if (mapping_out != nullptr) *mapping_out = std::move(mapping);
  return OkStatus();
}

Result<std::string> DumpMeta(const Database& db) {
  std::string out = "caddb-meta 1\n";
  const std::string schema = ddl::SchemaPrinter::Print(db.catalog());
  out += "schema " + std::to_string(schema.size()) + "\n" + schema;
  const ObjectStore& store = db.store();
  for (const std::string& name : store.ClassNames()) {
    CADDB_ASSIGN_OR_RETURN(std::string type, store.ClassType(name));
    out += "class " + name + " " + type + "\n";
  }
  CADDB_RETURN_IF_ERROR(AppendVersionState(db, &out));
  out += "nextsur " + std::to_string(store.next_surrogate()) + "\n";
  out += "end\n";
  return out;
}

Status LoadMeta(const std::string& meta, Database* db) {
  size_t pos = 0;
  size_t line_no = 0;
  auto next_line = [&]() -> std::string {
    ++line_no;
    size_t eol = meta.find('\n', pos);
    std::string line = eol == std::string::npos ? meta.substr(pos)
                                                : meta.substr(pos, eol - pos);
    pos = eol == std::string::npos ? meta.size() : eol + 1;
    return line;
  };
  auto here = [&](Status status) {
    return Annotate("meta line " + std::to_string(line_no), std::move(status));
  };
  // Version lines reference page-adopted objects by their real surrogate.
  auto check_id = [&](uint64_t id) -> Result<Surrogate> {
    if (!db->store().Exists(Surrogate(id))) {
      return ParseError("meta references unknown surrogate @" +
                        std::to_string(id));
    }
    return Surrogate(id);
  };

  if (next_line() != "caddb-meta 1") {
    return here(ParseError("not a caddb meta snapshot (bad magic line)"));
  }
  std::string schema_header = next_line();
  if (!StartsWith(schema_header, "schema ")) {
    return here(ParseError("missing schema section"));
  }
  size_t schema_size = 0;
  try {
    schema_size = static_cast<size_t>(std::stoull(schema_header.substr(7)));
  } catch (...) {
    return here(ParseError("bad schema byte count"));
  }
  if (pos + schema_size > meta.size()) {
    return here(ParseError("truncated schema section"));
  }
  std::string schema = meta.substr(pos, schema_size);
  pos += schema_size;
  ++line_no;
  CADDB_RETURN_IF_ERROR(here(db->ExecuteDdl(schema)));
  CADDB_RETURN_IF_ERROR(here(db->ValidateSchema()));
  const size_t schema_lines =
      static_cast<size_t>(std::count(schema.begin(), schema.end(), '\n')) +
      ((!schema.empty() && schema.back() != '\n') ? 1 : 0);
  line_no = 2 + schema_lines;

  bool saw_end = false;
  while (pos < meta.size()) {
    std::string line = next_line();
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    Status line_status = [&]() -> Status {
      std::istringstream in(line);
      std::string tag;
      in >> tag;
      if (tag == "class") {
        std::string name, type;
        in >> name >> type;
        // Store-level create: memberships come back via RepairIndexes.
        CADDB_RETURN_IF_ERROR(db->store().CreateClass(name, type));
      } else if (tag == "design") {
        std::string name, type;
        in >> name >> type;
        CADDB_RETURN_IF_ERROR(db->versions().CreateDesignObject(name, type));
      } else if (tag == "version") {
        std::string design, state_name;
        uint64_t id;
        in >> design >> id >> state_name;
        CADDB_ASSIGN_OR_RETURN(Surrogate object, check_id(id));
        std::vector<Surrogate> predecessors;
        uint64_t pred;
        while (in >> pred) {
          CADDB_ASSIGN_OR_RETURN(Surrogate p, check_id(pred));
          predecessors.push_back(p);
        }
        CADDB_RETURN_IF_ERROR(
            db->versions().AddVersion(design, object, predecessors));
        CADDB_ASSIGN_OR_RETURN(VersionState state,
                               VersionStateFromName(state_name));
        CADDB_RETURN_IF_ERROR(db->versions().SetState(design, object, state));
      } else if (tag == "vdefault") {
        std::string design;
        uint64_t id;
        in >> design >> id;
        CADDB_ASSIGN_OR_RETURN(Surrogate object, check_id(id));
        CADDB_RETURN_IF_ERROR(db->versions().SetDefaultVersion(design, object));
      } else if (tag == "generic") {
        uint64_t inheritor_id;
        std::string design, rel_type;
        in >> inheritor_id >> design >> rel_type;
        CADDB_ASSIGN_OR_RETURN(Surrogate inheritor, check_id(inheritor_id));
        CADDB_ASSIGN_OR_RETURN(
            uint64_t binding,
            db->versions().BindGeneric(inheritor, design, rel_type));
        uint64_t resolved_id = 0;
        if (in >> resolved_id) {
          CADDB_ASSIGN_OR_RETURN(Surrogate resolved, check_id(resolved_id));
          CADDB_RETURN_IF_ERROR(db->versions().MarkResolved(binding, resolved));
        }
      } else if (tag == "nextsur") {
        uint64_t next = 0;
        in >> next;
        if (in.fail() || next == 0) return ParseError("bad nextsur value");
        db->store().SetNextSurrogate(next);
      } else {
        return ParseError("unknown meta record '" + tag + "'");
      }
      return OkStatus();
    }();
    CADDB_RETURN_IF_ERROR(here(std::move(line_status)));
  }
  if (!saw_end) {
    return here(ParseError("meta snapshot is missing its end line"));
  }
  return OkStatus();
}

Result<std::string> CanonicalDump(const Database& db) {
  CADDB_ASSIGN_OR_RETURN(std::string raw, Dumper::Dump(db));
  Database fresh;
  CADDB_RETURN_IF_ERROR(Dumper::Load(raw, &fresh));
  return Dumper::Dump(fresh);
}

}  // namespace persist
}  // namespace caddb

#ifndef CADDB_PERSIST_VALUE_CODEC_H_
#define CADDB_PERSIST_VALUE_CODEC_H_

#include <string>

#include "util/result.h"
#include "values/value.h"

namespace caddb {
namespace persist {

/// Serializes a Value into a compact single-line text form:
///
///   null                      i:42        r:3.5        b:1
///   s:"escaped \"text\""      e:NAND      @17
///   R{X=i:3;Y=i:4}            L[i:1;i:2]  S[i:1;i:3]
///   M[2,2][b:1;b:0;b:0;b:1]
///
/// The encoding round-trips exactly (DecodeValue(EncodeValue(v)) == v).
std::string EncodeValue(const Value& v);

/// Parses the encoding above; kParseError on malformed input.
Result<Value> DecodeValue(const std::string& text);

/// String escaping helpers shared with the dump format.
std::string EscapeString(const std::string& s);
Result<std::string> UnescapeString(const std::string& s);

}  // namespace persist
}  // namespace caddb

#endif  // CADDB_PERSIST_VALUE_CODEC_H_

#include "persist/value_codec.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace caddb {
namespace persist {

namespace {

void EncodeInto(const Value& v, std::string* out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      *out += "null";
      return;
    case Value::Kind::kInt:
      *out += "i:" + std::to_string(v.AsInt());
      return;
    case Value::Kind::kReal: {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "r:%.17g", v.AsReal());
      *out += buffer;
      return;
    }
    case Value::Kind::kBool:
      *out += v.AsBool() ? "b:1" : "b:0";
      return;
    case Value::Kind::kString:
      *out += "s:\"" + EscapeString(v.AsString()) + "\"";
      return;
    case Value::Kind::kEnum:
      *out += "e:" + v.AsString();
      return;
    case Value::Kind::kRef:
      *out += "@" + std::to_string(v.AsRef().id);
      return;
    case Value::Kind::kRecord: {
      *out += "R{";
      bool first = true;
      for (const auto& [name, field] : v.fields()) {
        if (!first) *out += ";";
        first = false;
        *out += name + "=";
        EncodeInto(field, out);
      }
      *out += "}";
      return;
    }
    case Value::Kind::kList:
    case Value::Kind::kSet: {
      *out += v.kind() == Value::Kind::kList ? "L[" : "S[";
      bool first = true;
      for (const Value& e : v.elements()) {
        if (!first) *out += ";";
        first = false;
        EncodeInto(e, out);
      }
      *out += "]";
      return;
    }
    case Value::Kind::kMatrix: {
      *out += "M[" + std::to_string(v.rows()) + "," +
              std::to_string(v.cols()) + "][";
      bool first = true;
      for (const Value& e : v.elements()) {
        if (!first) *out += ";";
        first = false;
        EncodeInto(e, out);
      }
      *out += "]";
      return;
    }
  }
}

class Decoder {
 public:
  explicit Decoder(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    Result<Value> v = ParseValue();
    if (!v.ok()) return v;
    if (pos_ != text_.size()) {
      return ParseError("trailing bytes in value encoding at offset " +
                        std::to_string(pos_));
    }
    return v;
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumePrefix(const std::string& p) {
    if (text_.compare(pos_, p.size(), p) != 0) return false;
    pos_ += p.size();
    return true;
  }

  Result<int64_t> ParseInt() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return ParseError("expected integer at offset " + std::to_string(start));
    }
    return std::strtoll(text_.c_str() + start, nullptr, 10);
  }

  Result<Value> ParseValue() {
    if (ConsumePrefix("null")) return Value::Null();
    if (ConsumePrefix("i:")) {
      CADDB_ASSIGN_OR_RETURN(int64_t v, ParseInt());
      return Value::Int(v);
    }
    if (ConsumePrefix("r:")) {
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != ';' && text_[pos_] != '}' &&
             text_[pos_] != ']') {
        ++pos_;
      }
      char* end = nullptr;
      double v = std::strtod(text_.c_str() + start, &end);
      if (end == text_.c_str() + start) {
        return ParseError("expected real at offset " + std::to_string(start));
      }
      return Value::Real(v);
    }
    if (ConsumePrefix("b:")) {
      if (Consume('1')) return Value::Bool(true);
      if (Consume('0')) return Value::Bool(false);
      return ParseError("expected 0/1 after b:");
    }
    if (ConsumePrefix("s:\"")) {
      std::string raw;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          raw.push_back(text_[pos_]);
          raw.push_back(text_[pos_ + 1]);
          pos_ += 2;
        } else {
          raw.push_back(text_[pos_++]);
        }
      }
      if (!Consume('"')) return ParseError("unterminated string");
      CADDB_ASSIGN_OR_RETURN(std::string s, UnescapeString(raw));
      return Value::String(std::move(s));
    }
    if (ConsumePrefix("e:")) {
      std::string symbol;
      while (pos_ < text_.size() && text_[pos_] != ';' && text_[pos_] != '}' &&
             text_[pos_] != ']') {
        symbol.push_back(text_[pos_++]);
      }
      if (symbol.empty()) return ParseError("empty enum symbol");
      return Value::Enum(std::move(symbol));
    }
    if (Consume('@')) {
      CADDB_ASSIGN_OR_RETURN(int64_t id, ParseInt());
      return Value::Ref(Surrogate(static_cast<uint64_t>(id)));
    }
    if (ConsumePrefix("R{")) {
      std::vector<Value::Field> fields;
      if (!Consume('}')) {
        while (true) {
          std::string name;
          while (pos_ < text_.size() && text_[pos_] != '=') {
            name.push_back(text_[pos_++]);
          }
          if (!Consume('=')) return ParseError("expected '=' in record");
          CADDB_ASSIGN_OR_RETURN(Value field, ParseValue());
          fields.emplace_back(std::move(name), std::move(field));
          if (Consume('}')) break;
          if (!Consume(';')) return ParseError("expected ';' in record");
        }
      }
      return Value::Record(std::move(fields));
    }
    if (ConsumePrefix("L[") || ConsumePrefix("S[")) {
      bool is_list = text_[pos_ - 2] == 'L';
      std::vector<Value> elements;
      if (!Consume(']')) {
        while (true) {
          CADDB_ASSIGN_OR_RETURN(Value e, ParseValue());
          elements.push_back(std::move(e));
          if (Consume(']')) break;
          if (!Consume(';')) return ParseError("expected ';' in collection");
        }
      }
      return is_list ? Value::List(std::move(elements))
                     : Value::Set(std::move(elements));
    }
    if (ConsumePrefix("M[")) {
      CADDB_ASSIGN_OR_RETURN(int64_t rows, ParseInt());
      if (!Consume(',')) return ParseError("expected ',' in matrix header");
      CADDB_ASSIGN_OR_RETURN(int64_t cols, ParseInt());
      if (!Consume(']') || !Consume('[')) {
        return ParseError("malformed matrix header");
      }
      std::vector<Value> elements;
      if (!Consume(']')) {
        while (true) {
          CADDB_ASSIGN_OR_RETURN(Value e, ParseValue());
          elements.push_back(std::move(e));
          if (Consume(']')) break;
          if (!Consume(';')) return ParseError("expected ';' in matrix");
        }
      }
      if (elements.size() != static_cast<size_t>(rows * cols)) {
        return ParseError("matrix element count mismatch");
      }
      return Value::Matrix(static_cast<size_t>(rows),
                           static_cast<size_t>(cols), std::move(elements));
    }
    return ParseError("unrecognized value encoding at offset " +
                      std::to_string(pos_));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 1 >= s.size()) return ParseError("dangling escape");
    switch (s[++i]) {
      case '\\':
        out.push_back('\\');
        break;
      case '"':
        out.push_back('"');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        return ParseError("unknown escape \\" + std::string(1, s[i]));
    }
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  std::string out;
  EncodeInto(v, &out);
  return out;
}

Result<Value> DecodeValue(const std::string& text) {
  return Decoder(text).Run();
}

}  // namespace persist
}  // namespace caddb
